#!/usr/bin/env python3
"""Reusing the dataset for routing-policy research (paper §VI, Figure 9).

The announcement schedule deterministically forces route changes across
the whole Internet, so the resulting path dataset supports policy studies
beyond spoofing localization.  This example:

1. audits each configuration for best-relationship / Gao-Rexford
   compliance (Figure 9),
2. evaluates a Gao-Rexford *catchment predictor* against the noisy ground
   truth — the paper's proposed shortcut to skip pre-measuring every
   configuration (§V-C),
3. counts how many distinct routes each source was observed on (the
   paper guarantees ≥ r+1 routes when removing up to r links).

Run:  python examples/policy_inference.py
"""


from repro.analysis.stats import mean, percentile
from repro.core.pipeline import SpoofTracker, build_testbed
from repro.core.prediction import CatchmentPredictor, policy_compliance
from repro.topology import TopologyParams


def main() -> None:
    testbed = build_testbed(
        seed=21,
        topology_params=TopologyParams(
            num_tier1=6, num_transit=60, num_stub=300, seed=21
        ),
        policy_noise=0.08,
    )
    tracker = SpoofTracker.from_testbed(testbed)
    configs = tracker.schedule[:150]
    print(f"simulating {len(configs)} configurations...")
    outcomes = [testbed.simulator.simulate(config) for config in configs]

    # ------------------------------------------------------------------
    # 1. Policy compliance per configuration (Figure 9).
    # ------------------------------------------------------------------
    best_rel, both = [], []
    for outcome in outcomes:
        stats = policy_compliance(
            outcome, testbed.graph, testbed.policy, testbed.origin
        )
        best_rel.append(stats.best_relationship)
        both.append(stats.best_relationship_and_shortest)
    print("\n[1] policy compliance across configurations:")
    print(
        f"    best relationship        median {percentile(best_rel, 50):.1%}  "
        f"(p10 {percentile(best_rel, 10):.1%})"
    )
    print(
        f"    + shortest (Gao-Rexford) median {percentile(both, 50):.1%}  "
        f"(p10 {percentile(both, 10):.1%})"
    )

    # ------------------------------------------------------------------
    # 2. Catchment prediction accuracy (noise-free GR model vs reality).
    # ------------------------------------------------------------------
    predictor = CatchmentPredictor(testbed.graph, testbed.origin)
    accuracies = []
    for config, outcome in zip(configs[:40], outcomes[:40]):
        predicted = predictor.predict(config)
        accuracies.append(
            CatchmentPredictor.accuracy(predicted, outcome).fraction_correct
        )
    print("\n[2] Gao-Rexford catchment predictor vs noisy ground truth:")
    print(
        f"    mean accuracy {mean(accuracies):.1%}, "
        f"worst configuration {min(accuracies):.1%}"
    )
    print(
        "    → accurate enough to pre-rank configurations and skip "
        "measuring the unpromising ones (paper §V-C)."
    )

    # ------------------------------------------------------------------
    # 3. Route diversity: distinct routes observed per source.
    # ------------------------------------------------------------------
    from repro.data import PathDataset

    dataset = PathDataset.from_outcomes(outcomes)
    diversity = list(dataset.route_diversity().values())
    print("\n[3] route diversity uncovered by the schedule:")
    print(f"    mean distinct forwarding paths per source: {mean(diversity):.2f}")
    print(
        f"    sources with >= 4 distinct routes: "
        f"{sum(1 for d in diversity if d >= 4) / len(diversity):.0%} "
        "(schedule guarantee: removing up to 3 links discovers >= 4 routes)"
    )
    print(f"    route changes across the dataset: {dataset.route_changes()}")
    discovered = dataset.discovered_links(baseline_phases=("locations",))
    print(
        f"    AS links exposed only by prepending/poisoning: {len(discovered)} "
        "(the paper: poisoning 'may discover new links')"
    )


if __name__ == "__main__":
    main()
