#!/usr/bin/env python3
"""Racing traceback strategies, and writing your own (paper §V-C).

The paper's greedy ordering is one answer to "which configuration
should we announce next?"; `repro.strategy` makes that decision a
plugin.  This example:

1. races every registered strategy on one seeded testbed through the
   shared-engine compare harness (the measurement pass is paid once),
2. registers a custom strategy — a smallest-catchment-first heuristic —
   in a few lines and races it against the built-ins,
3. shows the same plugin driving the batch pipeline via
   ``SpoofTracker.run(strategy=...)``.

Run:  python examples/strategy_compare.py
"""

from typing import Optional

from repro.core.pipeline import SpoofTracker, build_testbed
from repro.strategy import (
    TracebackStrategy,
    available_strategies,
    compare_strategies,
    register_strategy,
)
from repro.topology import TopologyParams

SEED = 3
MAX_CONFIGS = 10
SMALL = TopologyParams(num_tier1=6, num_transit=60, num_stub=300)


# ----------------------------------------------------------------------
# A custom strategy: deploy the configuration whose smallest catchment
# is smallest — small catchments pin down few sources very precisely.
# Subclass, implement propose(), give it a registry name.  bind() has
# already stored per-config catchment maps (restricted to the universe)
# in self.catchment_maps and the not-yet-deployed indices in
# self.remaining; observe()/converged() come from the base class.
# ----------------------------------------------------------------------
class SmallestCatchmentStrategy(TracebackStrategy):
    """Prefer configurations that isolate the fewest sources."""

    name = "smallest-catchment"

    def propose(self, state, volume_by_as=None) -> Optional[int]:
        best: Optional[int] = None
        best_key = None
        for index in self.remaining:
            catchments = [
                len(members)
                for members in self.catchment_maps[index].values()
                if members
            ]
            if not catchments:
                continue
            key = (min(catchments), index)
            if best_key is None or key < best_key:
                best, best_key = index, key
        return best


register_strategy(SmallestCatchmentStrategy)


def main() -> None:
    testbed = build_testbed(seed=SEED, topology_params=SMALL)

    # ------------------------------------------------------------------
    # 1 + 2. Race everything — built-ins plus the custom strategy.
    # ------------------------------------------------------------------
    print(f"[1] racing {len(available_strategies())} strategies "
          f"({', '.join(available_strategies())}):\n")
    report = compare_strategies(testbed, max_configs=MAX_CONFIGS)
    print(report.table())
    assert report.engine_stats is not None
    print(f"\n    shared measurement pass: {report.engine_stats.summary()}")

    winner = report.outcomes[0]
    print(
        f"    winner: {winner.strategy} — mean cluster size "
        f"{winner.final_mean_cluster_size:.2f} after "
        f"{winner.configs_to_convergence} configurations "
        f"({winner.dwell_minutes:.0f} dwell minutes)"
    )

    # ------------------------------------------------------------------
    # 3. The same plugin drives the batch pipeline.
    # ------------------------------------------------------------------
    print("\n[2] batch pipeline planned by the custom strategy:")
    tracker = SpoofTracker.from_testbed(testbed)
    try:
        run = tracker.run(
            max_configs=MAX_CONFIGS, strategy="smallest-catchment"
        )
    finally:
        tracker.engine.close()
    print(
        f"    strategy={run.strategy}  configs={len(run.steps)}  "
        f"final clusters={len(run.clusters)}"
    )


if __name__ == "__main__":
    main()
