#!/usr/bin/env python3
"""BGP convergence dynamics and campaign planning (paper §IV-a, §V-C).

Why does each configuration need a 70-minute dwell, and what would it
take to run the full schedule in a weekend?  This example:

1. measures the convergence-time distribution across configuration types
   with the event-driven message-level engine,
2. shows MRAI's dominant role in the convergence tail,
3. turns the numbers into campaign plans with the timeline model
   (the paper's 705 configurations ≈ 34 days on one prefix).

Run:  python examples/convergence_study.py
"""

from datetime import timedelta

from repro.analysis.stats import mean, percentile
from repro.bgp.convergence import ConvergenceEngine, ConvergenceParams
from repro.core.pipeline import SpoofTracker, build_testbed
from repro.core.timeline import CampaignTimeline, paper_campaign_duration
from repro.topology import TopologyParams


def main() -> None:
    testbed = build_testbed(
        seed=12,
        topology_params=TopologyParams(
            num_tier1=6, num_transit=60, num_stub=300, seed=12
        ),
    )
    tracker = SpoofTracker.from_testbed(testbed)
    engine = ConvergenceEngine(testbed.graph, testbed.origin, testbed.policy)

    # ------------------------------------------------------------------
    # 1. Convergence by configuration type.
    # ------------------------------------------------------------------
    print("[1] convergence time by configuration type (event-driven engine):")
    by_phase = {}
    for config in tracker.schedule[::20]:
        result = engine.run(config)
        fixpoint = testbed.simulator.simulate(config)
        assert result.agrees_with(fixpoint)  # engines always agree
        by_phase.setdefault(config.phase, []).append(result.convergence_time)
    for phase, times in by_phase.items():
        print(
            f"    {phase:<11} n={len(times):>3}  median {percentile(times, 50):6.1f}s"
            f"  max {max(times):6.1f}s"
        )

    # ------------------------------------------------------------------
    # 2. MRAI dominates the tail.
    # ------------------------------------------------------------------
    print("\n[2] MRAI ablation (anycast-all configuration):")
    config = tracker.schedule[0]
    for mrai in (0.0, 5.0, 30.0, 60.0):
        params = ConvergenceParams(mrai_seconds=mrai)
        result = ConvergenceEngine(
            testbed.graph, testbed.origin, testbed.policy, params
        ).run(config)
        print(
            f"    MRAI {mrai:4.0f}s → convergence {result.convergence_time:6.1f}s, "
            f"{result.messages_sent} messages"
        )

    # ------------------------------------------------------------------
    # 3. Campaign planning.
    # ------------------------------------------------------------------
    print("\n[3] campaign planning (paper dwell arithmetic):")
    num_configs = len(tracker.schedule)
    print(f"    paper: 705 configurations × 70 min = {paper_campaign_duration()}")
    timeline = CampaignTimeline()
    print(
        f"    this schedule ({num_configs} configs) on one prefix: "
        f"{timeline.duration(num_configs)}"
    )
    for prefixes in (2, 4, 8):
        scaled = CampaignTimeline(concurrent_prefixes=prefixes)
        print(
            f"    with {prefixes} concurrent prefixes: "
            f"{scaled.duration(num_configs)}"
        )
    weekend = timedelta(days=2)
    needed = timeline.prefixes_needed(num_configs, weekend)
    print(f"    to finish within a weekend: {needed} concurrent prefixes")


if __name__ == "__main__":
    main()
