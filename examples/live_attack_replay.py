#!/usr/bin/env python3
"""Online traceback during a live attack (paper §V-C as a runtime).

The batch pipeline localizes an attack after the fact; this example runs
the same method *while the attack is happening*.  A seeded replay drives
spoofed-traffic batches through the online service: bounded ingestion
with explicit drop accounting, incremental cluster refinement and NNLS
re-scoring every observation window, adaptive configuration selection,
route churn mid-attack, and a kill-safe checkpoint the run resumes from.

Run:  python examples/live_attack_replay.py
"""

import os
import tempfile

from repro.analysis import render_window_table
from repro.core.pipeline import build_testbed
from repro.live import LiveTracebackService, ReplayScenario, load_checkpoint
from repro.topology import TopologyParams


def main() -> None:
    testbed = build_testbed(
        seed=7,
        topology_params=TopologyParams(
            num_tier1=6, num_transit=80, num_stub=400, seed=7
        ),
    )
    print(f"testbed: {len(testbed.graph)} ASes")

    # ------------------------------------------------------------------
    # Phase 1: replay an attack through the service, watching rolling
    # attribution tighten window by window.
    # ------------------------------------------------------------------
    print("\n[1] Streaming replay: 40 Pareto sources, adaptive controller,")
    print("    routing drifts at window 10 (stale catchments get remeasured).")
    checkpoint_path = os.path.join(
        tempfile.mkdtemp(prefix="live_replay_"), "checkpoint.json"
    )
    scenario = ReplayScenario(
        seed=7,
        distribution="pareto",
        num_sources=40,
        max_configs=6,
        churn_events=((10, 0.8),),
        checkpoint_every=9,
        checkpoint_path=checkpoint_path,
    )
    service = LiveTracebackService(scenario=scenario, testbed=testbed)

    tightening = []
    service_report = service.run(
        on_window=lambda stats: tightening.append(stats.mean_cluster_size)
    )
    print(f"    mean cluster size by window: "
          f"{[round(v, 2) for v in tightening[::4]]} (every 4th)")
    for entry in service.churn_log:
        print(
            f"    churn at window {entry['window']}: "
            f"{entry['misplaced']:.1%} of sources misplaced, "
            f"remeasured={entry['remeasured']}"
        )
    print(f"    {service_report.run_stats.summary()}")

    # ------------------------------------------------------------------
    # Phase 2: the final report is the familiar batch format.
    # ------------------------------------------------------------------
    print("\n[2] Final attribution (batch TrackerReport + live counters):\n")
    print(service_report.to_tracker_report().summary())
    suspects = service_report.localization.suspect_ases(volume_fraction=0.9)
    truth = service_report.placement.spoofing_ases
    print(
        f"\n    {len(suspects)} suspect ASes capture "
        f"{len(truth & suspects)}/{len(truth)} true sources"
    )

    # ------------------------------------------------------------------
    # Phase 3: kill-safety.  The periodic checkpoint left a snapshot
    # mid-attack; restoring it and finishing produces the same report.
    # ------------------------------------------------------------------
    print("\n[3] Resuming from the mid-attack checkpoint...")
    restored = load_checkpoint(checkpoint_path)
    print(f"    restored at window {restored.window_index} "
          f"of {len(service_report.windows)}")
    resumed_report = restored.run()
    identical = resumed_report.windows == service_report.windows
    print(f"    resumed run matches the uninterrupted one: {identical}")

    # ------------------------------------------------------------------
    # Phase 4: the per-window trace, tabulated.
    # ------------------------------------------------------------------
    print("\n[4] Window table (every 4th window):\n")
    print(render_window_table(service_report.windows, every=4))

    restored.close()
    service.close()


if __name__ == "__main__":
    main()
