#!/usr/bin/env python3
"""Measuring catchments with feeds and traceroutes (paper §IV).

The previous examples read catchments off the routing simulator (ground
truth).  A real deployment has to *measure* them from public BGP feeds and
RIPE-Atlas-style traceroutes — with unresponsive hops, IXP addresses,
IP-to-AS errors, conflicting observations, and sources that vanish under
some configurations.  This example runs the full measurement pipeline and
quantifies each artifact the paper's §IV machinery handles.

Run:  python examples/measured_catchments.py
"""

from repro.core.pipeline import SpoofTracker, build_testbed
from repro.measurement.catchment import CatchmentHistory
from repro.measurement.traceroute import TracerouteParams
from repro.topology import TopologyParams


def main() -> None:
    testbed = build_testbed(
        seed=31,
        topology_params=TopologyParams(
            num_tier1=6, num_transit=60, num_stub=300, seed=31
        ),
        num_vantages=20,
        num_probes=80,
        # Harsher measurement conditions than the defaults, to surface
        # the conflicting observations §IV-c is built to resolve.
        traceroute_params=TracerouteParams(
            unresponsive_rate=0.15,
            border_sharing_rate=0.35,
            path_error_rate=0.05,
            truncation_rate=0.05,
            divergence_rate=0.15,
            seed=31,
        ),
    )
    tracker = SpoofTracker.from_testbed(testbed)
    configs = tracker.schedule[:15]

    print(f"measuring {len(configs)} configurations with "
          f"{len(testbed.collectors.vantages)} BGP vantages and "
          f"{len(testbed.fleet.probe_ases)} probes...\n")

    outcomes = [testbed.simulator.simulate(config) for config in configs]
    measurements = [testbed.campaign.measure(outcome) for outcome in outcomes]

    # ------------------------------------------------------------------
    # Coverage and conflict statistics (paper §IV-c).
    # ------------------------------------------------------------------
    first = measurements[0]
    print("[1] anycast-all measurement (defines the analysis universe):")
    print(f"    BGP paths used       : {first.bgp_paths_observed}")
    print(f"    traceroutes used     : {first.traceroutes_observed}")
    print(f"    sources observed     : {first.stats.sources_observed}")
    print(
        f"    multi-catchment rate : {first.stats.multi_catchment_fraction:.2%} "
        "(paper: 2.28% on average)"
    )

    # Accuracy against the simulator's ground truth.
    truth = outcomes[0]
    agree = sum(
        1
        for source, link in first.assignment.items()
        if truth.catchment_of(source) == link
    )
    print(f"    agreement with truth : {agree / len(first.assignment):.1%}")

    # ------------------------------------------------------------------
    # Visibility and smax imputation (paper §IV-d).
    # ------------------------------------------------------------------
    universe = frozenset(first.assignment)
    history = CatchmentHistory(universe)
    for measurement in measurements:
        history.add(measurement.assignment)
    missing = history.missing_sources()
    total_missing = sum(len(sources) for sources in missing.values())
    print("\n[2] source visibility across configurations:")
    print(f"    universe size        : {len(universe)} sources")
    print(
        f"    missing observations : {total_missing} across "
        f"{len(missing)} configurations"
    )
    imputed = history.imputed_assignments()
    observed = len(universe) * len(measurements) - total_missing
    filled = sum(len(assignment) for assignment in imputed) - observed
    print(f"    imputed via smax     : {filled} assignments recovered")

    # ------------------------------------------------------------------
    # End-to-end: measured vs ground-truth clustering.
    # ------------------------------------------------------------------
    print("\n[3] clustering on measured vs ground-truth catchments:")
    measured_report = tracker.run(max_configs=len(configs), measured=True)
    truth_report = tracker.run(max_configs=len(configs))
    print(
        f"    ground truth : {len(truth_report.universe)} sources → "
        f"mean cluster {truth_report.mean_cluster_size:.2f} ASes"
    )
    print(
        f"    measured     : {len(measured_report.universe)} sources → "
        f"mean cluster {measured_report.mean_cluster_size:.2f} ASes"
    )
    print(
        "    measured coverage is limited by vantage/probe placement — the "
        "paper's dataset covered 1,885 ASes with 1,600 probes."
    )


if __name__ == "__main__":
    main()
