#!/usr/bin/env python3
"""Peering-footprint planning (paper §V-B, Figures 5 and 6).

An operator deciding whether deploying this technique is worthwhile wants
to know: *how many peering links do I need for actionable localization?*
This example sweeps the number of peering links over the same synthetic
Internet and reports, for each footprint, the configuration budget and the
final cluster statistics — reproducing the paper's conclusion that
localization precision grows with the peering footprint.

Run:  python examples/footprint_planning.py
"""

from repro.core.clustering import ClusterState
from repro.core.configgen import ScheduleParams, generate_schedule
from repro.core.pipeline import build_testbed
from repro.topology import TopologyParams


def evaluate_footprint(num_links: int, seed: int = 11) -> dict:
    """Run the locations+prepending schedule for one footprint size."""
    testbed = build_testbed(
        seed=seed,
        topology_params=TopologyParams(
            num_tier1=6, num_transit=60, num_stub=300, seed=seed
        ),
        num_links=num_links,
    )
    params = ScheduleParams(
        max_removed=min(3, num_links - 1), include_poisoning=False
    )
    schedule = generate_schedule(testbed.origin, testbed.graph, params)
    outcomes = [testbed.simulator.simulate(config) for config in schedule]
    universe = outcomes[0].covered_ases
    state = ClusterState(universe)
    for outcome in outcomes:
        state.refine_with_catchments(
            {link: m & universe for link, m in outcome.catchments.items()}
        )
    return {
        "links": num_links,
        "configs": len(schedule),
        "ases": len(universe),
        "mean": state.mean_size(),
        "p90": state.size_percentile(90.0),
        "max": max(state.sizes()),
        "singletons": state.singleton_fraction(),
    }


def main() -> None:
    print("Sweeping peering footprint on one synthetic Internet")
    print(
        f"{'links':>5}  {'configs':>7}  {'ASes':>5}  {'mean':>6}  "
        f"{'p90':>5}  {'max':>4}  {'singleton%':>10}"
    )
    results = []
    for num_links in (2, 3, 4, 5, 6, 7):
        row = evaluate_footprint(num_links)
        results.append(row)
        print(
            f"{row['links']:>5}  {row['configs']:>7}  {row['ases']:>5}  "
            f"{row['mean']:>6.2f}  {row['p90']:>5.1f}  {row['max']:>4}  "
            f"{row['singletons']:>9.0%}"
        )

    print()
    best = results[-1]
    worst = results[0]
    print(
        f"Going from {worst['links']} to {best['links']} links shrinks the "
        f"mean cluster from {worst['mean']:.1f} to {best['mean']:.1f} ASes — "
        "the paper's conclusion: any network with a large peering footprint "
        "can localize spoofers precisely; small footprints cannot."
    )


if __name__ == "__main__":
    main()
