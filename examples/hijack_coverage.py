#!/usr/bin/env python3
"""Prefix-hijack scenario studies from anycast configurations (paper §VI).

Each configuration announcing from n locations covers 2ⁿ same-prefix
hijack scenarios: any subset of the announcing links can be read as "the
hijacker's announcements" and the measured catchments directly give the
fraction of the Internet the hijacker captures.  This example quantifies
hijack impact for every partition of the full-anycast configuration and
shows how capture depends on the hijacker's topological position.

Run:  python examples/hijack_coverage.py
"""

from repro.bgp.announcement import anycast_all
from repro.core.hijack import hijack_coverage_report
from repro.core.pipeline import build_testbed
from repro.topology import TopologyParams


def main() -> None:
    testbed = build_testbed(
        seed=17,
        topology_params=TopologyParams(
            num_tier1=6, num_transit=60, num_stub=300, seed=17
        ),
        num_links=5,
    )
    config = anycast_all(testbed.origin.link_ids)
    outcome = testbed.simulator.simulate(config)
    print(
        f"anycast from {len(config.announced)} links covers "
        f"2^{len(config.announced)} = {2 ** len(config.announced)} hijack scenarios"
    )
    print("catchment sizes:")
    for link, members in sorted(outcome.catchments.items()):
        provider = testbed.origin.provider_of(link)
        print(f"  {link:<12} (via AS{provider}): {len(members):>4} ASes")

    report = hijack_coverage_report(outcome)
    print(f"\n{len(report)} non-degenerate scenarios, by hijacker capture:")
    print(f"{'hijacker links':<40} {'captured':>8} {'fraction':>9}")
    for impact in report[:8]:
        links = "+".join(sorted(impact.scenario.hijacker_links))
        print(
            f"{links:<40} {impact.ases_captured:>8} "
            f"{impact.capture_fraction:>8.1%}"
        )
    print("  ...")
    for impact in report[-3:]:
        links = "+".join(sorted(impact.scenario.hijacker_links))
        print(
            f"{links:<40} {impact.ases_captured:>8} "
            f"{impact.capture_fraction:>8.1%}"
        )

    single = [
        impact
        for impact in report
        if len(impact.scenario.hijacker_links) == 1
    ]
    strongest = single[0]
    weakest = single[-1]
    print(
        f"\nA single-site hijacker captures between "
        f"{weakest.capture_fraction:.0%} and {strongest.capture_fraction:.0%} "
        "of the Internet depending on which peering link it announces from —"
        "\nexactly the propagation question the paper proposes studying with "
        "this dataset (subprefix hijacks, by contrast, always capture 100%)."
    )


if __name__ == "__main__":
    main()
