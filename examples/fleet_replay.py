#!/usr/bin/env python3
"""Multi-tenant fleet replay: many attacks, one deterministic runtime.

A transit provider defends many customer origin networks at once; this
example runs the paper's traceback for a whole campaign in one process.
A frozen `FleetSpec` expands into per-tenant testbeds and per-attack
shards with derived seeds, a weighted fair-share scheduler multiplexes
them over shared per-tenant engines, and a scripted event stream kills
one shard mid-replay to show crash containment and checkpoint resume.
The punchline is determinism: the kill/resume run and an undisturbed
rerun produce identical per-shard attribution digests.

Run:  python examples/fleet_replay.py
"""

import tempfile

from repro.analysis.fleet import render_fleet_table
from repro.fleet import (
    CRASH,
    FleetEvent,
    FleetRuntime,
    FleetSpec,
    scripted_stream,
)
from repro.topology import TopologyParams

SPEC = FleetSpec(
    seed=11,
    tenants=2,
    attacks_per_tenant=2,
    max_configs=4,
    num_sources=8,
    checkpoint_every=2,
    quotas=(("tenant-00", 2.0),),  # tenant-00 pays for double share
    num_links=5,
    num_vantages=12,
    num_probes=40,
    topology_params=TopologyParams(
        num_tier1=4, num_transit=24, num_stub=90, seed=1
    ),
)


def main() -> None:
    attacks = SPEC.attacks()
    print(f"campaign: {len(attacks)} shards across {SPEC.tenants} tenants")
    for attack in attacks:
        print(f"    {attack.label}  (scenario seed {attack.scenario.seed})")

    # ------------------------------------------------------------------
    # Phase 1: run the campaign with a scripted mid-replay crash.  The
    # stream merges every launch with a kill of tenant-00's second
    # attack once that shard's clock passes simulated minute 120; the
    # runtime contains the crash and resumes the shard from its
    # namespaced checkpoint.
    # ------------------------------------------------------------------
    victim = attacks[1]
    events = scripted_stream(
        SPEC,
        controls=[
            FleetEvent(
                minute=120.0,
                action=CRASH,
                tenant=victim.tenant,
                prefix=victim.prefix,
            )
        ],
    )
    print(f"\n[1] Replaying with {victim.label} killed at minute 120...")
    checkpoint_dir = tempfile.mkdtemp(prefix="fleet_replay_")
    with FleetRuntime(
        SPEC, events=events, checkpoint_dir=checkpoint_dir
    ) as runtime:
        runtime.run()
        crashed_report = runtime.report()
    print(render_fleet_table(crashed_report.shards))
    hit = next(s for s in crashed_report.shards if s.key == victim.key)
    print(
        f"    {hit.label}: {hit.crashes} crash / {hit.resumes} resume, "
        f"finished {hit.state} after {hit.windows} windows"
    )

    # ------------------------------------------------------------------
    # Phase 2: rerun the same spec undisturbed (no crash, fresh
    # checkpoint directory).  Shards share no mutable state, so every
    # per-shard attribution digest matches the crashed run byte for
    # byte — the kill changed the schedule, never the evidence.
    # ------------------------------------------------------------------
    print("\n[2] Undisturbed rerun for comparison...")
    with FleetRuntime(
        SPEC, checkpoint_dir=tempfile.mkdtemp(prefix="fleet_replay_")
    ) as runtime:
        runtime.run()
        clean_report = runtime.report()

    crashed = {s.key: s.attribution_digest for s in crashed_report.shards}
    clean = {s.key: s.attribution_digest for s in clean_report.shards}
    print(f"    attributions identical across all shards: {crashed == clean}")

    # ------------------------------------------------------------------
    # Phase 3: the per-tenant view the /tenants endpoint serves.
    # ------------------------------------------------------------------
    print("\n[3] Per-tenant summary (the /tenants payload):\n")
    for tenant, summary in sorted(clean_report.by_tenant().items()):
        states = ", ".join(
            f"{s.prefix}={s.state}:{s.windows}w" for s in summary
        )
        print(f"    {tenant}: {states}")
    print(f"\n    fleet digest: {clean_report.digest}")


if __name__ == "__main__":
    main()
