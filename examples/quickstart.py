#!/usr/bin/env python3
"""Quickstart: track down a spoofed-traffic source in ~30 lines.

Builds a synthetic Internet with a PEERING-like 7-link origin network,
plants a single spoofing source in a random stub AS (the common
amplification-attack case), deploys the first 120 announcement
configurations of the paper's schedule, and attributes the observed
per-link spoofed volumes to clusters.

Run:  python examples/quickstart.py
"""

import random

from repro import SpoofTracker, build_testbed
from repro.spoof import single_source_placement


def main() -> None:
    print("Building synthetic Internet testbed (seed=1)...")
    testbed = build_testbed(seed=1)
    print(
        f"  {len(testbed.graph)} ASes, {testbed.graph.num_links()} links, "
        f"{len(testbed.origin)} peering links at the origin (AS{testbed.origin.asn})"
    )

    # An attacker spoofing from one stub AS — we know the ground truth,
    # the tracker does not.
    placement = single_source_placement(
        sorted(testbed.topology.stubs), random.Random(42)
    )
    (true_source,) = placement.spoofing_ases
    print(f"  planted spoofing source in AS{true_source} (hidden from tracker)")

    tracker = SpoofTracker.from_testbed(testbed)
    print(f"Deploying 120 of {len(tracker.schedule)} announcement configurations...")
    report = tracker.run(max_configs=120, placement=placement)

    print()
    print(report.summary())
    print()
    top = report.localization.ranked[0]
    members = ", ".join(f"AS{asn}" for asn in sorted(top.members))
    print(f"Localized the attack to a {top.size}-AS cluster: {members}")
    print(f"Ground truth AS{true_source} inside: {true_source in top.members}")


if __name__ == "__main__":
    main()
