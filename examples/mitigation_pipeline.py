#!/usr/bin/env python3
"""From localization to mitigation: RTBH vs flowspec (paper §I).

The paper's closing motivation: localization output can "drive automatic
DoS mitigation systems that use, e.g., BGP communities to trigger remote
traffic blackholing or BGP flowspec to configure traffic filters".  This
example quantifies the trade-off:

* **RTBH** stops the attack instantly but drops *everything* — the attack
  succeeds by proxy.
* **Flowspec filters scoped by localization** drop only traffic from the
  suspect clusters; their collateral damage shrinks as more announcement
  configurations sharpen the clusters.

Run:  python examples/mitigation_pipeline.py
"""

import random

from repro.core.pipeline import SpoofTracker, build_testbed
from repro.mitigation import (
    BlackholeRule,
    evaluate_mitigation,
    rules_from_localization,
)
from repro.spoof import pareto_placement
from repro.topology import TopologyParams


def main() -> None:
    testbed = build_testbed(
        seed=23,
        topology_params=TopologyParams(
            num_tier1=6, num_transit=60, num_stub=300, seed=23
        ),
    )
    tracker = SpoofTracker.from_testbed(testbed)
    placement = pareto_placement(
        sorted(testbed.topology.stubs), 25, random.Random(11)
    )
    print(
        f"attack: {placement.total_sources} sources across "
        f"{len(placement.spoofing_ases)} ASes (Pareto 80/20)"
    )

    print("\nRTBH baseline (victim prefix blackholed upstream):")
    report = tracker.run(max_configs=1, placement=placement)
    rtbh = evaluate_mitigation(
        [BlackholeRule()], placement, report.catchment_history[0]
    )
    print(
        f"  attack dropped {rtbh.attack_volume_dropped:.0%}, "
        f"legitimate dropped {rtbh.legitimate_volume_dropped:.0%} "
        f"(selectivity {rtbh.selectivity:+.2f})"
    )

    print("\nflowspec scoped by localization, by announcement budget:")
    print(f"{'configs':>8}  {'rules':>5}  {'ASes filtered':>13}  "
          f"{'attack dropped':>14}  {'collateral':>10}  {'selectivity':>11}")
    for budget in (4, 16, 64, 150):
        report = tracker.run(max_configs=budget, placement=placement)
        rules = rules_from_localization(
            report.localization,
            volume_fraction=0.99,
            catchments=report.catchment_history[0],
        )
        evaluation = evaluate_mitigation(
            rules, placement, report.catchment_history[0]
        )
        print(
            f"{budget:>8}  {evaluation.rules_installed:>5}  "
            f"{evaluation.ases_filtered:>13}  "
            f"{evaluation.attack_volume_dropped:>13.0%}  "
            f"{evaluation.legitimate_volume_dropped:>9.0%}  "
            f"{evaluation.selectivity:>+11.2f}"
        )

    print(
        "\nMore configurations → smaller clusters → fewer innocent ASes "
        "caught in the filters, while the dropped attack volume stays "
        "complete. RTBH's selectivity is zero by construction."
    )


if __name__ == "__main__":
    main()
