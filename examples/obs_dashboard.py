#!/usr/bin/env python3
"""Serve and watch a live traceback's telemetry (PR: servable obs).

An attack-time traceback is only operable if you can see it while it
runs.  This example replays a seeded attack with the full observability
surface armed — event bus, SLO watchdogs, HTTP/SSE exporter — then
plays operator: scrapes ``/metrics`` mid-run, checks ``/readyz``,
tails the ``/events`` stream, and finally renders the ASCII dashboard
from the run's own event history (exactly what ``spooftrack dash``
does).

Run:  python examples/obs_dashboard.py
"""

import json
import threading
import urllib.request

from repro.analysis.dashboard import Dashboard
from repro.core.pipeline import build_testbed
from repro.live import LiveTracebackService, ReplayScenario
from repro.obs import (
    Observability,
    ObsServer,
    SloWatchdog,
    build_manifest,
    parse_prometheus,
    strip_measured,
)
from repro.topology import TopologyParams


def fetch(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode("utf-8")


def main() -> None:
    testbed = build_testbed(
        seed=7,
        topology_params=TopologyParams(
            num_tier1=6, num_transit=80, num_stub=400, seed=7
        ),
    )
    print(f"testbed: {len(testbed.graph)} ASes")

    # ------------------------------------------------------------------
    # Phase 1: arm the full surface and start serving before the run.
    # ------------------------------------------------------------------
    obs = Observability.for_run("live")
    watchdog = SloWatchdog(registry=obs.registry)
    obs.bus.attach(watchdog.observe)
    server = ObsServer(
        obs=obs,
        manifest=build_manifest("live", seed=7),
        watchdog=watchdog,
        port=0,  # pick any free port
    ).start()
    print(f"\n[1] serving {server.url} " f"(routes: {', '.join(ObsServer.ROUTES)})")

    scenario = ReplayScenario(
        seed=7,
        distribution="pareto",
        num_sources=40,
        max_configs=6,
        churn_events=((10, 0.8),),
    )
    service = LiveTracebackService(scenario=scenario, testbed=testbed, obs=obs)
    server.set_ready()

    # ------------------------------------------------------------------
    # Phase 2: run the replay while an operator-side thread scrapes.
    # ------------------------------------------------------------------
    scrapes = []

    def operator() -> None:
        subscription = obs.bus.subscribe(replay=True)
        while True:
            event = subscription.get(timeout=0.5)
            if event is None:
                if subscription._closed:
                    return
                continue
            if event["kind"] == "window":
                scrapes.append(parse_prometheus(fetch(server.url + "/metrics")))

    watcher = threading.Thread(target=operator, daemon=True)
    watcher.start()
    report = service.run()
    obs.bus.publish("report", command="live")
    obs.bus.close()
    watcher.join(timeout=10)

    print(f"\n[2] ran {len(report.windows)} windows; "
          f"{len(scrapes)} mid-run /metrics scrapes, window count climbing:")
    counts = [int(s.get("repro_live_window_seconds_count", 0)) for s in scrapes]
    print(f"    {counts[:12]}{' …' if len(counts) > 12 else ''}")

    ready = json.loads(fetch(server.url + "/readyz"))
    print(f"    /readyz: ready={ready['ready']} after {ready['checks']} "
          f"SLO checks, {len(ready['breaches'])} breaches")

    # ------------------------------------------------------------------
    # Phase 3: the /events stream is the dashboard's input.  Stripped of
    # measured durations it is byte-deterministic for a seeded run.
    # ------------------------------------------------------------------
    events = obs.bus.history()
    stripped = [json.dumps(strip_measured(e), sort_keys=True) for e in events]
    print(f"\n[3] event stream: {len(events)} events, "
          f"{len(stripped)} deterministic once *_seconds are stripped")

    dash = Dashboard()
    for event in events:
        dash.ingest(event)
    print("\n[4] dashboard:\n")
    print(dash.render())

    server.stop()
    service.close()


if __name__ == "__main__":
    main()
