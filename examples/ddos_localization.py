#!/usr/bin/env python3
"""Attack-time localization of an amplification DDoS (paper §V-C, §VIII).

The intro scenario: an amplification attack is hitting a victim through
reflectors; the origin network hosts an AmpPot-style honeypot inside a
dedicated prefix, so every query it receives is spoofed attack traffic.

Workflow (the paper's envisioned runtime use):

1. *Before the attack*: deploy the announcement schedule once and measure
   every configuration's catchments (slow — done ahead of time).
2. *During the attack*: reuse the pre-measured catchments and deploy
   configurations in greedy order — each configuration only needs to be
   active long enough to read honeypot counters — then attribute volumes.
3. Compare against a random deployment order (Figure 8's baseline) and
   against the volume-aware greedy variant (§VIII future work).

Run:  python examples/ddos_localization.py
"""

import random

from repro.core.clustering import ClusterState
from repro.core.localization import SpoofLocalizer
from repro.core.pipeline import SpoofTracker, build_testbed
from repro.core.scheduler import (
    GreedyScheduler,
    VolumeAwareGreedyScheduler,
    percentile_curve,
    random_schedule_curves,
)
from repro.spoof import AmplificationHoneypot, SpoofedTrafficGenerator, pareto_placement
from repro.topology import TopologyParams


def main() -> None:
    testbed = build_testbed(
        seed=7,
        topology_params=TopologyParams(
            num_tier1=6, num_transit=80, num_stub=400, seed=7
        ),
    )
    tracker = SpoofTracker.from_testbed(testbed)
    print(f"testbed: {len(testbed.graph)} ASes, schedule: {len(tracker.schedule)} configs")

    # ------------------------------------------------------------------
    # Phase 1 (pre-attack): measure catchments for the whole schedule.
    # ------------------------------------------------------------------
    print("\n[1] Pre-measuring catchments for every configuration...")
    outcomes = [testbed.simulator.simulate(c) for c in tracker.schedule]
    universe = outcomes[0].covered_ases
    history = [
        {link: frozenset(m & universe) for link, m in outcome.catchments.items()}
        for outcome in outcomes
    ]
    print(f"    {len(history)} catchment maps over {len(universe)} ASes")

    # ------------------------------------------------------------------
    # Phase 2 (attack): honeypot sees spoofed queries; schedule greedily.
    # ------------------------------------------------------------------
    print("\n[2] Attack begins: Pareto-distributed botnet, honeypot observing...")
    rng = random.Random(99)
    placement = pareto_placement(sorted(testbed.topology.stubs), 40, rng)
    honeypot = AmplificationHoneypot(service="ntp")

    greedy = GreedyScheduler(sorted(universe), history)
    order, curve = greedy.run(max_steps=12)
    print(f"    greedy deployment order (first 12): {order}")

    volume_history = []
    deployed_history = []
    for config_index in order:
        outcome = outcomes[config_index]
        generator = SpoofedTrafficGenerator(
            placement, outcome.catchments, rng=random.Random(config_index)
        )
        report = honeypot.observe(generator.packets(2000))
        volumes = {link: 0.0 for link in outcome.catchments}
        volumes.update(report.bytes_by_link)
        volume_history.append(volumes)
        deployed_history.append(history[config_index])

    state = ClusterState(universe)
    for catchments in deployed_history:
        state.refine_with_catchments(catchments)
    localizer = SpoofLocalizer(state.clusters(), deployed_history)
    result = localizer.localize(volume_history)

    suspects = result.suspect_ases(volume_fraction=0.9)
    true_sources = placement.spoofing_ases
    found = len(true_sources & suspects)
    print(
        f"    after {len(order)} configurations: {len(suspects)} suspect ASes "
        f"capture {found}/{len(true_sources)} true sources"
    )

    # ------------------------------------------------------------------
    # Phase 3: how much did greedy scheduling buy us? (Figure 8)
    # ------------------------------------------------------------------
    print("\n[3] Greedy vs random deployment (mean cluster size by step):")
    random_curves = random_schedule_curves(
        sorted(universe), history, num_sequences=30, seed=1, max_steps=12
    )
    median = percentile_curve(random_curves, 50.0)
    for step in (0, 4, 9, 11):
        print(
            f"    step {step + 1:>2}: greedy {curve[step]:6.2f}  "
            f"random median {median[step]:6.2f}"
        )

    print("\n[4] Volume-aware greedy (splits busy clusters first, §VIII):")
    volume_by_as = placement.volume_by_as(1.0)
    aware = VolumeAwareGreedyScheduler(sorted(universe), history, volume_by_as)
    aware_order, aware_curve = aware.run(max_steps=8)
    print(f"    order: {aware_order}")
    print(f"    weighted cost curve: {[round(v, 3) for v in aware_curve]}")


if __name__ == "__main__":
    main()
