"""Tests for dataset export/import (§VI)."""

import io
import json

import pytest

from repro.bgp.announcement import AnnouncementConfig
from repro.core.clustering import clusters_from_catchment_history
from repro.data import FORMAT_NAME, FORMAT_VERSION, Dataset
from repro.errors import DataFormatError

LINKS = ["l1", "l2"]
CONFIGS = [
    AnnouncementConfig(announced=frozenset(LINKS), label="all", phase="locations"),
    AnnouncementConfig(
        announced=frozenset(LINKS),
        prepended=frozenset(["l1"]),
        label="prep",
        phase="prepending",
    ),
    AnnouncementConfig(
        announced=frozenset(LINKS),
        poisoned={"l1": frozenset([9])},
        no_export={"l2": frozenset([8])},
        label="mixed",
        phase="poisoning",
    ),
]
ASSIGNMENTS = [
    {1: "l1", 2: "l1", 3: "l2"},
    {1: "l1", 2: "l2", 3: "l2"},
    {1: "l2", 2: "l1", 3: "l2"},
]


def sample_dataset():
    return Dataset.from_history(LINKS, CONFIGS, ASSIGNMENTS, meta={"seed": 7})


class TestConstruction:
    def test_from_history(self):
        dataset = sample_dataset()
        assert len(dataset) == 3
        assert dataset.sources() == frozenset({1, 2, 3})
        assert dataset.meta["seed"] == 7

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataFormatError):
            Dataset.from_history(LINKS, CONFIGS, ASSIGNMENTS[:2])

    def test_from_catchment_history(self):
        history = [
            {"l1": frozenset({1, 2}), "l2": frozenset({3})},
            {"l1": frozenset({1}), "l2": frozenset({2, 3})},
        ]
        dataset = Dataset.from_catchment_history(LINKS, CONFIGS[:2], history)
        assert dataset.records[0].assignment == {1: "l1", 2: "l1", 3: "l2"}

    def test_catchment_history_roundtrip(self):
        dataset = sample_dataset()
        history = dataset.catchment_history()
        assert history[0]["l1"] == frozenset({1, 2})
        assert history[2]["l2"] == frozenset({1, 3})


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "dataset.json"
        original = sample_dataset()
        original.save(path)
        restored = Dataset.load(path)
        assert restored.links == original.links
        assert restored.meta == original.meta
        assert len(restored) == len(original)
        for mine, theirs in zip(original.records, restored.records):
            assert mine.config.key() == theirs.config.key()
            assert mine.config.label == theirs.config.label
            assert mine.config.phase == theirs.config.phase
            assert mine.assignment == theirs.assignment

    def test_roundtrip_through_file_object(self):
        buffer = io.StringIO()
        sample_dataset().save(buffer)
        buffer.seek(0)
        restored = Dataset.load(buffer)
        assert len(restored) == 3

    def test_format_marker_written(self):
        payload = sample_dataset().to_json_dict()
        assert payload["format"] == FORMAT_NAME
        assert payload["version"] == FORMAT_VERSION

    def test_wrong_format_rejected(self):
        with pytest.raises(DataFormatError, match="not a"):
            Dataset.from_json_dict({"format": "something-else"})

    def test_wrong_version_rejected(self):
        with pytest.raises(DataFormatError, match="version"):
            Dataset.from_json_dict({"format": FORMAT_NAME, "version": 99})

    def test_malformed_record_rejected(self):
        payload = sample_dataset().to_json_dict()
        del payload["configs"][1]["announced"]
        with pytest.raises(DataFormatError, match="record 1"):
            Dataset.from_json_dict(payload)

    def test_json_is_stable(self):
        a = json.dumps(sample_dataset().to_json_dict(), sort_keys=True)
        b = json.dumps(sample_dataset().to_json_dict(), sort_keys=True)
        assert a == b


class TestReanalysis:
    def test_clustering_from_loaded_dataset(self, tmp_path):
        """The paper's use case: reanalyze a published dataset offline."""
        path = tmp_path / "dataset.json"
        sample_dataset().save(path)
        dataset = Dataset.load(path)
        state = clusters_from_catchment_history(
            sorted(dataset.sources()), dataset.catchment_history()
        )
        # The three assignments fully separate sources 1, 2, 3.
        assert state.sizes() == [1, 1, 1]

    def test_configs_preserve_manipulations(self, tmp_path):
        path = tmp_path / "dataset.json"
        sample_dataset().save(path)
        configs = Dataset.load(path).configs()
        assert configs[1].prepended == frozenset(["l1"])
        assert configs[2].poisons_for_link("l1") == frozenset([9])
        assert configs[2].no_export_for_link("l2") == frozenset([8])


class TestEndToEndExport:
    def test_export_from_evaluation_run(self, small_testbed, tmp_path):
        from repro.analysis.figures import EvaluationRun

        run = EvaluationRun(testbed=small_testbed, max_configs=6)
        dataset = Dataset.from_catchment_history(
            small_testbed.origin.link_ids,
            run.schedule,
            run.catchment_history,
            meta={"ases": len(small_testbed.graph)},
        )
        path = tmp_path / "run.json"
        dataset.save(path)
        restored = Dataset.load(path)
        assert len(restored) == 6
        assert restored.catchment_history() == run.catchment_history
