"""Tests for repro.topology.graph.ASGraph."""

import pytest

from repro.errors import TopologyError
from repro.topology.graph import ASGraph
from repro.topology.relationships import Relationship


def chain_graph():
    """1 provides for 2 provides for 3; 3 peers with 4; 4 customer of 1."""
    graph = ASGraph()
    graph.add_link(2, 1, Relationship.PROVIDER)
    graph.add_link(3, 2, Relationship.PROVIDER)
    graph.add_link(3, 4, Relationship.PEER)
    graph.add_link(4, 1, Relationship.PROVIDER)
    return graph


class TestConstruction:
    def test_add_as_idempotent(self):
        graph = ASGraph()
        graph.add_as(7)
        graph.add_as(7)
        assert len(graph) == 1

    def test_add_link_both_directions(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.PROVIDER)
        assert graph.relationship(1, 2) is Relationship.PROVIDER
        assert graph.relationship(2, 1) is Relationship.CUSTOMER

    def test_peer_link_symmetric(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.PEER)
        assert graph.relationship(1, 2) is Relationship.PEER
        assert graph.relationship(2, 1) is Relationship.PEER

    def test_rejects_self_link(self):
        graph = ASGraph()
        with pytest.raises(TopologyError):
            graph.add_link(3, 3, Relationship.PEER)

    def test_rejects_contradictory_relink(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.PEER)
        with pytest.raises(TopologyError):
            graph.add_link(1, 2, Relationship.PROVIDER)

    def test_same_relink_is_noop(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.PEER)
        graph.add_link(1, 2, Relationship.PEER)
        assert graph.num_links() == 1

    def test_remove_link(self):
        graph = chain_graph()
        graph.remove_link(3, 4)
        assert not graph.has_link(3, 4)
        assert not graph.has_link(4, 3)

    def test_remove_missing_link_raises(self):
        graph = chain_graph()
        with pytest.raises(TopologyError):
            graph.remove_link(1, 3)


class TestQueries:
    def test_len_and_contains(self):
        graph = chain_graph()
        assert len(graph) == 4
        assert 3 in graph
        assert 99 not in graph

    def test_num_links(self):
        assert chain_graph().num_links() == 4

    def test_customers_providers_peers(self):
        graph = chain_graph()
        assert graph.customers(1) == [2, 4]
        assert graph.providers(3) == [2]
        assert graph.peers(3) == [4]

    def test_neighbors_unknown_as_raises(self):
        with pytest.raises(TopologyError):
            chain_graph().neighbors(99)

    def test_relationship_unlinked_raises(self):
        with pytest.raises(TopologyError):
            chain_graph().relationship(1, 3)

    def test_degree(self):
        graph = chain_graph()
        assert graph.degree(1) == 2
        assert graph.degree(3) == 2

    def test_tier1_detection(self):
        graph = chain_graph()
        assert graph.tier1_ases() == frozenset({1})

    def test_stub_detection(self):
        graph = chain_graph()
        assert graph.stub_ases() == frozenset({3, 4})

    def test_links_iteration_canonical(self):
        links = list(chain_graph().links())
        assert len(links) == 4
        assert all(a < b for a, b, _ in links)


class TestDerived:
    def test_customer_cone_includes_recursive_customers(self):
        graph = chain_graph()
        assert graph.customer_cone(1) == frozenset({1, 2, 3, 4})
        assert graph.customer_cone(2) == frozenset({2, 3})

    def test_customer_cone_of_stub_is_itself(self):
        assert chain_graph().customer_cone(3) == frozenset({3})

    def test_customer_cone_unknown_raises(self):
        with pytest.raises(TopologyError):
            chain_graph().customer_cone(42)

    def test_hop_distances(self):
        graph = chain_graph()
        distances = graph.hop_distances([1])
        assert distances == {1: 0, 2: 1, 4: 1, 3: 2}

    def test_hop_distances_multi_source(self):
        graph = chain_graph()
        distances = graph.hop_distances([3, 4])
        assert distances[3] == 0 and distances[4] == 0
        assert distances[2] == 1 and distances[1] == 1

    def test_hop_distances_unknown_source_raises(self):
        with pytest.raises(TopologyError):
            chain_graph().hop_distances([99])

    def test_connected_component(self):
        graph = chain_graph()
        graph.add_as(50)  # isolated
        assert 50 not in graph.connected_component(1)


class TestValidation:
    def test_valid_graph_passes(self):
        chain_graph().validate()

    def test_detects_provider_cycle(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.PROVIDER)
        graph.add_link(2, 3, Relationship.PROVIDER)
        graph.add_link(3, 1, Relationship.PROVIDER)
        with pytest.raises(TopologyError, match="cycle"):
            graph.validate()

    def test_detects_disconnection(self):
        graph = chain_graph()
        graph.add_link(10, 11, Relationship.PEER)
        with pytest.raises(TopologyError, match="disconnected"):
            graph.validate()

    def test_empty_graph_validates(self):
        ASGraph().validate()


class TestCopy:
    def test_copy_is_independent(self):
        graph = chain_graph()
        clone = graph.copy()
        clone.remove_link(3, 4)
        assert graph.has_link(3, 4)
        assert not clone.has_link(3, 4)

    def test_copy_preserves_relationships(self):
        graph = chain_graph()
        clone = graph.copy()
        for a, b, rel in graph.links():
            assert clone.relationship(a, b) is rel
