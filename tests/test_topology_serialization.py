"""Tests for CAIDA as-rel serialization."""

import io

import pytest

from repro.errors import DataFormatError
from repro.topology.generator import TopologyParams, generate_topology
from repro.topology.relationships import Relationship
from repro.topology.serialization import (
    dump_as_rel,
    dumps_as_rel,
    load_as_rel,
    loads_as_rel,
)


SAMPLE = """# comment line
1|2|-1
2|3|-1
3|4|0
"""


class TestLoad:
    def test_loads_provider_customer(self):
        graph = loads_as_rel(SAMPLE)
        assert graph.relationship(1, 2) is Relationship.CUSTOMER  # 1 provides 2
        assert graph.relationship(2, 1) is Relationship.PROVIDER

    def test_loads_peering(self):
        graph = loads_as_rel(SAMPLE)
        assert graph.relationship(3, 4) is Relationship.PEER

    def test_skips_comments_and_blanks(self):
        graph = loads_as_rel("# x\n\n1|2|0\n")
        assert graph.num_links() == 1

    def test_extra_fields_tolerated(self):
        # Real CAIDA files carry a 4th field (inference method).
        graph = loads_as_rel("1|2|-1|bgp\n")
        assert graph.num_links() == 1

    def test_rejects_short_line(self):
        with pytest.raises(DataFormatError, match="line 1"):
            loads_as_rel("1|2\n")

    def test_rejects_non_integer(self):
        with pytest.raises(DataFormatError):
            loads_as_rel("a|2|0\n")

    def test_rejects_unknown_code(self):
        with pytest.raises(DataFormatError, match="unknown"):
            loads_as_rel("1|2|7\n")

    def test_rejects_contradiction(self):
        with pytest.raises(DataFormatError, match="line 2"):
            loads_as_rel("1|2|0\n1|2|-1\n")

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "rels.txt"
        path.write_text(SAMPLE)
        graph = load_as_rel(path)
        assert len(graph) == 4

    def test_load_from_file_object(self):
        graph = load_as_rel(io.StringIO(SAMPLE))
        assert len(graph) == 4


class TestDumpRoundtrip:
    def test_roundtrip_generated_topology(self):
        topo = generate_topology(
            TopologyParams(num_tier1=3, num_transit=15, num_stub=40, seed=3)
        )
        text = dumps_as_rel(topo.graph)
        restored = loads_as_rel(text)
        assert list(restored.links()) == list(topo.graph.links())

    def test_dump_to_file(self, tmp_path):
        graph = loads_as_rel(SAMPLE)
        path = tmp_path / "out.txt"
        dump_as_rel(graph, path)
        assert list(load_as_rel(path).links()) == list(graph.links())

    def test_dump_writes_provider_side(self):
        graph = loads_as_rel("5|3|-1\n")  # 5 provides for 3
        text = dumps_as_rel(graph)
        assert "5|3|-1" in text.replace(" ", "")
