"""Tests for the traceroute repair pipeline (§IV-b)."""

from repro.measurement.ip2as import AddressPlan, IPToASMapper
from repro.measurement.repair import (
    DROP_ALL_UNMAPPED,
    DROP_ALL_UNRESPONSIVE,
    DROP_EMPTY,
    as_path_from_traceroute,
    as_path_with_reason,
    build_bgp_segment_index,
    build_gap_index,
    map_hops_to_ases,
    repair_ip_gaps,
    resolve_as_gaps,
)
from repro.measurement.traceroute import Traceroute
from repro.types import Prefix


def trace(hops, probe_as=1, reached=True):
    return Traceroute(
        probe_as=probe_as, target=999, hops=tuple(hops), reached_target=reached
    )


class TestGapIndex:
    def test_indexes_responsive_segments(self):
        index = build_gap_index([trace([10, 20, 30])])
        assert index[(10, 30)] == {(20,)}
        assert index[(10, 20)] == {()}

    def test_segments_broken_by_unresponsive(self):
        index = build_gap_index([trace([10, None, 30])])
        assert (10, 30) not in index

    def test_multiple_traces_union(self):
        index = build_gap_index([trace([10, 20, 30]), trace([10, 25, 30])])
        assert index[(10, 30)] == {(20,), (25,)}


class TestIPGapRepair:
    def test_unique_segment_substituted(self):
        """Paper step 1: a gap bracketed by (10, 30) with exactly one
        responsive sequence between them elsewhere is filled."""
        complete = trace([10, 20, 30])
        broken = trace([10, None, 30])
        index = build_gap_index([complete, broken])
        repaired = repair_ip_gaps(broken, index)
        assert repaired.hops == (10, 20, 30)

    def test_ambiguous_segment_left_alone(self):
        index = build_gap_index([trace([10, 20, 30]), trace([10, 25, 30])])
        repaired = repair_ip_gaps(trace([10, None, 30]), index)
        assert repaired.hops == (10, None, 30)

    def test_length_mismatch_not_substituted(self):
        index = build_gap_index([trace([10, 20, 21, 30])])
        repaired = repair_ip_gaps(trace([10, None, 30]), index)
        assert repaired.hops == (10, None, 30)

    def test_multi_hop_gap_repair(self):
        complete = trace([10, 20, 21, 30])
        broken = trace([10, None, None, 30])
        index = build_gap_index([complete])
        assert repair_ip_gaps(broken, index).hops == (10, 20, 21, 30)

    def test_leading_gap_untouched(self):
        index = build_gap_index([trace([10, 20])])
        repaired = repair_ip_gaps(trace([None, 10, 20]), index)
        assert repaired.hops == (None, 10, 20)

    def test_trailing_gap_untouched(self):
        index = build_gap_index([trace([10, 20])])
        repaired = repair_ip_gaps(trace([10, 20, None]), index)
        assert repaired.hops == (10, 20, None)


class TestASGapResolution:
    def test_same_as_bracket_filled(self):
        """Paper step 2: gap surrounded by the same AS maps to that AS."""
        assert resolve_as_gaps([5, None, 5]) == [5, 5, 5]

    def test_different_as_bracket_uses_bgp(self):
        """Paper step 3: unique BGP segment between the bracket ASes."""
        segments = build_bgp_segment_index([(5, 7, 9)])
        assert resolve_as_gaps([5, None, 9], segments) == [5, 7, 9]

    def test_ambiguous_bgp_segment_left_unknown(self):
        segments = build_bgp_segment_index([(5, 7, 9), (5, 8, 9)])
        assert resolve_as_gaps([5, None, 9], segments) == [5, None, 9]

    def test_no_bgp_index_leaves_unknown(self):
        assert resolve_as_gaps([5, None, 9]) == [5, None, 9]

    def test_bgp_segment_index_collapses_prepending(self):
        segments = build_bgp_segment_index([(5, 7, 7, 7, 9)])
        assert segments[(5, 9)] == {(7,)}

    def test_gap_at_edges_left_unknown(self):
        assert resolve_as_gaps([None, 5, None]) == [None, 5, None]


class TestFullPipeline:
    def make_mapper(self):
        plan = AddressPlan([1, 2, 3], origin_asn=9)
        ixp_prefix = Prefix.parse("206.0.0.0/24")
        return plan, IPToASMapper(plan, [ixp_prefix]), ixp_prefix

    def test_clean_path(self):
        plan, mapper, _ = self.make_mapper()
        hops = [
            plan.router_address(1, 0),
            plan.router_address(2, 0),
            plan.router_address(3, 0),
            plan.target_address(),
        ]
        path = as_path_from_traceroute(trace(hops), mapper)
        assert path == (1, 2, 3, 9)

    def test_consecutive_hops_in_same_as_collapse(self):
        plan, mapper, _ = self.make_mapper()
        hops = [
            plan.router_address(1, 0),
            plan.router_address(1, 1),
            plan.router_address(2, 0),
        ]
        assert as_path_from_traceroute(trace(hops), mapper) == (1, 2)

    def test_ixp_hops_dropped(self):
        plan, mapper, ixp_prefix = self.make_mapper()
        hops = [
            plan.router_address(1, 0),
            ixp_prefix.network + 7,
            plan.router_address(2, 0),
        ]
        assert as_path_from_traceroute(trace(hops), mapper) == (1, 2)

    def test_unresolvable_hops_ignored(self):
        """Paper: remaining unmapped hops are dropped from the AS path."""
        plan, mapper, _ = self.make_mapper()
        hops = [plan.router_address(1, 0), None, plan.router_address(3, 0)]
        assert as_path_from_traceroute(trace(hops), mapper) == (1, 3)

    def test_full_repair_chain(self):
        plan, mapper, _ = self.make_mapper()
        complete_hops = [
            plan.router_address(1, 0),
            plan.router_address(2, 0),
            plan.router_address(3, 0),
        ]
        broken_hops = [
            plan.router_address(1, 0),
            None,
            plan.router_address(3, 0),
        ]
        gap_index = build_gap_index([trace(complete_hops)])
        path = as_path_from_traceroute(trace(broken_hops), mapper, gap_index)
        assert path == (1, 2, 3)

    def test_bgp_bracketing_in_pipeline(self):
        plan, mapper, _ = self.make_mapper()
        broken_hops = [
            plan.router_address(1, 0),
            None,
            plan.router_address(3, 0),
        ]
        segments = build_bgp_segment_index([(1, 2, 3)])
        path = as_path_from_traceroute(
            trace(broken_hops), mapper, gap_index=None, bgp_segments=segments
        )
        assert path == (1, 2, 3)


class TestMapHops:
    def test_maps_and_marks_unknown(self):
        plan, mapper, ixp_prefix = (
            AddressPlan([1], origin_asn=9),
            None,
            None,
        )
        mapper = IPToASMapper(plan, [Prefix.parse("206.0.0.0/24")])
        hops = [plan.router_address(1, 0), None, 0x01020304, 0xCE000005]
        mapped = map_hops_to_ases(trace(hops), mapper)
        assert mapped == [1, None, None, None]


class TestDropReasons:
    """Degenerate traceroutes are dropped with an explicit reason."""

    def make_mapper(self):
        plan = AddressPlan([1, 2, 3], origin_asn=9)
        ixp_prefix = Prefix.parse("206.0.0.0/24")
        return plan, IPToASMapper(plan, [ixp_prefix]), ixp_prefix

    def test_empty_traceroute_dropped(self):
        _, mapper, _ = self.make_mapper()
        path, reason = as_path_with_reason(trace([]), mapper)
        assert path == ()
        assert reason == DROP_EMPTY

    def test_all_unresponsive_dropped(self):
        _, mapper, _ = self.make_mapper()
        path, reason = as_path_with_reason(trace([None, None, None]), mapper)
        assert path == ()
        assert reason == DROP_ALL_UNRESPONSIVE

    def test_all_unmapped_dropped(self):
        _, mapper, ixp_prefix = self.make_mapper()
        # Responsive hops exist, but every one is an IXP address: the
        # pipeline maps them all to UNKNOWN and nothing survives.
        hops = [int(ixp_prefix.network) + 1, int(ixp_prefix.network) + 2]
        path, reason = as_path_with_reason(trace(hops), mapper)
        assert path == ()
        assert reason == DROP_ALL_UNMAPPED

    def test_usable_traceroute_has_no_reason(self):
        plan, mapper, _ = self.make_mapper()
        hops = [plan.router_address(1, 0), plan.target_address()]
        path, reason = as_path_with_reason(trace(hops), mapper)
        assert path == (1, 9)
        assert reason is None

    def test_partial_unresponsive_still_usable(self):
        plan, mapper, _ = self.make_mapper()
        hops = [None, plan.router_address(2, 0), None]
        path, reason = as_path_with_reason(trace(hops), mapper)
        assert path == (2,)
        assert reason is None

    def test_legacy_api_returns_empty_path(self):
        _, mapper, _ = self.make_mapper()
        assert as_path_from_traceroute(trace([None, None]), mapper) == ()
        assert as_path_from_traceroute(trace([]), mapper) == ()
