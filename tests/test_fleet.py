"""Tests for repro.fleet: specs, streams, scheduler, shards, runtime."""

import asyncio
import io
import json
import os

import pytest

from repro.errors import FleetError
from repro.fleet import (
    CRASH,
    DONE,
    DRAIN,
    EVICT,
    EVICTED,
    LAUNCH,
    PENDING,
    AttackShard,
    FleetEvent,
    FleetRuntime,
    FleetScheduler,
    FleetSpec,
    TaggedBus,
    TaggedLogbook,
    TaggedRegistry,
    derive_seed,
    derive_tenant_seed,
    iter_stream,
    launch_event,
    merge_streams,
    scripted_stream,
    shard_observability,
)
from repro.obs import EventBus, Logbook, MetricsRegistry, Observability
from repro.topology.generator import TopologyParams

#: Small enough to keep per-tenant testbeds cheap, large enough for the
#: pipeline's vantage/probe selection to succeed.
SMALL_PARAMS = dict(
    num_links=5,
    num_vantages=12,
    num_probes=40,
    topology_params=TopologyParams(
        num_tier1=4, num_transit=24, num_stub=90, seed=1
    ),
)


def small_spec(**overrides) -> FleetSpec:
    base = dict(
        seed=3,
        tenants=2,
        attacks_per_tenant=2,
        max_configs=3,
        num_sources=6,
        **SMALL_PARAMS,
    )
    base.update(overrides)
    return FleetSpec(**base)


class TestFleetSpec:
    def test_derived_seeds_are_stable_and_distinct(self):
        a = derive_seed(7, "tenant-00", "198.18.0.0/29")
        assert a == derive_seed(7, "tenant-00", "198.18.0.0/29")
        assert a != derive_seed(7, "tenant-00", "198.18.0.8/29")
        assert a != derive_seed(7, "tenant-01", "198.18.0.0/29")
        assert a != derive_seed(8, "tenant-00", "198.18.0.0/29")
        assert derive_tenant_seed(7, "tenant-00") != derive_tenant_seed(
            7, "tenant-01"
        )

    def test_growing_the_fleet_leaves_existing_shards_untouched(self):
        small = small_spec(tenants=2, attacks_per_tenant=1)
        grown = small_spec(tenants=3, attacks_per_tenant=2)
        small_scenarios = {a.key: a.scenario for a in small.attacks()}
        grown_scenarios = {a.key: a.scenario for a in grown.attacks()}
        for key, scenario in small_scenarios.items():
            assert grown_scenarios[key] == scenario

    def test_attacks_interleave_tenants_and_stagger_launches(self):
        spec = small_spec(launch_stagger_minutes=30.0)
        attacks = spec.attacks()
        assert [a.tenant for a in attacks] == [
            "tenant-00", "tenant-01", "tenant-00", "tenant-01",
        ]
        assert [a.launch_minute for a in attacks] == [0.0, 30.0, 60.0, 90.0]
        assert len({a.key for a in attacks}) == 4

    def test_tenant_testbeds_differ(self):
        spec = small_spec()
        tb0 = spec.tenant_testbed("tenant-00")
        tb1 = spec.tenant_testbed("tenant-01")
        assert tb0.seed != tb1.seed
        assert tb0.topology_params.seed == tb0.seed

    def test_quota_weights_default_to_one(self):
        spec = small_spec(quotas=(("tenant-00", 2.5),))
        weights = spec.quota_weights()
        assert weights == {"tenant-00": 2.5, "tenant-01": 1.0}

    def test_validation(self):
        with pytest.raises(FleetError):
            small_spec(tenants=0)
        with pytest.raises(FleetError):
            small_spec(attacks_per_tenant=0)
        with pytest.raises(FleetError):
            small_spec(distribution="bogus")
        with pytest.raises(FleetError):
            small_spec(max_active=-1)
        with pytest.raises(FleetError):
            small_spec(quotas=(("tenant-00", 0.0),))


class TestFleetStream:
    def test_event_validation(self):
        with pytest.raises(FleetError):
            FleetEvent(minute=0.0, action="explode", tenant="t", prefix="p")
        with pytest.raises(FleetError):
            FleetEvent(minute=-1.0, action=CRASH, tenant="t", prefix="p")
        with pytest.raises(FleetError):
            FleetEvent(minute=0.0, action=LAUNCH)  # no attack payload
        with pytest.raises(FleetError):
            FleetEvent(minute=0.0, action=DRAIN, tenant="t")  # no prefix

    def test_merge_is_deterministic_and_sorted(self):
        spec = small_spec(launch_stagger_minutes=10.0)
        launches = [launch_event(a) for a in spec.attacks()]
        controls = [
            FleetEvent(minute=15.0, action=DRAIN, tenant="tenant-00",
                       prefix="198.18.0.0/29"),
            FleetEvent(minute=5.0, action=CRASH, tenant="tenant-01",
                       prefix="198.18.1.0/29"),
        ]
        merged = merge_streams(launches, controls)
        assert merged == merge_streams(launches, controls)
        minutes = [event.minute for event in merged]
        assert minutes == sorted(minutes)
        assert merged == scripted_stream(spec, controls)

    def test_iter_stream_rejects_unsorted(self):
        spec = small_spec()
        events = [launch_event(a) for a in spec.attacks()]
        bad = [
            FleetEvent(minute=10.0, action=DRAIN, tenant="t", prefix="p"),
            FleetEvent(minute=5.0, action=DRAIN, tenant="t", prefix="p"),
        ]
        assert list(iter_stream(events)) == events
        with pytest.raises(FleetError):
            list(iter_stream(bad))


class TestFleetScheduler:
    def test_weighted_fair_share(self):
        sched = FleetScheduler(quotas={"a": 2.0, "b": 1.0})
        sched.register(("a", "p"), "a")
        sched.register(("b", "p"), "b")
        runnable = [("a", "p"), ("b", "p")]
        picks = []
        for _ in range(30):
            key = sched.next_key(runnable)
            picks.append(key[0])
            sched.record(key)
        # Tenant a (weight 2) gets twice the dispatch rate of b.
        assert picks.count("a") == 20
        assert picks.count("b") == 10

    def test_no_shard_starves_within_a_tenant(self):
        sched = FleetScheduler()
        keys = [("t", f"prefix-{i}") for i in range(4)]
        for key in keys:
            sched.register(key, "t")
        picks = []
        for _ in range(40):
            key = sched.next_key(keys)
            picks.append(key)
            sched.record(key)
        # Strict round robin: every shard appears once per 4 dispatches.
        for start in range(0, 40, 4):
            assert set(picks[start:start + 4]) == set(keys)

    def test_admission_order_follows_fair_share(self):
        sched = FleetScheduler(quotas={"a": 1.0, "b": 1.0}, max_active=1)
        sched.register(("a", "p1"), "a")
        sched.register(("b", "p1"), "b")
        sched.register(("a", "p2"), "a")
        # Charge tenant a some work; b should be admitted first now.
        sched.record(("a", "p1"))
        order = sched.admission_order([("a", "p2"), ("b", "p1")])
        assert order[0] == ("b", "p1")
        assert sched.can_admit(0)
        assert not sched.can_admit(1)

    def test_unknown_keys_are_errors(self):
        sched = FleetScheduler()
        assert sched.next_key([("ghost", "p")]) is None
        with pytest.raises(FleetError):
            sched.record(("ghost", "p"))
        with pytest.raises(FleetError):
            FleetScheduler(max_active=-1)
        with pytest.raises(FleetError):
            FleetScheduler(quotas={"a": 0.0})

    def test_snapshot_is_json_safe(self):
        import json

        sched = FleetScheduler(quotas={"a": 2.0})
        sched.register(("a", "p"), "a")
        sched.record(("a", "p"))
        snapshot = sched.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["dispatches"] == 1
        assert snapshot["debt"]["a"] == 0.5


class TestTaggedViews:
    def test_tagged_registry_merges_labels(self):
        registry = MetricsRegistry()
        tagged = TaggedRegistry(registry, tenant="t0", attack="t0/p")
        tagged.counter("hits_total", help="h").inc(2)
        tagged.gauge("depth", labels={"queue": "ingest"}).set(3)
        text = registry.render_prometheus()
        assert 'hits_total{attack="t0/p",tenant="t0"} 2' in text
        assert 'tenant="t0"' in text and 'queue="ingest"' in text

    def test_payload_labels_win_on_collision(self):
        registry = MetricsRegistry()
        tagged = TaggedRegistry(registry, tenant="outer")
        tagged.counter("c_total", labels={"tenant": "inner"}).inc()
        assert 'tenant="inner"' in registry.render_prometheus()

    def test_tagged_bus_injects_fields(self):
        bus = EventBus()
        tagged = TaggedBus(bus, tenant="t0", attack="t0/p")
        tagged.publish("window", window_index=4)
        tagged.publish("window", tenant="override")
        history = bus.history()
        assert history[0]["tenant"] == "t0"
        assert history[0]["attack"] == "t0/p"
        assert history[0]["window_index"] == 4
        assert history[1]["tenant"] == "override"
        bus.close()

    def test_tagged_logbook_keeps_human_mode_byte_identical(self):
        plain_stream, tagged_stream = io.StringIO(), io.StringIO()
        plain = Logbook(stream=plain_stream)
        tagged = TaggedLogbook(
            Logbook(stream=tagged_stream), tenant="t0", attack="t0/p"
        )
        plain.info("window 4 done", event="window", window_index=4)
        tagged.info("window 4 done", event="window", window_index=4)
        assert tagged_stream.getvalue() == plain_stream.getvalue()
        assert tagged_stream.getvalue() == "window 4 done\n"

    def test_tagged_logbook_stamps_structured_fields(self):
        stream = io.StringIO()
        parent = Logbook(stream=stream, json_mode=True)
        tagged = TaggedLogbook(parent, tenant="t0", attack="t0/p")
        tagged.warning("shard killed", event="shard_kill", minute=120)
        line = json.loads(stream.getvalue())
        assert line["tenant"] == "t0"
        assert line["attack"] == "t0/p"
        assert line["event"] == "shard_kill"
        assert line["minute"] == 120
        # The retained record (what the flight recorder sees) is tagged too.
        assert parent.records[-1].fields["tenant"] == "t0"

    def test_tagged_logbook_explicit_fields_win(self):
        parent = Logbook(stream=io.StringIO())
        tagged = TaggedLogbook(parent, tenant="outer")
        tagged.error("boom", tenant="inner")
        assert parent.records[-1].fields == {"tenant": "inner"}

    def test_tagged_logbook_shares_parent_state(self):
        parent = Logbook(stream=io.StringIO(), json_mode=True, level="debug")
        tagged = TaggedLogbook(parent, tenant="t0")
        seen = []
        tagged.listeners.append(lambda record: seen.append(record.message))
        tagged.debug("quiet")
        assert tagged.records is parent.records
        assert tagged.json_mode is True and tagged.level == "debug"
        assert seen == ["quiet"]

    def test_shard_observability_of_bare_parent(self):
        bare = shard_observability(None, "t0", "t0/p")
        assert bare.registry is None and bare.bus is None
        empty = shard_observability(Observability(), "t0", "t0/p")
        assert empty.registry is None and empty.bus is None
        armed = shard_observability(
            Observability(
                registry=MetricsRegistry(),
                bus=EventBus(),
                logbook=Logbook(stream=io.StringIO()),
            ),
            "t0",
            "t0/p",
        )
        assert isinstance(armed.registry, TaggedRegistry)
        assert isinstance(armed.bus, TaggedBus)
        assert isinstance(armed.logbook, TaggedLogbook)
        # Span/profiler identities would collide across shards.
        assert armed.tracer is None and armed.profiler is None
        armed.bus._bus.close()


@pytest.fixture(scope="module")
def base_run(tmp_path_factory):
    """One full fleet run with checkpointing: the determinism baseline."""
    checkpoint_dir = str(tmp_path_factory.mktemp("fleet-ckpt"))
    spec = small_spec(checkpoint_every=2)
    runtime = FleetRuntime(spec, checkpoint_dir=checkpoint_dir)
    report = runtime.run()
    runtime.close()
    return spec, report, checkpoint_dir


class TestAttackShard:
    def test_lifecycle_guards(self, base_run):
        spec, _, _ = base_run
        attack = spec.attacks()[0]
        shard = AttackShard(attack)
        assert shard.state == PENDING
        with pytest.raises(FleetError):
            shard.step()
        with pytest.raises(FleetError):
            shard.crash()
        with pytest.raises(FleetError):
            shard.resume(None, None)
        with pytest.raises(FleetError):
            shard.force_checkpoint()

    def test_drain_of_pending_shard_evicts(self, base_run):
        spec, _, _ = base_run
        shard = AttackShard(spec.attacks()[0])
        shard.drain()
        assert shard.state == EVICTED
        shard.drain()  # idempotent on finished shards
        assert shard.state == EVICTED

    def test_report_of_pending_shard_is_empty(self, base_run):
        spec, _, _ = base_run
        shard = AttackShard(spec.attacks()[0])
        report = shard.report()
        assert report.state == PENDING
        assert report.windows == 0
        assert report.attribution_digest == ""
        assert report.key == shard.key


class TestFleetRuntime:
    def test_all_shards_finish(self, base_run):
        _, report, _ = base_run
        assert len(report.shards) == 4
        assert all(shard.state == DONE for shard in report.shards)
        assert all(shard.windows > 0 for shard in report.shards)
        assert all(shard.attribution_digest for shard in report.shards)
        assert report.events_missed == 0

    def test_checkpoints_namespaced_per_shard(self, base_run):
        _, report, checkpoint_dir = base_run
        paths = {shard.checkpoint_path for shard in report.shards}
        assert len(paths) == 4
        for path in paths:
            assert os.path.dirname(path) == checkpoint_dir
            assert os.path.exists(path)
        assert all(shard.checkpoint_digest for shard in report.shards)

    def test_rerun_is_byte_deterministic(self, base_run, tmp_path):
        spec, report, _ = base_run
        runtime = FleetRuntime(spec, checkpoint_dir=str(tmp_path))
        again = runtime.run()
        runtime.close()
        assert again.digest == report.digest
        assert [s.as_dict() for s in again.shards] == [
            s.as_dict() for s in report.shards
        ]

    def test_async_driver_matches_serial(self, base_run, tmp_path):
        spec, report, _ = base_run
        runtime = FleetRuntime(spec, checkpoint_dir=str(tmp_path))
        from_async = asyncio.run(runtime.run_async())
        runtime.close()
        assert from_async.digest == report.digest

    def test_max_active_bounds_admissions(self):
        spec = small_spec(max_active=1)
        runtime = FleetRuntime(spec)
        peak = {"active": 0}
        original = runtime._admit

        def watched_admit():
            original()
            peak["active"] = max(peak["active"], runtime._active_count())

        runtime._admit = watched_admit
        report = runtime.run()
        runtime.close()
        assert peak["active"] == 1
        assert all(shard.state == DONE for shard in report.shards)

    def test_lifecycle_logs_carry_tenant_and_attack(self, tmp_path):
        """Fleet-mode log records are filterable by shard (ISSUE 10 S4)."""
        stream = io.StringIO()
        spec = small_spec(checkpoint_every=2)
        victim = ("tenant-00", "198.18.0.0/29")
        events = scripted_stream(
            spec,
            [FleetEvent(minute=100.0, action=CRASH,
                        tenant=victim[0], prefix=victim[1])],
        )
        runtime = FleetRuntime(
            spec,
            events=events,
            obs=Observability(
                logbook=Logbook(stream=stream, json_mode=True)
            ),
            checkpoint_dir=str(tmp_path),
        )
        try:
            runtime.run()
        finally:
            runtime.close()
        lines = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        kills = [l for l in lines if l.get("event") == "shard_kill"]
        resumes = [l for l in lines if l.get("event") == "shard_resume"]
        assert kills and resumes
        assert kills[0]["tenant"] == victim[0]
        assert kills[0]["attack"] == f"{victim[0]}/{victim[1]}"
        assert resumes[0]["tenant"] == victim[0]
        assert resumes[0]["rollback"] in (True, False)

    def test_scripted_drain_and_evict(self, base_run):
        spec, _, _ = base_run
        events = scripted_stream(
            spec,
            [
                FleetEvent(minute=100.0, action=DRAIN, tenant="tenant-00",
                           prefix="198.18.0.0/29"),
                FleetEvent(minute=100.0, action=EVICT, tenant="tenant-00",
                           prefix="198.18.0.8/29"),
            ],
        )
        runtime = FleetRuntime(spec, events=events)
        report = runtime.run()
        runtime.close()
        by_key = {shard.key: shard for shard in report.shards}
        drained = by_key[("tenant-00", "198.18.0.0/29")]
        assert drained.state == DONE
        assert drained.stop_reason == "drained by fleet operator"
        assert 0 < drained.windows < 12
        assert by_key[("tenant-00", "198.18.0.8/29")].state == EVICTED
        untouched = by_key[("tenant-01", "198.18.1.0/29")]
        assert untouched.state == DONE
        assert untouched.stop_reason == "schedule exhausted"

    def test_event_on_unknown_shard_is_missed_not_fatal(self, base_run):
        spec, _, _ = base_run
        events = scripted_stream(
            spec,
            [FleetEvent(minute=1.0, action=EVICT, tenant="ghost",
                        prefix="10.0.0.0/29")],
        )
        runtime = FleetRuntime(spec, events=events)
        report = runtime.run()
        runtime.close()
        assert report.events_missed == 1
        assert len(report.shards) == 4

    def test_duplicate_launch_is_missed(self, base_run):
        spec, _, _ = base_run
        attacks = spec.attacks()
        events = merge_streams(
            [launch_event(a) for a in attacks],
            [launch_event(attacks[0])],
        )
        runtime = FleetRuntime(spec, events=events)
        report = runtime.run()
        runtime.close()
        assert report.events_missed == 1
        assert len(report.shards) == 4

    def test_tenant_engines_are_shared_within_a_tenant(self):
        spec = small_spec(tenants=1, attacks_per_tenant=2)
        runtime = FleetRuntime(spec)
        runtime.run()
        assert len(runtime._engines) == 1
        engine = runtime._engines["tenant-00"]
        # Both shards premeasured the same schedule through one engine:
        # the second admission is pure cache hits.
        assert engine.stats.cache_hits >= spec.max_configs
        runtime.close()

    def test_tenants_summary_shape(self, base_run):
        import json

        spec, _, _ = base_run
        runtime = FleetRuntime(spec)
        report = runtime.run()
        summary = runtime.tenants_summary()
        runtime.close()
        assert json.loads(json.dumps(summary)) == summary
        assert sorted(summary["tenants"]) == ["tenant-00", "tenant-01"]
        entry = summary["tenants"]["tenant-00"]
        assert entry["windows"] == sum(
            s.windows for s in report.shards if s.tenant == "tenant-00"
        )
        assert entry["states"] == {"done": 2}
        assert entry["slo"]["ready"] is True
        assert entry["weight"] == 1.0

    def test_per_tenant_watchdogs_route_by_tenant_label(self):
        from repro.obs import SloRule

        obs = Observability(registry=MetricsRegistry(), bus=EventBus())
        spec = small_spec(tenants=2, attacks_per_tenant=1)
        # A rule every window breaches: any positive window duration.
        rules = (
            SloRule("window_lag_seconds", "impossibly strict", -1.0),
        )
        runtime = FleetRuntime(spec, obs=obs, slo_rules=rules)
        runtime.run()
        assert not runtime.watchdogs["tenant-00"].ready
        assert not runtime.watchdogs["tenant-01"].ready
        text = obs.registry.render_prometheus()
        assert 'repro_slo_breached_total{slo="window_lag_seconds",tenant="tenant-00"}' in text
        assert 'repro_slo_breached_total{slo="window_lag_seconds",tenant="tenant-01"}' in text
        runtime.close()
        obs.bus.close()

    def test_fleet_events_published_on_bus(self):
        obs = Observability(bus=EventBus())
        spec = small_spec(tenants=1, attacks_per_tenant=1)
        runtime = FleetRuntime(spec, obs=obs)
        runtime.run()
        runtime.close()
        actions = [
            event["action"]
            for event in obs.bus.history()
            if event["kind"] == "fleet"
        ]
        assert actions[:2] == ["spawn", "admit"]
        assert actions[-1] == "done"
        # Every shard-tagged event names its tenant.
        window_events = [
            event for event in obs.bus.history() if event["kind"] == "window"
        ]
        assert window_events
        assert all(e["tenant"] == "tenant-00" for e in window_events)
        obs.bus.close()

    def test_close_is_idempotent(self):
        runtime = FleetRuntime(small_spec(tenants=1, attacks_per_tenant=1))
        runtime.run()
        runtime.close()
        runtime.close()
