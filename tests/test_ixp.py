"""Tests for the IXP registry."""

import pytest

from repro.measurement.ixp import IXP, IXPRegistry, synthesize_ixps
from repro.topology.relationships import Relationship
from repro.types import Prefix


def sample_ixp():
    return IXP(
        name="TEST-IX",
        peering_lan=Prefix.parse("206.0.1.0/24"),
        members=frozenset({10, 20, 30}),
    )


class TestRegistry:
    def test_link_between_members_maps_to_ixp(self):
        registry = IXPRegistry([sample_ixp()])
        assert registry.ixp_for_link(10, 20).name == "TEST-IX"
        assert registry.ixp_for_link(20, 10).name == "TEST-IX"

    def test_link_outside_members_is_private(self):
        registry = IXPRegistry([sample_ixp()])
        assert registry.ixp_for_link(10, 99) is None

    def test_prefixes(self):
        registry = IXPRegistry([sample_ixp()])
        assert registry.prefixes() == [Prefix.parse("206.0.1.0/24")]

    def test_lan_address_inside_lan_and_stable(self):
        ixp = sample_ixp()
        registry = IXPRegistry([ixp])
        address = registry.lan_address(ixp, 20)
        assert ixp.peering_lan.contains_address(address)
        assert registry.lan_address(ixp, 20) == address

    def test_lan_addresses_differ_by_member(self):
        ixp = sample_ixp()
        registry = IXPRegistry([ixp])
        assert registry.lan_address(ixp, 10) != registry.lan_address(ixp, 20)

    def test_empty_registry(self):
        registry = IXPRegistry()
        assert registry.ixps == []
        assert registry.ixp_for_link(1, 2) is None


class TestSynthesize:
    def test_covers_fraction_of_peer_links(self, small_topology):
        registry = synthesize_ixps(
            small_topology.graph, fraction_of_peer_links=1.0, num_ixps=3, seed=1
        )
        peer_links = [
            (a, b)
            for a, b, rel in small_topology.graph.links()
            if rel is Relationship.PEER
        ]
        covered = sum(
            1 for a, b in peer_links if registry.ixp_for_link(a, b) is not None
        )
        assert covered == len(peer_links)

    def test_zero_fraction_covers_nothing(self, small_topology):
        registry = synthesize_ixps(
            small_topology.graph, fraction_of_peer_links=0.0, seed=1
        )
        assert registry.ixps == []

    def test_distinct_peering_lans(self, small_topology):
        registry = synthesize_ixps(small_topology.graph, num_ixps=4, seed=2)
        lans = {str(ixp.peering_lan) for ixp in registry.ixps}
        assert len(lans) == len(registry.ixps)

    def test_deterministic(self, small_topology):
        a = synthesize_ixps(small_topology.graph, seed=3)
        b = synthesize_ixps(small_topology.graph, seed=3)
        assert [ixp.members for ixp in a.ixps] == [ixp.members for ixp in b.ixps]

    def test_rejects_bad_args(self, small_topology):
        with pytest.raises(ValueError):
            synthesize_ixps(small_topology.graph, fraction_of_peer_links=2.0)
        with pytest.raises(ValueError):
            synthesize_ixps(small_topology.graph, num_ixps=0)
