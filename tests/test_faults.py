"""Unit tests for the fault-injection layer (repro.faults)."""

from __future__ import annotations

import json

import pytest

from repro.errors import FaultInjectionError, InjectedFault, ReproError
from repro.faults import (
    BUNDLED_PLANS,
    CHECKPOINT_CORRUPTION,
    MEASUREMENT_LOSS,
    ROUTE_CHURN,
    VOLUME_NOISE,
    WORKER_CRASH,
    WORKER_HANG,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InvariantMonitor,
    ResilienceReport,
    RetryPolicy,
    atomic_write_text,
    build_resilience_report,
    content_checksum,
    load_fault_plan,
    stable_unit,
)
from repro.faults.injection import ACTION_CRASH, ACTION_HANG


# ----------------------------------------------------------------------
# stable_unit / FaultSpec / FaultPlan
# ----------------------------------------------------------------------


class TestStableUnit:
    def test_in_unit_interval(self):
        for token in range(200):
            value = stable_unit(7, "site", token)
            assert 0.0 <= value < 1.0

    def test_deterministic_across_calls(self):
        assert stable_unit(3, "a", 1) == stable_unit(3, "a", 1)

    def test_sensitive_to_every_token(self):
        base = stable_unit(3, "a", 1)
        assert stable_unit(4, "a", 1) != base
        assert stable_unit(3, "b", 1) != base
        assert stable_unit(3, "a", 2) != base

    def test_roughly_uniform(self):
        draws = [stable_unit(0, i) for i in range(2000)]
        mean = sum(draws) / len(draws)
        assert abs(mean - 0.5) < 0.03


class TestFaultSpec:
    def test_validates_kind(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec(kind="segfault")

    def test_validates_rate(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec(kind=WORKER_CRASH, rate=1.5)

    def test_validates_window(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec(kind=WORKER_CRASH, start=5, stop=5)

    def test_active_window(self):
        spec = FaultSpec(kind=WORKER_CRASH, rate=1.0, start=2, stop=4)
        assert [spec.active_at(i) for i in range(6)] == [
            False, False, True, True, False, False,
        ]

    def test_open_ended_window(self):
        spec = FaultSpec(kind=WORKER_CRASH, rate=1.0, start=1)
        assert not spec.active_at(0)
        assert spec.active_at(10_000)

    def test_is_an_repro_error(self):
        with pytest.raises(ReproError):
            FaultSpec(kind=WORKER_CRASH, rate=-0.1)


class TestFaultPlan:
    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty

    def test_zero_rate_plan_is_empty(self):
        plan = FaultPlan(specs=(FaultSpec(kind=WORKER_CRASH, rate=0.0),))
        assert plan.is_empty

    def test_specs_for_preserves_positions(self):
        plan = BUNDLED_PLANS["mixed"]
        for position, spec in plan.specs_for(VOLUME_NOISE):
            assert plan.specs[position] is spec
            assert spec.kind == VOLUME_NOISE

    def test_json_round_trip(self):
        plan = BUNDLED_PLANS["mixed"]
        clone = FaultPlan.from_serializable(
            json.loads(json.dumps(plan.as_serializable()))
        )
        assert clone == plan

    def test_round_trip_preserves_decisions(self):
        plan = BUNDLED_PLANS["mixed"]
        clone = FaultPlan.from_serializable(plan.as_serializable())
        for token in range(50):
            assert clone.decision("site", token) == plan.decision("site", token)

    def test_scaled_multiplies_rates(self):
        plan = BUNDLED_PLANS["worker-crash"].scaled(0.5)
        assert plan.specs[0].rate == pytest.approx(0.15)

    def test_scaled_clamps_to_one(self):
        plan = BUNDLED_PLANS["worker-crash"].scaled(100.0)
        assert all(spec.rate <= 1.0 for spec in plan.specs)

    def test_scaled_zero_is_empty(self):
        assert BUNDLED_PLANS["mixed"].scaled(0.0).is_empty

    def test_scaled_rejects_negative(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan().scaled(-1.0)

    def test_malformed_payload_raises(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.from_serializable({"specs": [{"rate": 0.5}]})

    def test_load_bundled_name(self):
        assert load_fault_plan("mixed") is BUNDLED_PLANS["mixed"]

    def test_load_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(BUNDLED_PLANS["volume-noise"].as_serializable())
        )
        assert load_fault_plan(str(path)) == BUNDLED_PLANS["volume-noise"]

    def test_load_unknown_raises(self):
        with pytest.raises(FaultInjectionError):
            load_fault_plan("no-such-plan")

    def test_bundled_plans_carry_their_names(self):
        for name, plan in BUNDLED_PLANS.items():
            assert plan.name == name
            assert not plan.is_empty


# ----------------------------------------------------------------------
# FaultInjector hooks
# ----------------------------------------------------------------------


def _certain(kind, **kwargs):
    return FaultInjector(
        FaultPlan(specs=(FaultSpec(kind=kind, rate=1.0, **kwargs),))
    )


class TestInjectorSimulation:
    def test_empty_plan_is_inert(self):
        injector = FaultInjector()
        assert not injector.active
        assert injector.simulation_action(0, "cfg") is None

    def test_certain_crash_fires(self):
        injector = _certain(WORKER_CRASH)
        action = injector.simulation_action(0, "cfg")
        assert action is not None and action.kind == ACTION_CRASH
        with pytest.raises(InjectedFault):
            action.execute()
        assert injector.log.by_kind[WORKER_CRASH] == 1

    def test_hang_carries_delay(self):
        injector = _certain(WORKER_HANG, delay_seconds=0.0)
        action = injector.simulation_action(0, "cfg")
        assert action is not None and action.kind == ACTION_HANG
        action.execute()  # zero delay: returns immediately

    def test_crash_takes_precedence_over_hang(self):
        injector = FaultInjector(
            FaultPlan(
                specs=(
                    FaultSpec(kind=WORKER_HANG, rate=1.0),
                    FaultSpec(kind=WORKER_CRASH, rate=1.0),
                )
            )
        )
        action = injector.simulation_action(0, "cfg")
        assert action.kind == ACTION_CRASH

    def test_decisions_redrawn_per_attempt(self):
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(kind=WORKER_CRASH, rate=0.5),))
        )
        fired = [
            injector.simulation_action(0, "cfg", attempt) is not None
            for attempt in range(64)
        ]
        assert any(fired) and not all(fired)

    def test_window_gates_by_ordinal(self):
        injector = FaultInjector(
            FaultPlan(
                specs=(FaultSpec(kind=WORKER_CRASH, rate=1.0, start=3, stop=5),)
            )
        )
        fired = [
            injector.simulation_action(ordinal, "cfg") is not None
            for ordinal in range(7)
        ]
        assert fired == [False, False, False, True, True, False, False]

    def test_suppression_disables_firing(self):
        injector = _certain(WORKER_CRASH)
        with injector.suppressed():
            assert not injector.active
            assert injector.simulation_action(0, "cfg") is None
        assert injector.active

    def test_identical_plans_make_identical_decisions(self):
        first = FaultInjector(BUNDLED_PLANS["mixed"])
        second = FaultInjector(BUNDLED_PLANS["mixed"])
        for ordinal in range(40):
            assert first.simulation_action(
                ordinal, f"cfg{ordinal}"
            ) == second.simulation_action(ordinal, f"cfg{ordinal}")


class TestInjectorMeasurement:
    CATCHMENTS = {
        "l1": frozenset(range(100, 140)),
        "l2": frozenset(range(140, 180)),
    }

    def test_empty_plan_returns_input_unchanged(self):
        injector = FaultInjector()
        maps, degraded = injector.degrade_catchments(0, self.CATCHMENTS)
        assert maps == self.CATCHMENTS
        assert degraded == frozenset()

    def test_certain_loss_thins_and_flags(self):
        injector = _certain(MEASUREMENT_LOSS, intensity=0.5)
        maps, degraded = injector.degrade_catchments(0, self.CATCHMENTS)
        assert degraded  # some link lost members
        for link in degraded:
            assert maps[link] < self.CATCHMENTS[link]

    def test_loss_is_deterministic(self):
        first = _certain(MEASUREMENT_LOSS, intensity=0.5)
        second = _certain(MEASUREMENT_LOSS, intensity=0.5)
        assert first.degrade_catchments(
            3, self.CATCHMENTS
        ) == second.degrade_catchments(3, self.CATCHMENTS)

    def test_flap_collectors(self):
        from repro.faults.plan import COLLECTOR_FLAP

        injector = _certain(COLLECTOR_FLAP, intensity=1.0)
        observations = {100: (1, 2), 200: (3, 4)}
        surviving, dropped = injector.flap_collectors(0, observations)
        assert surviving == {}
        assert dropped == 2

    def test_drop_traceroutes(self):
        injector = _certain(MEASUREMENT_LOSS, intensity=1.0)
        surviving, lost = injector.drop_traceroutes(0, ["t1", "t2", "t3"])
        assert surviving == []
        assert lost == 3


class TestInjectorLive:
    def test_volume_noise_identity_without_plan(self):
        assert FaultInjector().volume_noise_factor(0, 0) == 1.0

    def test_volume_noise_nonnegative_and_bounded(self):
        injector = _certain(VOLUME_NOISE, intensity=0.4)
        for window in range(30):
            factor = injector.volume_noise_factor(window, 0)
            assert 0.6 - 1e-9 <= factor <= 1.4 + 1e-9

    def test_extra_churn_respects_window(self):
        injector = FaultInjector(
            FaultPlan(
                specs=(
                    FaultSpec(kind=ROUTE_CHURN, rate=1.0, intensity=0.2, start=5),
                )
            )
        )
        assert injector.extra_churn(0) is None
        assert injector.extra_churn(5) == pytest.approx(0.2)

    def test_corrupt_file_mangles_content(self, tmp_path):
        injector = _certain(CHECKPOINT_CORRUPTION)
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"payload": list(range(100))}))
        original = path.read_bytes()
        assert injector.should_corrupt_checkpoint(0)
        injector.corrupt_file(str(path), 0)
        assert path.read_bytes() != original
        assert path.read_bytes().endswith(b"\x00CORRUPT\x00")


# ----------------------------------------------------------------------
# Resilience primitives
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_exponential_schedule(self):
        policy = RetryPolicy(backoff_base=0.01, backoff_factor=2.0)
        assert policy.delay_for(0) == pytest.approx(0.01)
        assert policy.delay_for(1) == pytest.approx(0.02)
        assert policy.delay_for(2) == pytest.approx(0.04)

    def test_sleep_before_uses_sleeper(self):
        slept = []
        policy = RetryPolicy(backoff_base=0.5)
        policy.sleep_before(1, sleeper=slept.append)
        assert slept == [pytest.approx(1.0)]

    def test_zero_base_skips_sleep(self):
        slept = []
        RetryPolicy(backoff_base=0.0).sleep_before(3, sleeper=slept.append)
        assert slept == []

    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ReproError):
            RetryPolicy(task_timeout=0.0)


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(threshold=2)
        assert not breaker.open
        breaker.record_failure()
        assert not breaker.open
        breaker.record_failure()
        assert breaker.open
        assert breaker.trips == 1

    def test_success_resets_below_threshold(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert not breaker.open

    def test_stays_open_after_success(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.open

    def test_validates_threshold(self):
        with pytest.raises(ReproError):
            CircuitBreaker(threshold=0)


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(str(path), "hello")
        assert path.read_text() == "hello"
        assert not (tmp_path / "out.json.tmp").exists()

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text("old")
        atomic_write_text(str(path), "new")
        assert path.read_text() == "new"

    def test_checksum_is_stable(self):
        assert content_checksum("abc") == content_checksum("abc")
        assert content_checksum("abc") != content_checksum("abd")


# ----------------------------------------------------------------------
# Health: invariants and the resilience report
# ----------------------------------------------------------------------


class TestInvariantMonitor:
    def test_volume_conservation_holds(self):
        monitor = InvariantMonitor()
        assert monitor.check_volume_conservation(10.0, 7.0, 3.0)
        assert monitor.checks == 1 and not monitor.violations

    def test_volume_conservation_violated(self):
        monitor = InvariantMonitor()
        assert not monitor.check_volume_conservation(10.0, 7.0, 1.0)
        assert monitor.violations[0].name == "volume-conservation"

    def test_partition_coverage_holds(self):
        monitor = InvariantMonitor()
        universe = frozenset({1, 2, 3, 4})
        assert monitor.check_partition_coverage(
            universe, [frozenset({1, 2}), frozenset({3, 4})]
        )

    def test_partition_coverage_missing_member(self):
        monitor = InvariantMonitor()
        assert not monitor.check_partition_coverage(
            frozenset({1, 2, 3}), [frozenset({1, 2})]
        )

    def test_partition_coverage_overlap(self):
        monitor = InvariantMonitor()
        assert not monitor.check_partition_coverage(
            frozenset({1, 2}), [frozenset({1, 2}), frozenset({2})]
        )

    def test_monotone_refinement(self):
        monitor = InvariantMonitor()
        assert monitor.check_monotone_refinement([1, 3, 3, 7])
        assert not monitor.check_monotone_refinement([1, 5, 4])


class TestResilienceReport:
    def test_healthy_without_violations(self):
        assert ResilienceReport().healthy
        assert not ResilienceReport(violations=["x"]).healthy

    def test_total_faults(self):
        report = ResilienceReport(faults_injected={"a": 2, "b": 3})
        assert report.total_faults == 5

    def test_summary_mentions_violations(self):
        report = ResilienceReport(violations=["volume-conservation: off"])
        assert "VIOLATION" in report.summary()

    def test_build_from_injector(self):
        injector = _certain(WORKER_CRASH)
        injector.simulation_action(0, "cfg")
        monitor = InvariantMonitor()
        monitor.check_volume_conservation(1.0, 1.0, 0.0)
        report = build_resilience_report(
            injector, monitor=monitor, degraded_configs=2
        )
        assert report.faults_injected == {WORKER_CRASH: 1}
        assert report.invariant_checks == 1
        assert report.degraded_configs == 2
        assert report.healthy
