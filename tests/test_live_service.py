"""Tests for the online traceback service (replay, controller, attributor)."""

import random

import pytest

from repro.core.pipeline import SpoofTracker
from repro.errors import LiveServiceError
from repro.live import (
    LiveAttributor,
    LiveTracebackService,
    ReplayScenario,
)
from repro.spoof.sources import make_placement


def make_service(small_testbed, **overrides) -> LiveTracebackService:
    defaults = dict(seed=5, max_configs=5, adaptive=False)
    defaults.update(overrides)
    return LiveTracebackService(
        scenario=ReplayScenario(**defaults), testbed=small_testbed
    )


@pytest.fixture(scope="module")
def inorder_report(small_testbed):
    service = make_service(small_testbed)
    report = service.run()
    yield report
    service.close()


@pytest.fixture(scope="module")
def batch_report(small_testbed):
    tracker = SpoofTracker(small_testbed)
    placement = make_placement(
        "pareto", sorted(small_testbed.topology.stubs), 40, random.Random(6)
    )
    report = tracker.run(max_configs=5, placement=placement)
    yield report
    tracker.engine.close()


class TestScenarioValidation:
    def test_rejects_unknown_distribution(self):
        with pytest.raises(LiveServiceError):
            ReplayScenario(distribution="nope")

    def test_rejects_unsorted_churn(self):
        with pytest.raises(LiveServiceError):
            ReplayScenario(churn_events=((8, 0.1), (4, 0.1)))

    def test_rejects_checkpoint_cadence_without_path(self):
        with pytest.raises(LiveServiceError):
            ReplayScenario(checkpoint_every=5)

    def test_rejects_bad_window(self):
        with pytest.raises(LiveServiceError):
            ReplayScenario(window_minutes=0.0)

    def test_rejects_bad_nnls_stride(self):
        with pytest.raises(LiveServiceError):
            ReplayScenario(nnls_stride=0)


class TestReplay:
    def test_first_deployed_config_is_anycast(self, small_testbed):
        # The universe rule (§IV-d) needs the anycast baseline first,
        # even under adaptive reordering.
        service = make_service(small_testbed, adaptive=True, max_configs=4)
        service.run()
        assert service.deployed[0] == 0
        service.close()

    def test_replay_is_deterministic(self, small_testbed, inorder_report):
        service = make_service(small_testbed)
        again = service.run()
        service.close()
        assert again.windows == inorder_report.windows
        assert again.clusters == inorder_report.clusters
        first = {
            frozenset(c.members): c.estimated_volume
            for c in inorder_report.localization.ranked
        }
        second = {
            frozenset(c.members): c.estimated_volume
            for c in again.localization.ranked
        }
        assert first == second

    def test_rolling_attribution_tightens_monotonically(self, inorder_report):
        sizes = [w.mean_cluster_size for w in inorder_report.windows]
        assert all(b <= a + 1e-12 for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] < sizes[0]

    def test_windows_follow_dwell_model(self, inorder_report):
        # 82.5-minute dwell at 20-minute windows = 4 windows per config.
        assert len(inorder_report.windows) == 5 * 4
        assert inorder_report.run_stats.stop_reason == "schedule exhausted"

    def test_final_attribution_matches_batch_tracker(
        self, inorder_report, batch_report
    ):
        assert set(map(frozenset, inorder_report.clusters)) == set(
            map(frozenset, batch_report.clusters)
        )
        live = {
            frozenset(c.members): c.estimated_volume
            for c in inorder_report.localization.ranked
        }
        batch = {
            frozenset(c.members): c.estimated_volume
            for c in batch_report.localization.ranked
        }
        assert live.keys() == batch.keys()
        for members, volume in batch.items():
            assert live[members] == pytest.approx(volume, abs=1e-9)

    def test_volume_conservation_in_report(self, inorder_report):
        ingest = inorder_report.ingest
        assert ingest.offered_volume == pytest.approx(
            ingest.accepted_volume + ingest.dropped_volume
        )
        # Noiseless mode offers volume_per_window per window.
        assert ingest.offered_volume == pytest.approx(
            len(inorder_report.windows)
        )

    def test_report_projects_onto_tracker_report(self, inorder_report):
        tracker_report = inorder_report.to_tracker_report()
        assert tracker_report.live_stats is inorder_report.run_stats
        summary = tracker_report.summary()
        assert "live runtime" in summary
        assert "stopped: schedule exhausted" in summary

    def test_on_window_callback_streams_stats(self, small_testbed):
        seen = []
        service = make_service(small_testbed, max_configs=2, min_configs=1)
        service.run(on_window=seen.append)
        service.close()
        assert [w.window_index for w in seen] == list(range(8))


class TestBackpressure:
    def test_overload_drops_are_accounted_not_fatal(self, small_testbed):
        service = make_service(
            small_testbed,
            max_configs=3,
            min_configs=1,
            batches_per_window=6,
            queue_capacity=2,
            drop_policy="oldest",
        )
        report = service.run()
        service.close()
        stats = report.run_stats
        assert stats.dropped_batches > 0
        assert stats.dropped_volume > 0
        assert stats.max_queue_depth == 2
        assert report.ingest.offered_volume == pytest.approx(
            report.ingest.accepted_volume + report.ingest.dropped_volume
        )
        # Dropped windows shrink evidence but never bias: attribution
        # still exists and clusters still refine.
        assert report.localization is not None
        assert report.run_stats.windows == len(report.windows)


class TestController:
    def test_entropy_short_circuit(self, small_testbed):
        service = make_service(
            small_testbed,
            max_configs=6,
            min_configs=2,
            stop_entropy=99.0,
            adaptive=True,
        )
        report = service.run()
        service.close()
        assert report.run_stats.configs_consumed == 2
        assert "entropy" in report.run_stats.stop_reason

    def test_adaptive_run_still_exhausts_schedule(self, small_testbed):
        service = make_service(small_testbed, adaptive=True, max_configs=4)
        report = service.run()
        service.close()
        assert report.run_stats.configs_consumed == 4
        assert sorted(service.deployed) == [0, 1, 2, 3]

    def test_dwell_accounting(self, inorder_report):
        # 5 configurations at the paper-derived 82.5-minute dwell.
        assert inorder_report.run_stats.dwell_minutes == pytest.approx(5 * 82.5)


class TestChurn:
    def test_churn_triggers_remeasurement(self, small_testbed):
        service = make_service(
            small_testbed,
            max_configs=4,
            min_configs=1,
            churn_events=((6, 0.5),),
        )
        report = service.run()
        service.close()
        assert len(service.churn_log) == 1
        entry = service.churn_log[0]
        assert entry["misplaced"] > 0.02
        assert entry["remeasured"]
        assert report.run_stats.remeasurements == 1
        # Remeasuring deployed configurations costs their dwell again.
        assert report.run_stats.dwell_minutes > 4 * 82.5

    def test_zero_drift_churn_is_ignored(self, small_testbed):
        service = make_service(
            small_testbed,
            max_configs=3,
            min_configs=1,
            churn_events=((4, 0.0),),
        )
        report = service.run()
        service.close()
        assert service.churn_log[0]["misplaced"] == 0.0
        assert not service.churn_log[0]["remeasured"]
        assert report.run_stats.remeasurements == 0


class TestLiveAttributor:
    def test_observe_before_config_raises(self):
        attributor = LiveAttributor({1, 2, 3})
        with pytest.raises(LiveServiceError):
            attributor.observe({"l1": 1.0}, 1.0)

    def test_empty_universe_rejected(self):
        with pytest.raises(LiveServiceError):
            LiveAttributor([])

    def test_entropy_zero_before_observations(self):
        attributor = LiveAttributor({1, 2})
        assert attributor.attribution() is None
        assert attributor.attribution_entropy() == 0.0

    def test_solve_stride_batches_window_solves(self):
        from repro.bgp.announcement import AnnouncementConfig

        attributor = LiveAttributor({1, 2, 3}, solve_stride=3)
        config = AnnouncementConfig(announced=frozenset({"l1", "l2"}))
        attributor.apply_config(
            config, {"l1": frozenset({1, 2}), "l2": frozenset({3})}
        )
        attributor.observe({"l1": 2.0, "l2": 1.0}, 3.0)
        assert attributor.attribution() is not None  # structure was dirty
        assert attributor.solves == 1
        attributor.observe({"l1": 2.0}, 2.0)
        attributor.attribution()
        attributor.observe({"l2": 4.0}, 4.0)
        attributor.attribution()
        assert attributor.solves == 1  # 2 pending windows < stride: cached
        attributor.observe({"l1": 1.0}, 1.0)
        assert attributor.attribution() is not None
        assert attributor.solves == 2  # stride reached: one stacked solve

    def test_invalid_solve_stride_rejected(self):
        with pytest.raises(LiveServiceError):
            LiveAttributor({1, 2}, solve_stride=0)

    def test_force_matches_unstrided_attribution(self):
        from repro.bgp.announcement import AnnouncementConfig

        strided = LiveAttributor({1, 2, 3}, solve_stride=10)
        exact = LiveAttributor({1, 2, 3}, solve_stride=1)
        config = AnnouncementConfig(announced=frozenset({"l1", "l2"}))
        catchments = {"l1": frozenset({1, 2}), "l2": frozenset({3})}
        windows = [
            ({"l1": 2.0, "l2": 1.0}, 3.0),
            ({"l1": 1.0}, 1.0),
            ({"l2": 5.0}, 5.0),
        ]
        for attributor in (strided, exact):
            attributor.apply_config(config, catchments)
        for volumes, offered in windows:
            strided.observe(volumes, offered)
            exact.observe(volumes, offered)
            exact.attribution()
        forced = strided.attribution(force=True)
        reference = exact.attribution()
        assert [c.estimated_volume for c in forced.ranked] == pytest.approx(
            [c.estimated_volume for c in reference.ranked]
        )
        # The stride saved work without changing the answer.
        assert strided.solves < exact.solves

    def test_service_nnls_stride_preserves_final_report(
        self, small_testbed, inorder_report
    ):
        service = make_service(small_testbed, nnls_stride=4)
        report = service.run()
        service.close()
        base = inorder_report.localization
        strided = report.localization
        assert [sorted(c.members) for c in strided.ranked] == [
            sorted(c.members) for c in base.ranked
        ]
        assert [
            c.estimated_volume for c in strided.ranked
        ] == pytest.approx([c.estimated_volume for c in base.ranked])

    def test_serialization_round_trip(self, small_testbed):
        service = make_service(small_testbed, max_configs=2, min_configs=1)
        service.run()
        payload = service.attributor.as_serializable()
        restored = LiveAttributor.from_serializable(payload)
        assert restored.universe == service.attributor.universe
        assert restored.clusters() == service.attributor.clusters()
        original = service.attributor.attribution()
        rebuilt = restored.attribution()
        assert [c.estimated_volume for c in rebuilt.ranked] == pytest.approx(
            [c.estimated_volume for c in original.ranked]
        )
        service.close()
