"""Tests for hijack-scenario coverage (§VI)."""

import pytest

from repro.bgp.announcement import anycast_all
from repro.core.hijack import (
    HijackScenario,
    hijack_coverage_report,
    hijack_impact,
    hijack_scenarios,
)

CATCHMENTS = {
    "l1": frozenset({1, 2, 3}),
    "l2": frozenset({4, 5}),
    "l3": frozenset({6}),
}


class TestScenarios:
    def test_two_to_the_n_scenarios(self):
        config = anycast_all(["l1", "l2", "l3"])
        scenarios = list(hijack_scenarios(config))
        assert len(scenarios) == 8

    def test_partition_covers_all_links(self):
        config = anycast_all(["l1", "l2"])
        for scenario in hijack_scenarios(config):
            assert scenario.legitimate_links | scenario.hijacker_links == (
                config.announced
            )
            assert not scenario.legitimate_links & scenario.hijacker_links

    def test_degenerate_detection(self):
        config = anycast_all(["l1", "l2"])
        scenarios = list(hijack_scenarios(config))
        degenerate = [s for s in scenarios if s.is_degenerate]
        assert len(degenerate) == 2  # all-legit and all-hijacker


class TestImpact:
    def test_capture_counts_hijacker_catchments(self):
        scenario = HijackScenario(
            legitimate_links=frozenset({"l1"}),
            hijacker_links=frozenset({"l2", "l3"}),
        )
        impact = hijack_impact(CATCHMENTS, scenario)
        assert impact.ases_captured == 3
        assert impact.ases_total == 6
        assert impact.capture_fraction == pytest.approx(0.5)

    def test_empty_hijacker_captures_nothing(self):
        scenario = HijackScenario(
            legitimate_links=frozenset(CATCHMENTS), hijacker_links=frozenset()
        )
        assert hijack_impact(CATCHMENTS, scenario).capture_fraction == 0.0

    def test_zero_total(self):
        scenario = HijackScenario(
            legitimate_links=frozenset({"l1"}), hijacker_links=frozenset({"l2"})
        )
        empty = {"l1": frozenset(), "l2": frozenset()}
        assert hijack_impact(empty, scenario).capture_fraction == 0.0


class TestCoverageReport:
    def test_report_on_real_outcome(self, mini_simulator):
        outcome = mini_simulator.simulate(anycast_all(["l1", "l2"]))
        report = hijack_coverage_report(outcome)
        assert len(report) == 2  # l1-hijacks-l2 and l2-hijacks-l1
        assert report == sorted(
            report, key=lambda impact: -impact.capture_fraction
        )
        fractions = [impact.capture_fraction for impact in report]
        assert all(0.0 < fraction < 1.0 for fraction in fractions)
        assert fractions[0] + fractions[1] == pytest.approx(1.0)

    def test_include_degenerate(self, mini_simulator):
        outcome = mini_simulator.simulate(anycast_all(["l1", "l2"]))
        report = hijack_coverage_report(outcome, include_degenerate=True)
        assert len(report) == 4
        assert report[0].capture_fraction == pytest.approx(1.0)
