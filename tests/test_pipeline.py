"""Tests for the end-to-end SpoofTracker pipeline."""

import random
from dataclasses import replace

import pytest

from repro.bgp.announcement import anycast_all
from repro.core.configgen import ScheduleParams
from repro.core.pipeline import SpoofTracker, build_testbed
from repro.errors import ReproError
from repro.spoof.sources import single_source_placement, uniform_placement
from repro.topology.generator import TopologyParams


class TestBuildTestbed:
    def test_wires_everything(self, small_testbed):
        assert small_testbed.origin.asn in small_testbed.graph
        assert len(small_testbed.origin) == 5
        assert small_testbed.campaign.origin is small_testbed.origin

    def test_seed_overrides_topology_seed(self):
        testbed = build_testbed(
            seed=9,
            topology_params=TopologyParams(
                num_tier1=4, num_transit=20, num_stub=60, seed=0
            ),
            num_links=3,
            num_vantages=5,
            num_probes=10,
        )
        assert testbed.topology.params.seed == 9

    def test_seed_override_preserves_every_params_field(self):
        # Regression: the override used to rebuild TopologyParams from a
        # hand-enumerated field list, silently resetting any field not on
        # the list.  Non-default values must all survive.
        params = TopologyParams(
            num_tier1=4,
            num_transit=20,
            num_stub=60,
            transit_provider_choices=(1, 3),
            stub_provider_choices=(2, 2),
            transit_peering_probability=0.31,
            stub_multihome_fraction=0.77,
            seed=0,
        )
        testbed = build_testbed(
            seed=9,
            topology_params=params,
            num_links=3,
            num_vantages=5,
            num_probes=10,
        )
        assert testbed.topology.params == replace(params, seed=9)

    def test_spec_rebuilds_identical_simulator(self):
        testbed = build_testbed(
            seed=7,
            topology_params=TopologyParams(
                num_tier1=4, num_transit=20, num_stub=60, seed=7
            ),
            num_links=3,
            num_vantages=5,
            num_probes=10,
        )
        assert testbed.spec is not None
        rebuilt = testbed.spec.build_simulator()
        config = anycast_all(testbed.origin.link_ids)
        assert rebuilt.simulate(config).routes == testbed.simulator.simulate(
            config
        ).routes

    def test_deterministic(self):
        kwargs = dict(
            seed=4,
            topology_params=TopologyParams(
                num_tier1=4, num_transit=20, num_stub=60, seed=4
            ),
            num_links=3,
            num_vantages=5,
            num_probes=10,
        )
        a = build_testbed(**kwargs)
        b = build_testbed(**kwargs)
        assert [l.provider for l in a.origin.links] == [
            l.provider for l in b.origin.links
        ]
        assert a.collectors.vantages == b.collectors.vantages


class TestTrackerGroundTruth:
    @pytest.fixture(scope="class")
    def report(self, request):
        testbed = build_testbed(
            seed=6,
            topology_params=TopologyParams(
                num_tier1=4, num_transit=30, num_stub=120, seed=6
            ),
            num_links=4,
            num_vantages=8,
            num_probes=20,
        )
        tracker = SpoofTracker.from_testbed(testbed)
        placement = single_source_placement(
            sorted(testbed.topology.stubs), random.Random(3)
        )
        report = tracker.run(max_configs=40, placement=placement)
        request.cls.placement = placement
        return report

    def test_universe_is_anycast_coverage(self, report):
        assert len(report.universe) > 100

    def test_steps_track_every_config(self, report):
        assert len(report.steps) == 40
        assert report.steps[0].phase == "locations"

    def test_mean_size_decreases_overall(self, report):
        means = [step.mean_cluster_size for step in report.steps]
        assert means[-1] < means[0]
        # Refinement can only shrink clusters: monotone non-increasing.
        assert all(b <= a + 1e-9 for a, b in zip(means, means[1:]))

    def test_clusters_partition_universe(self, report):
        seen = set()
        for cluster in report.clusters:
            assert not cluster & seen
            seen |= cluster
        assert seen == set(report.universe)

    def test_localization_finds_single_source(self, report):
        result = report.localization
        assert result is not None
        top = result.ranked[0]
        assert self.placement.spoofing_ases <= top.members

    def test_summary_text(self, report):
        text = report.summary()
        assert "configurations deployed : 40" in text
        assert "mean cluster size" in text
        assert "most-suspect clusters" in text


class TestTrackerModes:
    def test_empty_schedule_rejected(self, small_testbed):
        tracker = SpoofTracker(small_testbed)
        with pytest.raises(ReproError):
            tracker.run(max_configs=0)

    def test_schedule_params_respected(self, small_testbed):
        tracker = SpoofTracker(
            small_testbed, ScheduleParams(include_poisoning=False)
        )
        assert all(c.phase != "poisoning" for c in tracker.schedule)

    def test_measured_mode_runs(self, small_testbed):
        tracker = SpoofTracker(small_testbed)
        report = tracker.run(max_configs=6, measured=True)
        assert report.measured
        assert len(report.universe) > 20
        assert len(report.steps) == 6

    def test_measured_mode_with_placement(self, small_testbed):
        tracker = SpoofTracker(small_testbed)
        placement = uniform_placement(
            sorted(small_testbed.topology.stubs), 3, random.Random(8)
        )
        report = tracker.run(max_configs=6, placement=placement, measured=True)
        assert report.localization is not None

    def test_headline_properties(self, small_testbed):
        tracker = SpoofTracker(small_testbed)
        report = tracker.run(max_configs=10)
        assert report.mean_cluster_size >= 1.0
        assert 0.0 <= report.singleton_cluster_fraction <= 1.0

    def test_split_threshold_shrinks_tail(self, small_testbed):
        tracker = SpoofTracker(small_testbed)
        plain = tracker.run(max_configs=26)
        split = tracker.run(max_configs=26, split_threshold=5, split_budget=15)
        assert split.split_report is not None
        assert len(split.split_report.configs_deployed) <= 15
        assert max(len(c) for c in split.clusters) <= max(
            len(c) for c in plain.clusters
        )
        assert len(split.catchment_history) == 26 + len(
            split.split_report.configs_deployed
        )
        assert any(step.phase == "split" for step in split.steps)

    def test_split_steps_show_per_config_progression(self, small_testbed):
        # Regression: split-phase StepStats used to be appended after the
        # splitter had fully refined the state, so every split step showed
        # the identical final counts.  They must now track the per-config
        # snapshots: cluster counts non-decreasing, and actually moving.
        tracker = SpoofTracker(small_testbed)
        report = tracker.run(max_configs=26, split_threshold=5, split_budget=15)
        split_steps = [s for s in report.steps if s.phase == "split"]
        assert len(split_steps) >= 2
        counts = [s.num_clusters for s in split_steps]
        means = [s.mean_cluster_size for s in split_steps]
        assert counts == sorted(counts)  # refinement only adds clusters
        assert all(b <= a + 1e-9 for a, b in zip(means, means[1:]))
        assert len(set(counts)) > 1  # not the final state repeated
        # The last snapshot is the final refined state.
        assert split_steps[-1].num_clusters == len(report.clusters)

    def test_report_engine_stats_and_repeat_is_free(self, small_testbed):
        tracker = SpoofTracker(small_testbed)
        first = tracker.run(max_configs=8)
        assert first.engine_stats is not None
        assert first.engine_stats.configs_simulated >= 8
        assert "simulation engine" in first.summary()
        second = tracker.run(max_configs=8)
        # Same schedule through the same engine: zero new fixpoints.
        assert second.engine_stats.configs_simulated == 0
        assert second.engine_stats.cache_hits == 8
        assert second.clusters == first.clusters

    def test_split_with_placement_localizes(self, small_testbed):
        tracker = SpoofTracker(small_testbed)
        placement = single_source_placement(
            sorted(small_testbed.topology.stubs), random.Random(2)
        )
        report = tracker.run(
            max_configs=26, placement=placement, split_threshold=5
        )
        assert report.localization is not None
        quality = report.localization.evaluate_against(placement)
        assert quality.recall == 1.0

    def test_split_skipped_in_measured_mode(self, small_testbed):
        tracker = SpoofTracker(small_testbed)
        report = tracker.run(max_configs=5, measured=True, split_threshold=5)
        assert report.split_report is None


class TestGeographyTestbed:
    def test_geography_changes_catchments(self):
        params = TopologyParams(num_tier1=4, num_transit=30, num_stub=120, seed=8)
        kwargs = dict(
            seed=8, topology_params=params, num_links=4,
            num_vantages=8, num_probes=20,
        )
        flat = build_testbed(**kwargs)
        geo = build_testbed(**kwargs, with_geography=True)
        assert geo.policy.geography is not None
        from repro.bgp.announcement import anycast_all

        config = anycast_all(flat.origin.link_ids)
        flat_outcome = flat.simulator.simulate(config)
        geo_outcome = geo.simulator.simulate(config)
        assert flat_outcome.covered_ases == geo_outcome.covered_ases
        moved = sum(
            1
            for asn in flat_outcome.covered_ases
            if flat_outcome.catchment_of(asn) != geo_outcome.catchment_of(asn)
        )
        assert moved > 0
