"""Tests for the Atlas-like probe fleet."""

import pytest

from repro.bgp.announcement import anycast_all
from repro.errors import MeasurementError
from repro.measurement.atlas import AtlasProbeFleet, select_probe_ases
from repro.measurement.ip2as import AddressPlan
from repro.measurement.ixp import IXPRegistry
from repro.measurement.traceroute import TracerouteEngine, TracerouteParams


class TestSelectProbes:
    def test_count_and_exclusion(self, small_testbed):
        probes = select_probe_ases(
            small_testbed.graph, 20, seed=2, exclude=[small_testbed.origin.asn]
        )
        assert len(probes) == 20
        assert small_testbed.origin.asn not in probes

    def test_deterministic(self, small_testbed):
        assert select_probe_ases(small_testbed.graph, 15, seed=4) == (
            select_probe_ases(small_testbed.graph, 15, seed=4)
        )

    def test_too_many_raises(self, small_testbed):
        with pytest.raises(MeasurementError):
            select_probe_ases(small_testbed.graph, 10**6)


class TestFleet:
    def make_fleet(self, testbed, rounds=2, probes=10):
        probe_ases = select_probe_ases(
            testbed.graph, probes, seed=1, exclude=[testbed.origin.asn]
        )
        engine = TracerouteEngine(
            testbed.graph,
            testbed.plan,
            IXPRegistry(),
            TracerouteParams(seed=3),
        )
        return AtlasProbeFleet(probe_ases, engine, rounds_per_config=rounds)

    def test_measures_all_rounds(self, small_testbed):
        fleet = self.make_fleet(small_testbed, rounds=3)
        outcome = small_testbed.simulator.simulate(
            anycast_all(small_testbed.origin.link_ids)
        )
        rounds = fleet.measure(outcome)
        assert [r.round_index for r in rounds] == [0, 1, 2]
        for round_ in rounds:
            assert len(round_.traceroutes) <= len(fleet.probe_ases)
            assert len(round_.traceroutes) > 0

    def test_all_traceroutes_flattens(self, small_testbed):
        fleet = self.make_fleet(small_testbed, rounds=2)
        outcome = small_testbed.simulator.simulate(
            anycast_all(small_testbed.origin.link_ids)
        )
        traces = fleet.all_traceroutes(outcome)
        rounds = fleet.measure(outcome)
        assert len(traces) == sum(len(r.traceroutes) for r in rounds)

    def test_rounds_vary_artifacts(self, small_testbed):
        fleet = self.make_fleet(small_testbed, rounds=2)
        outcome = small_testbed.simulator.simulate(
            anycast_all(small_testbed.origin.link_ids)
        )
        rounds = fleet.measure(outcome)
        # Same probes, different rounds: hop artifacts should differ for
        # at least one probe (unresponsive pattern is per-round).
        first = {t.probe_as: t.hops for t in rounds[0].traceroutes}
        second = {t.probe_as: t.hops for t in rounds[1].traceroutes}
        shared = set(first) & set(second)
        assert any(first[p] != second[p] for p in shared)

    def test_rejects_empty_fleet(self, small_testbed):
        engine = TracerouteEngine(
            small_testbed.graph, small_testbed.plan, IXPRegistry()
        )
        with pytest.raises(MeasurementError):
            AtlasProbeFleet([], engine)

    def test_rejects_zero_rounds(self, small_testbed):
        engine = TracerouteEngine(
            small_testbed.graph, small_testbed.plan, IXPRegistry()
        )
        with pytest.raises(MeasurementError):
            AtlasProbeFleet([1], engine, rounds_per_config=0)
