"""Tests for the observability layer (repro.obs).

The two properties the layer sells are determinism (identical counter
totals and span trees for identical seeded scenarios, at any worker
count) and reconciliation (the metrics dump agrees with the engine's
own accounting) — both are enforced here against real pipeline runs.
"""

import json

import pytest

from repro.core.engine import EngineStats, SimulationEngine
from repro.core.pipeline import SpoofTracker
from repro.obs import (
    MetricsRegistry,
    Observability,
    PhaseTimer,
    ProfileCapture,
    Stopwatch,
    Tracer,
    build_manifest,
    build_tree,
    load_spans,
    parse_prometheus,
    parse_prometheus_metrics,
    phase_durations,
    record_engine_stats,
    record_fault_log,
    span_tree_signature,
)


class TestCounters:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("events_total").inc(-1)

    def test_labelled_series_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("drops_total", labels={"reason": "loss"}).inc(2)
        registry.counter("drops_total", labels={"reason": "filter"}).inc(1)
        totals = registry.counter_totals()
        assert totals['drops_total{reason="loss"}'] == 2
        assert totals['drops_total{reason="filter"}'] == 1

    def test_handles_are_cached(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_counter_totals_excludes_measured_data(self):
        registry = MetricsRegistry()
        registry.counter("logical_total").inc()
        registry.gauge("wall_seconds").set(1.23)
        registry.histogram("latency_seconds").observe(0.5)
        assert set(registry.counter_totals()) == {"logical_total"}


class TestGaugesAndHistograms:
    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.add(2)
        assert gauge.value == 5

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1]  # ≤0.1, ≤1.0, +Inf
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(6.05)


class TestMergeAndRender:
    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total").inc(2)
        b.counter("n_total").inc(3)
        a.histogram("t", buckets=(1.0,)).observe(0.5)
        b.histogram("t", buckets=(1.0,)).observe(2.0)
        b.gauge("depth").set(7)
        a.merge(b.snapshot())
        assert a.counter_totals()["n_total"] == 5
        merged = a.histogram("t", buckets=(1.0,))
        assert merged.counts == [1, 1]
        assert merged.count == 2
        assert a.gauge("depth").value == 7

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("t", buckets=(1.0,)).observe(0.5)
        b.histogram("t", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_render_parse_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("a_total", help="things").inc(3)
        registry.gauge("b_seconds").set(1.5)
        registry.histogram("c", buckets=(1.0,)).observe(0.5)
        text = registry.render_prometheus()
        assert "# HELP a_total things" in text
        assert "# TYPE c histogram" in text
        parsed = parse_prometheus(text)
        assert parsed["a_total"] == 3
        assert parsed["b_seconds"] == 1.5
        assert parsed['c_bucket{le="1"}'] == 1
        assert parsed['c_bucket{le="+Inf"}'] == 1
        assert parsed["c_count"] == 1

    def test_write_files(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        prom = registry.write_prometheus(str(tmp_path / "m.prom"))
        blob = registry.write_json(str(tmp_path / "m.json"))
        assert parse_prometheus(open(prom).read())["a_total"] == 1
        assert json.load(open(blob))["counters"][0]["name"] == "a_total"

    def test_roundtrip_escapes_label_values(self):
        registry = MetricsRegistry()
        awkward = 'quote:" backslash:\\ newline:\nend'
        registry.counter("odd_total", labels={"detail": awkward}).inc(2)
        text = registry.render_prometheus()
        # The exposition text itself must stay one sample per line.
        sample_lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert len(sample_lines) == 1
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        parsed = parse_prometheus(text)
        (series,) = parsed
        assert parsed[series] == 2
        assert series == list(registry.counter_totals())[0]

    def test_roundtrip_preserves_nan_and_inf(self):
        import math

        registry = MetricsRegistry()
        registry.gauge("hot").set(float("inf"))
        registry.gauge("cold").set(float("-inf"))
        registry.gauge("undefined").set(float("nan"))
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed["hot"] == float("inf")
        assert parsed["cold"] == float("-inf")
        assert math.isnan(parsed["undefined"])

    def test_merge_after_parse_matches_direct_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total", labels={"who": 'worker "0"'}).inc(2)
        b.counter("n_total", labels={"who": 'worker "0"'}).inc(3)
        b.counter("n_total", labels={"who": "worker\n1"}).inc(1)
        merged = MetricsRegistry()
        merged.merge(a.snapshot())
        merged.merge(b.snapshot())
        summed = {}
        for registry in (a, b):
            for series, value in parse_prometheus(
                registry.render_prometheus()
            ).items():
                summed[series] = summed.get(series, 0.0) + value
        assert summed == parse_prometheus(merged.render_prometheus())


class TestStructuredParse:
    """parse_prometheus_metrics: the typed, merge-ready inverse (ISSUE 10)."""

    def test_histogram_reassembled_and_decumulated(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        parsed = parse_prometheus_metrics(registry.render_prometheus())
        data = parsed.histograms[("lat", ())]
        assert data["buckets"] == [0.1, 1.0]  # +Inf stays implicit
        assert data["counts"] == [1, 2, 1]  # de-cumulated per-bucket tallies
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(6.05)
        assert parsed.kinds["lat"] == "histogram"

    def test_families_typed_by_headers(self):
        registry = MetricsRegistry()
        registry.counter("n_total", help="things").inc(2)
        registry.gauge("depth").set(7)
        parsed = parse_prometheus_metrics(registry.render_prometheus())
        assert parsed.counters == {("n_total", ()): 2.0}
        assert parsed.gauges == {("depth", ()): 7.0}
        assert parsed.helps["n_total"] == "things"

    def test_label_values_unescaped(self):
        registry = MetricsRegistry()
        awkward = 'quote:" backslash:\\ newline:\nend'
        registry.counter("odd_total", labels={"detail": awkward}).inc(2)
        parsed = parse_prometheus_metrics(registry.render_prometheus())
        ((name, labels),) = parsed.counters
        assert name == "odd_total"
        assert labels == (("detail", awkward),)

    def test_unparseable_sample_raises(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus_metrics("what even is this line")

    def test_snapshot_drops_nan_counters_keeps_nan_gauges(self):
        import math

        text = (
            "# TYPE broken_total counter\n"
            "broken_total NaN\n"
            "# TYPE fine_total counter\n"
            "fine_total 3\n"
            "undefined NaN\n"
        )
        snapshot = parse_prometheus_metrics(text).as_snapshot()
        names = [entry["name"] for entry in snapshot["counters"]]
        assert names == ["fine_total"]  # the damaged sample is dropped
        (gauge,) = snapshot["gauges"]
        assert gauge["name"] == "undefined" and math.isnan(gauge["value"])

    def test_merge_after_parse_reconstructs_histograms(self):
        """registry.merge(parse(...).as_snapshot()) == direct merge."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total", labels={"who": 'worker "0"'}).inc(2)
        b.counter("n_total", labels={"who": 'worker "0"'}).inc(3)
        a.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        b.histogram("lat", buckets=(0.1, 1.0)).observe(5.0)
        b.gauge("depth").set(7)
        direct = MetricsRegistry()
        direct.merge(a.snapshot())
        direct.merge(b.snapshot())
        reparsed = MetricsRegistry()
        for registry in (a, b):
            parsed = parse_prometheus_metrics(registry.render_prometheus())
            reparsed.merge(parsed.as_snapshot())
        assert reparsed.counter_totals() == direct.counter_totals()
        assert reparsed.snapshot() == direct.snapshot()
        merged = reparsed.histogram("lat", buckets=(0.1, 1.0))
        assert merged.counts == [0, 1, 1] and merged.count == 2


class TestEngineRecording:
    def test_record_engine_stats_reconciles(self):
        stats = EngineStats(
            configs_requested=10,
            configs_simulated=7,
            cache_hits=3,
            warm_starts=5,
            passes_saved=9,
            wall_time=1.25,
            queue_wait=0.5,
            worker_failures=1,
            retries=2,
        )
        registry = MetricsRegistry()
        record_engine_stats(registry, stats)
        totals = registry.counter_totals()
        assert totals["repro_engine_configs_requested_total"] == 10
        assert totals["repro_engine_configs_simulated_total"] == 7
        assert totals["repro_engine_cache_hits_total"] == 3
        assert totals["repro_engine_warm_starts_total"] == 5
        assert totals["repro_engine_passes_saved_total"] == 9
        assert totals["repro_engine_worker_failures_total"] == 1
        assert totals["repro_engine_retries_total"] == 2
        assert registry.gauge("repro_engine_wall_seconds").value == 1.25
        assert registry.gauge("repro_engine_queue_wait_seconds").value == 0.5

    def test_record_fault_log(self):
        registry = MetricsRegistry()
        record_fault_log(registry, {"crash": 2, "hang": 1})
        totals = registry.counter_totals()
        assert totals['repro_faults_injected_total{kind="crash"}'] == 2
        assert totals['repro_faults_injected_total{kind="hang"}'] == 1


class TestTracer:
    def _sample(self):
        tracer = Tracer("track")
        with tracer.span("simulate", configs=4):
            with tracer.span("batch"):
                pass
            with tracer.span("batch"):
                pass
        with tracer.span("measure"):
            pass
        tracer.finish()
        return tracer

    def test_span_ids_are_structural(self):
        a, b = self._sample(), self._sample()
        assert [s.span_id for s in a.finished] == [s.span_id for s in b.finished]
        assert span_tree_signature(a.records()) == span_tree_signature(b.records())

    def test_repeated_sites_get_distinct_ids(self):
        tracer = self._sample()
        batches = [s for s in tracer.finished if s.name == "batch"]
        assert len(batches) == 2
        assert batches[0].span_id != batches[1].span_id
        assert batches[0].parent_id == batches[1].parent_id

    def test_signature_ignores_durations(self):
        a, b = self._sample(), self._sample()
        for span in b.finished:
            span.duration_seconds += 17.0
        assert span_tree_signature(a.records()) == span_tree_signature(b.records())

    def test_signature_sees_attrs(self):
        a, b = self._sample(), self._sample()
        b.finished[0].attrs["extra"] = 1
        assert span_tree_signature(a.records()) != span_tree_signature(b.records())

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = self._sample()
        path = tracer.write_jsonl(str(tmp_path / "t.jsonl"))
        spans = load_spans(path)
        assert len(spans) == len(tracer.finished)
        tree = build_tree(spans)
        root = tree[""][0]
        assert root["name"] == "track"
        children = {span["name"] for span in tree[root["span_id"]]}
        assert children == {"simulate", "measure"}
        durations = phase_durations(spans, parent_id=root["span_id"])
        assert set(durations) == {"simulate", "measure"}

    def test_finish_is_idempotent(self, tmp_path):
        tracer = self._sample()
        tracer.finish()
        tracer.finish()
        assert sum(1 for s in tracer.finished if s.name == "track") == 1


class TestProfiling:
    def test_stopwatch_monotonic(self):
        stopwatch = Stopwatch()
        first = stopwatch.elapsed()
        second = stopwatch.elapsed()
        assert 0 <= first <= second
        stopwatch.restart()
        assert stopwatch.elapsed() < second + 1.0

    def test_phase_timer_totals_and_histogram(self):
        registry = MetricsRegistry()
        timer = PhaseTimer(registry)
        with timer.phase("simulate"):
            pass
        with timer.phase("simulate"):
            pass
        with timer.phase("measure"):
            pass
        assert timer.seconds("simulate") >= 0
        table = timer.table()
        assert "simulate" in table and "measure" in table
        histogram = registry.histogram(
            "repro_phase_seconds", labels={"phase": "simulate"}
        )
        assert histogram.count == 2

    def test_profile_capture_collects_hotspots(self):
        profiler = ProfileCapture(enabled=True)
        with profiler.capture():
            sum(range(1000))
        assert profiler.hotspots(5)
        assert "calls" in profiler.hotspot_table(5)

    def test_disabled_capture_is_noop(self):
        profiler = ProfileCapture(enabled=False)
        with profiler.capture():
            pass
        assert profiler.hotspots(5) == []


class TestManifest:
    def test_build_manifest_roundtrips(self):
        manifest = build_manifest(
            "track", seed=7, scale="small", workers=2,
            config={"max_configs": 12}, fault_plan=None,
        )
        assert manifest.command == "track"
        assert manifest.seed == 7
        payload = json.loads(manifest.to_json())
        assert payload["config"]["max_configs"] == 12
        assert payload["python_version"]

    def test_manifest_is_frozen(self):
        manifest = build_manifest("track", seed=0, scale="small", workers=1)
        with pytest.raises(AttributeError):
            manifest.seed = 1


class TestObservabilityBundle:
    def test_unarmed_bundle_is_noop(self):
        obs = Observability()
        with obs.span("simulate") as span:
            assert span is None
        with obs.phase("simulate") as span:
            assert span is None
        with obs.capture():
            pass

    def test_armed_bundle_traces_and_times(self):
        obs = Observability.for_run("track")
        with obs.phase("simulate", configs=3) as span:
            span.set("done", True)
        assert obs.tracer.finished[0].attrs == {"configs": 3, "done": True}
        assert obs.timer.seconds("simulate") >= 0


class TestPipelineDeterminism:
    """The layer's headline guarantees, against real pipeline runs."""

    def _run(self, testbed, workers, run_name="track"):
        obs = Observability.for_run(run_name)
        tracker = SpoofTracker(testbed, workers=workers, obs=obs)
        try:
            report = tracker.run(max_configs=10)
        finally:
            tracker.engine.close()
        obs.tracer.finish()
        return report, obs

    def test_counter_totals_identical_serial_vs_parallel(self, small_testbed):
        _, serial = self._run(small_testbed, workers=1)
        _, parallel = self._run(small_testbed, workers=2)
        assert serial.registry.counter_totals() == parallel.registry.counter_totals()
        assert serial.registry.counter_totals()[
            "repro_engine_configs_simulated_total"
        ] > 0

    def test_span_tree_identical_across_runs_and_workers(self, small_testbed):
        _, first = self._run(small_testbed, workers=1)
        _, second = self._run(small_testbed, workers=1)
        _, fanned = self._run(small_testbed, workers=2)
        signature = span_tree_signature(first.tracer.records())
        assert signature == span_tree_signature(second.tracer.records())
        assert signature == span_tree_signature(fanned.tracer.records())

    def test_all_five_phases_traced(self, small_testbed):
        _, obs = self._run(small_testbed, workers=1)
        tree = build_tree(obs.tracer.records())
        root = tree[""][0]
        phases = [span["name"] for span in tree[root["span_id"]]]
        assert phases == sorted(phases, key=phases.index)  # sanity
        assert set(phases) == {
            "schedule", "simulate", "measure", "cluster", "attribute",
        }

    def test_metrics_reconcile_with_engine_stats(self, small_testbed):
        report, obs = self._run(small_testbed, workers=1)
        totals = obs.registry.counter_totals()
        stats = report.engine_stats
        assert totals["repro_engine_configs_simulated_total"] == (
            stats.configs_simulated
        )
        assert totals["repro_engine_cache_hits_total"] == stats.cache_hits
        assert totals["repro_engine_warm_starts_total"] == stats.warm_starts

    def test_merge_matches_single_registry(self, small_testbed):
        """Two half-run registries merge into the one-run totals."""
        tracker = SpoofTracker(small_testbed)
        configs = tracker.schedule[:8]
        whole = MetricsRegistry()
        with SimulationEngine(
            small_testbed.simulator, spec=small_testbed.spec
        ) as engine:
            engine.simulate_many(configs)
            record_engine_stats(whole, engine.stats)
        parts = MetricsRegistry()
        with SimulationEngine(
            small_testbed.simulator, spec=small_testbed.spec
        ) as engine:
            before = engine.stats.copy()
            engine.simulate_many(configs[:4])
            first = MetricsRegistry()
            record_engine_stats(first, engine.stats.since(before))
            middle = engine.stats.copy()
            engine.simulate_many(configs[4:])
            second = MetricsRegistry()
            record_engine_stats(second, engine.stats.since(middle))
        parts.merge(first.snapshot())
        parts.merge(second.snapshot())
        assert parts.counter_totals() == whole.counter_totals()
