"""Tests for figure text/markdown rendering."""

from repro.analysis.figures import FigureResult, Series
from repro.analysis.report import figure_markdown, render_figure, render_series


def sample_result(num_points=25):
    points = tuple((float(i), float(i) * 2) for i in range(1, num_points + 1))
    return FigureResult(
        figure_id="figureX",
        title="A Sample Figure",
        xlabel="Things",
        ylabel="Stuff",
        series=[Series("first", points), Series("second", points[:3])],
        notes=["shape holds"],
    )


class TestRenderSeries:
    def test_samples_long_series(self):
        series = sample_result().series[0]
        text = render_series(series, max_points=5)
        lines = [line for line in text.splitlines() if "x=" in line]
        assert len(lines) == 5
        # Endpoints kept.
        assert "x=      1.00" in text
        assert "x=     25.00" in text

    def test_short_series_fully_rendered(self):
        series = sample_result().series[1]
        text = render_series(series, max_points=10)
        assert text.count("x=") == 3


class TestRenderFigure:
    def test_contains_everything(self):
        text = render_figure(sample_result())
        assert "figureX" in text
        assert "A Sample Figure" in text
        assert "first" in text and "second" in text
        assert "shape holds" in text

    def test_axis_labels_present(self):
        text = render_figure(sample_result())
        assert "Things" in text and "Stuff" in text


class TestMarkdown:
    def test_markdown_structure(self):
        text = figure_markdown(sample_result())
        assert text.startswith("### figureX")
        assert "- **first**:" in text
        assert "> shape holds" in text

    def test_markdown_samples_points(self):
        text = figure_markdown(sample_result(), max_points=4)
        first_line = [l for l in text.splitlines() if l.startswith("- **first**")][0]
        assert first_line.count("(") == 4
