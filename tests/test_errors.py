"""Tests for the repro.errors exception hierarchy."""

from __future__ import annotations

import inspect

import pytest

from repro import errors
from repro.errors import (
    CheckpointCorruptionError,
    FaultInjectionError,
    InjectedFault,
    LiveServiceError,
    ReproError,
)


def _error_classes():
    return [
        obj
        for _, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, ReproError)
    ]


class TestHierarchy:
    def test_module_exports_a_hierarchy(self):
        assert len(_error_classes()) >= 10

    @pytest.mark.parametrize(
        "exc_class", _error_classes(), ids=lambda cls: cls.__name__
    )
    def test_every_error_is_raisable(self, exc_class):
        with pytest.raises(exc_class):
            raise exc_class("boom")

    @pytest.mark.parametrize(
        "exc_class", _error_classes(), ids=lambda cls: cls.__name__
    )
    def test_every_error_is_catchable_as_repro_error(self, exc_class):
        with pytest.raises(ReproError):
            raise exc_class("boom")

    @pytest.mark.parametrize(
        "exc_class", _error_classes(), ids=lambda cls: cls.__name__
    )
    def test_message_survives(self, exc_class):
        assert str(exc_class("the message")) == "the message"

    def test_repro_error_does_not_mask_programming_errors(self):
        # The reason the hierarchy exists: catching ReproError must not
        # swallow TypeError/ValueError raised by buggy calling code.
        assert not issubclass(TypeError, ReproError)
        assert not issubclass(ValueError, ReproError)
        assert not issubclass(ReproError, (TypeError, ValueError))

    def test_docstrings_everywhere(self):
        for exc_class in _error_classes():
            assert exc_class.__doc__, f"{exc_class.__name__} lacks a docstring"


class TestSpecificRelationships:
    def test_checkpoint_corruption_is_a_live_service_error(self):
        # Existing callers catching LiveServiceError on checkpoint load
        # keep working now that corruption is surfaced separately.
        assert issubclass(CheckpointCorruptionError, LiveServiceError)

    def test_injected_fault_is_a_fault_injection_error(self):
        assert issubclass(InjectedFault, FaultInjectionError)

    def test_convergence_is_a_simulation_error(self):
        assert issubclass(errors.ConvergenceError, errors.SimulationError)

    def test_mapping_is_a_measurement_error(self):
        assert issubclass(errors.MappingError, errors.MeasurementError)

    def test_relationship_is_a_topology_error(self):
        assert issubclass(errors.RelationshipError, errors.TopologyError)
