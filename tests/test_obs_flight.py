"""Flight recorder tests: bounded capture, dumps, triggers (ISSUE 10).

The recorder is the black box of the observability layer: a lock-safe
ring riding the bus/logbook/tracer/injector as cheap listeners, dumping
an atomic checksummed bundle on crash-like triggers.  Everything it
captures must be the deterministic projection — identical sequences must
dump byte-identical bundles.
"""

import json
import os
import signal

import pytest

from repro.analysis.dashboard import Dashboard
from repro.faults.injection import FaultInjector
from repro.obs import (
    EventBus,
    FlightRecorder,
    Logbook,
    MetricsRegistry,
    Observability,
    SloWatchdog,
    Tracer,
    install_flight_signal,
    load_flight_dump,
)


class TestRing:
    def test_capacity_bounds_ring_but_not_entries_seen(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.record("tick", index=index)
        snapshot = recorder.snapshot()
        assert len(snapshot) == 4
        assert recorder.entries_seen == 10
        # The *last* four survive, oldest first, with global ordinals.
        assert [entry["index"] for entry in snapshot] == [6, 7, 8, 9]
        assert [entry["n"] for entry in snapshot] == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_snapshot_is_a_copy(self):
        recorder = FlightRecorder()
        recorder.record("tick")
        recorder.snapshot()[0]["kind"] = "mutated"
        assert recorder.snapshot()[0]["kind"] == "tick"


class TestListeners:
    def test_bus_capture_strips_measured_keeps_seq(self):
        bus = EventBus()
        recorder = FlightRecorder().attach(bus=bus)
        bus.publish("window", window_index=3, duration_seconds=1.25)
        (entry,) = recorder.snapshot()
        assert entry["kind"] == "bus"
        assert entry["event"]["window_index"] == 3
        assert entry["event"]["seq"] == 0
        assert "duration_seconds" not in entry["event"]

    def test_tag_filter_requires_every_pair(self):
        bus = EventBus()
        recorder = FlightRecorder(
            tag_filter={"tenant": "tenant-00", "attack": "a/24"}
        ).attach(bus=bus)
        bus.publish("window", tenant="tenant-00", attack="a/24", window_index=0)
        bus.publish("window", tenant="tenant-01", attack="a/24", window_index=1)
        # Tenant matches but the attack key is absent entirely: the
        # tenant-level engine event must stay out of per-attack rings.
        bus.publish("engine_batch", tenant="tenant-00")
        events = [entry["event"] for entry in recorder.snapshot()]
        assert [event["window_index"] for event in events] == [0]

    def test_log_capture_strips_measured_fields_ignores_threshold(self):
        logbook = Logbook(level="error")
        recorder = FlightRecorder().attach(logbook=logbook)
        logbook.debug(
            "below threshold", event="tick", step=4, wait_seconds=0.5
        )
        (entry,) = recorder.snapshot()
        assert entry["kind"] == "log"
        assert entry["level"] == "debug"
        assert entry["msg"] == "below threshold"
        assert entry["event"] == "tick"
        assert entry["fields"] == {"step": 4}
        assert logbook.suppressed == 1  # still dropped from rendering

    def test_span_capture_drops_duration(self):
        tracer = Tracer("run")
        recorder = FlightRecorder().attach(tracer=tracer)
        with tracer.span("simulate", configs=2):
            pass
        (entry,) = recorder.snapshot()
        assert entry["kind"] == "span"
        assert entry["name"] == "simulate"
        assert entry["attrs"] == {"configs": 2}
        assert entry["parent_id"] == tracer.root.span_id
        assert "duration_seconds" not in entry

    def test_fault_capture_via_injector(self):
        injector = FaultInjector()
        recorder = FlightRecorder().attach(injector=injector)
        injector.log.record("collector_flap", 3)
        (entry,) = recorder.snapshot()
        assert entry == {
            "n": 0, "kind": "fault", "fault": "collector_flap", "count": 3
        }

    def test_detach_removes_every_hook(self):
        bus, logbook, tracer = EventBus(), Logbook(), Tracer("run")
        injector = FaultInjector()
        recorder = FlightRecorder().attach(
            bus=bus, logbook=logbook, tracer=tracer, injector=injector
        )
        recorder.detach()
        bus.publish("window")
        logbook.info("hello")
        with tracer.span("simulate"):
            pass
        injector.log.record("volume_noise")
        assert recorder.snapshot() == []
        assert not logbook.listeners and not tracer.listeners
        assert not injector.log.listeners

    def test_reattach_first_detaches(self):
        bus = EventBus()
        recorder = FlightRecorder().attach(bus=bus)
        recorder.attach(bus=bus)
        bus.publish("window")
        assert len(recorder.snapshot()) == 1  # not double-captured


class TestMetricDeltas:
    def test_deltas_recorded_since_last_call(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(registry=registry)
        counter = registry.counter("repro_ticks_total")
        counter.inc(3)
        assert recorder.record_metric_deltas() == {"repro_ticks_total": 3.0}
        assert recorder.record_metric_deltas() == {}  # no movement, no entry
        counter.inc()
        assert recorder.record_metric_deltas() == {"repro_ticks_total": 1.0}
        kinds = [entry["kind"] for entry in recorder.snapshot()]
        assert kinds == ["metrics", "metrics"]

    def test_without_registry_is_noop(self):
        recorder = FlightRecorder()
        assert recorder.record_metric_deltas() == {}
        assert recorder.snapshot() == []


class TestDump:
    def test_unarmed_dump_returns_empty(self):
        recorder = FlightRecorder()
        recorder.record("tick")
        assert recorder.dump("crash") == ""
        assert recorder.dumps == []

    def test_bundle_roundtrip_and_checksum(self, tmp_path):
        recorder = FlightRecorder(
            name="tenant-00/10.0.0.0-24",
            directory=str(tmp_path),
            context={"tenant": "tenant-00", "seed": 7},
        )
        recorder.record("tick", index=1)
        path = recorder.dump("kill", context={"minute": 120.0})
        assert os.path.basename(path) == (
            "flight-tenant-00-10.0.0.0-24-kill-000.json"
        )
        payload = load_flight_dump(path)
        assert payload["reason"] == "kill"
        assert payload["ordinal"] == 0
        assert payload["context"] == {
            "tenant": "tenant-00", "seed": 7, "minute": 120.0
        }
        assert payload["entries"] == [{"n": 0, "kind": "tick", "index": 1}]
        assert payload["entries_seen"] == 1

    def test_tampered_bundle_rejected(self, tmp_path):
        recorder = FlightRecorder(name="run", directory=str(tmp_path))
        path = recorder.dump("crash")
        document = json.loads(open(path).read())
        document["payload"]["reason"] = "doctored"
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(ValueError, match="checksum"):
            load_flight_dump(path)

    def test_repeated_dumps_rotate_ordinals(self, tmp_path):
        recorder = FlightRecorder(name="run", directory=str(tmp_path))
        first = recorder.dump("kill")
        second = recorder.dump("kill")
        other = recorder.dump("slo_breach")
        assert first.endswith("kill-000.json")
        assert second.endswith("kill-001.json")
        assert other.endswith("slo_breach-000.json")
        assert recorder.dumps == [first, second, other]

    def test_new_recorder_resumes_past_on_disk_ordinals(self, tmp_path):
        """A soak-restart epoch must not overwrite its predecessor's bundles."""
        FlightRecorder(name="run", directory=str(tmp_path)).dump("kill")
        rebuilt = FlightRecorder(name="run", directory=str(tmp_path))
        path = rebuilt.dump("kill")
        assert path.endswith("kill-001.json")
        assert len(list(tmp_path.glob("flight-*.json"))) == 2

    def test_identical_sequences_dump_identical_bytes(self, tmp_path):
        """The determinism contract: same capture -> same bundle bytes."""

        def run(directory):
            bus, logbook, tracer = EventBus(), Logbook(), Tracer("run")
            registry = MetricsRegistry()
            recorder = FlightRecorder(
                name="run",
                directory=str(directory),
                context={"seed": 11},
                registry=registry,
            ).attach(bus=bus, logbook=logbook, tracer=tracer)
            registry.counter("repro_ticks_total").inc(2)
            bus.publish("window", window_index=0, duration_seconds=0.37)
            logbook.info("window done", event="window", elapsed_seconds=0.2)
            with tracer.span("simulate"):
                pass
            return recorder.dump("crash")

        first = run(tmp_path / "a")
        second = run(tmp_path / "b")
        assert open(first, "rb").read() == open(second, "rb").read()

    def test_dump_announces_on_bus_without_path(self, tmp_path):
        bus = EventBus()
        recorder = FlightRecorder(
            name="run",
            directory=str(tmp_path),
            context={"tenant": "tenant-00", "shard": "tenant-00/a"},
        ).attach(bus=bus)
        recorder.dump("kill")
        announce = bus.history()[-1]
        assert announce["kind"] == "flight"
        assert announce["flight"] == "run"
        assert announce["reason"] == "kill"
        assert announce["ordinal"] == 0
        assert announce["tenant"] == "tenant-00"
        assert announce["shard"] == "tenant-00/a"
        assert not any("path" in key for key in announce)

    def test_unarmed_dump_does_not_announce(self):
        bus = EventBus()
        recorder = FlightRecorder().attach(bus=bus)
        recorder.dump("crash")
        assert all(event["kind"] != "flight" for event in bus.history())


class TestTriggers:
    def test_slo_breach_dumps_bundle(self, tmp_path):
        watchdog = SloWatchdog()
        watchdog.flight = FlightRecorder(name="run", directory=str(tmp_path))
        assert watchdog.check("window_lag_seconds", 99.0) is False
        (path,) = watchdog.flight.dumps
        payload = load_flight_dump(path)
        assert payload["reason"] == "slo_breach"
        assert payload["context"]["slo"] == "window_lag_seconds"
        assert "99" in payload["context"]["detail"]

    def test_arm_flight_rides_the_whole_bundle(self, tmp_path):
        obs = Observability.for_run("track")
        recorder = obs.arm_flight("track", directory=str(tmp_path))
        assert obs.flight is recorder
        obs.bus.publish("window", window_index=0)
        obs.logbook.info("hello")
        with obs.tracer.span("simulate"):
            pass
        obs.registry.counter("repro_ticks_total").inc()
        path = recorder.dump("crash")
        payload = load_flight_dump(path)
        kinds = [entry["kind"] for entry in payload["entries"]]
        assert kinds == ["bus", "log", "span", "metrics"]
        assert payload["counters"]["repro_ticks_total"] == 1.0
        recorder.detach()

    @pytest.mark.skipif(
        not hasattr(signal, "SIGUSR1"), reason="needs POSIX signals"
    )
    def test_sigusr1_dumps_black_box(self, tmp_path):
        recorder = FlightRecorder(name="live", directory=str(tmp_path))
        recorder.record("tick")
        previous = install_flight_signal(recorder)
        try:
            os.kill(os.getpid(), signal.SIGUSR1)
        finally:
            signal.signal(signal.SIGUSR1, previous or signal.SIG_DFL)
        (path,) = recorder.dumps
        assert load_flight_dump(path)["reason"] == "signal"


class TestDashboardIntegration:
    def test_flight_events_surface_in_header(self):
        dash = Dashboard()
        dash.ingest(
            {"seq": 0, "kind": "flight", "flight": "tenant-00/a",
             "reason": "kill", "ordinal": 0}
        )
        dash.ingest(
            {"seq": 1, "kind": "flight", "flight": "tenant-00/a",
             "reason": "kill", "ordinal": 1}
        )
        rendered = dash.render()
        assert "flight dumps: kill×2" in rendered
        assert "last: tenant-00/a #1 (kill)" in rendered

    def test_no_flight_line_without_dumps(self):
        assert "flight dumps" not in Dashboard().render()
