"""Tests for the synthetic topology generator."""

import pytest

from repro.errors import TopologyError
from repro.topology.generator import (
    GeneratedTopology,
    TopologyParams,
    generate_topology,
)
from repro.topology.relationships import Relationship


class TestParams:
    def test_total_ases(self):
        params = TopologyParams(num_tier1=3, num_transit=10, num_stub=20)
        assert params.total_ases == 33

    def test_rejects_no_tier1(self):
        with pytest.raises(TopologyError):
            TopologyParams(num_tier1=0)

    def test_rejects_negative_counts(self):
        with pytest.raises(TopologyError):
            TopologyParams(num_transit=-1)

    def test_rejects_bad_provider_choices(self):
        with pytest.raises(TopologyError):
            TopologyParams(transit_provider_choices=(3, 1))
        with pytest.raises(TopologyError):
            TopologyParams(stub_provider_choices=(0, 1))

    def test_rejects_bad_probability(self):
        with pytest.raises(TopologyError):
            TopologyParams(transit_peering_probability=1.5)
        with pytest.raises(TopologyError):
            TopologyParams(stub_multihome_fraction=-0.1)


class TestGeneration:
    def test_counts_match_params(self):
        params = TopologyParams(num_tier1=4, num_transit=20, num_stub=50, seed=1)
        topo = generate_topology(params)
        assert len(topo.tier1) == 4
        assert len(topo.transit) == 20
        assert len(topo.stubs) == 50
        assert len(topo.graph) == params.total_ases

    def test_graph_validates(self):
        generate_topology(TopologyParams(seed=2)).graph.validate()

    def test_tier1_forms_clique(self):
        topo = generate_topology(TopologyParams(num_tier1=5, seed=3))
        for i, a in enumerate(topo.tier1):
            for b in topo.tier1[i + 1:]:
                assert topo.graph.relationship(a, b) is Relationship.PEER

    def test_tier1_has_no_providers(self):
        topo = generate_topology(TopologyParams(seed=4))
        for asn in topo.tier1:
            assert topo.graph.providers(asn) == []

    def test_stubs_have_providers_no_customers(self):
        topo = generate_topology(TopologyParams(seed=5))
        for asn in topo.stubs:
            assert topo.graph.providers(asn)
            assert topo.graph.customers(asn) == []

    def test_deterministic_for_seed(self):
        params = TopologyParams(num_transit=30, num_stub=60, seed=9)
        first = generate_topology(params)
        second = generate_topology(params)
        assert list(first.graph.links()) == list(second.graph.links())

    def test_different_seeds_differ(self):
        a = generate_topology(TopologyParams(seed=1))
        b = generate_topology(TopologyParams(seed=2))
        assert list(a.graph.links()) != list(b.graph.links())

    def test_all_ases_property(self):
        topo = generate_topology(TopologyParams(seed=6))
        assert set(topo.all_ases) == set(topo.graph.ases)

    def test_heavy_tail_degree(self):
        """Preferential attachment should produce a skewed transit degree
        distribution: the max transit degree well above the median."""
        topo = generate_topology(
            TopologyParams(num_transit=80, num_stub=400, seed=7)
        )
        degrees = sorted(topo.graph.degree(asn) for asn in topo.transit)
        median = degrees[len(degrees) // 2]
        assert degrees[-1] >= 2 * median

    def test_no_peering_when_probability_zero(self):
        topo = generate_topology(
            TopologyParams(
                num_tier1=1, transit_peering_probability=0.0, seed=8
            )
        )
        for asn in topo.transit:
            assert topo.graph.peers(asn) == []

    def test_zero_stubs(self):
        topo = generate_topology(TopologyParams(num_stub=0, seed=1))
        assert topo.stubs == []
        topo.graph.validate()

    def test_multihoming_fraction_effective(self):
        topo = generate_topology(
            TopologyParams(
                num_stub=300, stub_multihome_fraction=1.0, seed=10
            )
        )
        multihomed = sum(
            1 for asn in topo.stubs if len(topo.graph.providers(asn)) >= 2
        )
        assert multihomed == len(topo.stubs)
