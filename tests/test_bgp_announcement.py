"""Tests for announcement configurations ⟨A; P; Q⟩."""

import pytest

from repro.bgp.announcement import (
    DEFAULT_PREPEND_COUNT,
    AnnouncementConfig,
    anycast_all,
)
from repro.errors import AnnouncementError


class TestValidation:
    def test_minimal_config(self):
        config = AnnouncementConfig(announced=frozenset(["l1"]))
        assert config.announced == frozenset(["l1"])
        assert not config.uses_prepending
        assert not config.uses_poisoning

    def test_rejects_empty_announcement(self):
        with pytest.raises(AnnouncementError):
            AnnouncementConfig(announced=frozenset())

    def test_rejects_prepend_outside_announced(self):
        with pytest.raises(AnnouncementError, match="unannounced"):
            AnnouncementConfig(
                announced=frozenset(["l1"]), prepended=frozenset(["l2"])
            )

    def test_rejects_poison_outside_announced(self):
        with pytest.raises(AnnouncementError, match="unannounced"):
            AnnouncementConfig(
                announced=frozenset(["l1"]), poisoned={"l2": frozenset([9])}
            )

    def test_rejects_bad_prepend_count(self):
        with pytest.raises(AnnouncementError):
            AnnouncementConfig(announced=frozenset(["l1"]), prepend_count=0)

    def test_accepts_plain_sets_and_freezes(self):
        config = AnnouncementConfig(
            announced={"l1", "l2"}, prepended={"l1"}, poisoned={"l2": {5, 6}}
        )
        assert isinstance(config.announced, frozenset)
        assert isinstance(config.poisoned["l2"], frozenset)

    def test_empty_poison_sets_dropped(self):
        config = AnnouncementConfig(
            announced=frozenset(["l1"]), poisoned={"l1": frozenset()}
        )
        assert not config.uses_poisoning


class TestASPathConstruction:
    def test_plain_path_is_origin_only(self):
        config = AnnouncementConfig(announced=frozenset(["l1"]))
        assert config.as_path_for_link(47065, "l1") == (47065,)

    def test_prepending_repeats_origin(self):
        config = AnnouncementConfig(
            announced=frozenset(["l1"]),
            prepended=frozenset(["l1"]),
            prepend_count=4,
        )
        assert config.as_path_for_link(47065, "l1") == (47065,) * 5

    def test_prepending_applies_only_to_prepended_links(self):
        config = AnnouncementConfig(
            announced=frozenset(["l1", "l2"]), prepended=frozenset(["l1"])
        )
        assert len(config.as_path_for_link(47065, "l1")) == 1 + DEFAULT_PREPEND_COUNT
        assert config.as_path_for_link(47065, "l2") == (47065,)

    def test_poison_stuffing_surrounds_target(self):
        """PEERING requires each poisoned AS surrounded by the origin ASN."""
        config = AnnouncementConfig(
            announced=frozenset(["l1"]), poisoned={"l1": frozenset([666])}
        )
        assert config.as_path_for_link(47065, "l1") == (47065, 666, 47065)

    def test_multiple_poisons_sorted(self):
        config = AnnouncementConfig(
            announced=frozenset(["l1"]), poisoned={"l1": frozenset([9, 5])}
        )
        assert config.as_path_for_link(47065, "l1") == (47065, 5, 47065, 9, 47065)

    def test_prepend_and_poison_combine(self):
        config = AnnouncementConfig(
            announced=frozenset(["l1"]),
            prepended=frozenset(["l1"]),
            prepend_count=2,
            poisoned={"l1": frozenset([7])},
        )
        assert config.as_path_for_link(1, "l1") == (1, 1, 1, 7, 1)

    def test_unannounced_link_raises(self):
        config = AnnouncementConfig(announced=frozenset(["l1"]))
        with pytest.raises(AnnouncementError):
            config.as_path_for_link(1, "l2")


class TestIdentityAndDescription:
    def test_key_ignores_label(self):
        a = AnnouncementConfig(announced=frozenset(["l1"]), label="x")
        b = AnnouncementConfig(announced=frozenset(["l1"]), label="y")
        assert a.key() == b.key()

    def test_key_distinguishes_prepending(self):
        a = AnnouncementConfig(announced=frozenset(["l1", "l2"]))
        b = AnnouncementConfig(
            announced=frozenset(["l1", "l2"]), prepended=frozenset(["l1"])
        )
        assert a.key() != b.key()

    def test_key_distinguishes_poisons(self):
        a = AnnouncementConfig(announced=frozenset(["l1"]), poisoned={"l1": {5}})
        b = AnnouncementConfig(announced=frozenset(["l1"]), poisoned={"l1": {6}})
        assert a.key() != b.key()

    def test_describe_mentions_everything(self):
        config = AnnouncementConfig(
            announced=frozenset(["l1", "l2"]),
            prepended=frozenset(["l2"]),
            poisoned={"l1": frozenset([5])},
            label="demo",
        )
        text = config.describe()
        assert "demo" in text and "l1" in text and "l2" in text and "5" in text

    def test_poisons_for_link_default_empty(self):
        config = AnnouncementConfig(announced=frozenset(["l1"]))
        assert config.poisons_for_link("l1") == frozenset()


class TestAnycastAll:
    def test_announces_everything(self):
        config = anycast_all(["l2", "l1"])
        assert config.announced == frozenset(["l1", "l2"])
        assert config.phase == "locations"
        assert not config.uses_prepending and not config.uses_poisoning
