"""Tests for the figure runners on a small evaluation run.

The shared run uses the small testbed's schedule truncated to keep the
suite quick; shape assertions mirror DESIGN.md §4.
"""

import pytest

from repro.analysis.figures import (
    EvaluationRun,
    FigureResult,
    Series,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
)


@pytest.fixture(scope="module")
def run(request):
    small_testbed = request.getfixturevalue("small_testbed")
    return EvaluationRun(testbed=small_testbed)


class TestEvaluationRun:
    def test_caches_full_schedule(self, run):
        assert len(run.catchment_history) == len(run.schedule)
        assert len(run.compliance) == len(run.schedule)

    def test_universe_from_first_config(self, run):
        first = run.catchment_history[0]
        union = frozenset().union(*first.values())
        assert union == run.universe

    def test_phase_boundaries_ordered(self, run):
        boundaries = run.phase_boundaries()
        assert (
            boundaries["locations"]
            < boundaries["prepending"]
            < boundaries["poisoning"]
        )

    def test_location_subset_history_filters(self, run):
        links = run.testbed.origin.link_ids
        subset = links[:-1]
        history = run.location_subset_history(subset)
        assert history
        assert len(history) < len(run.catchment_history)
        for catchments in history:
            assert set(catchments) <= set(subset)

    def test_max_configs_truncates(self, small_testbed):
        short = EvaluationRun(testbed=small_testbed, max_configs=5)
        assert len(short.schedule) == 5

    def test_zero_configs_allowed_to_be_empty_error(self, small_testbed):
        with pytest.raises(Exception):
            EvaluationRun(testbed=small_testbed, max_configs=0)


class TestSeries:
    def test_from_values(self):
        series = Series.from_values("s", [5.0, 4.0])
        assert series.points == ((1.0, 5.0), (2.0, 4.0))

    def test_series_named(self):
        result = FigureResult(
            figure_id="f",
            title="t",
            xlabel="x",
            ylabel="y",
            series=[Series("a", ((1.0, 1.0),))],
        )
        assert result.series_named("a").points == ((1.0, 1.0),)
        with pytest.raises(KeyError):
            result.series_named("b")


class TestFigure3(object):
    def test_three_phase_series(self, run):
        result = figure3(run)
        names = [series.name for series in result.series]
        assert names == [
            "Locations",
            "Locations and prepending",
            "Locations, prepending, and poisoning",
        ]

    def test_each_phase_shrinks_the_tail(self, run):
        result = figure3(run)
        # Max cluster size must not grow across phases.
        maxima = [max(x for x, _ in series.points) for series in result.series]
        assert maxima[0] >= maxima[1] >= maxima[2]

    def test_ccdfs_valid(self, run):
        for series in figure3(run).series:
            ys = [y for _, y in series.points]
            assert ys[0] == 1.0
            assert ys == sorted(ys, reverse=True)


class TestFigure4:
    def test_mean_curve_nonincreasing(self, run):
        result = figure4(run)
        means = [y for _, y in result.series_named("Mean Cluster Size").points]
        assert all(b <= a + 1e-9 for a, b in zip(means, means[1:]))

    def test_one_point_per_config(self, run):
        result = figure4(run)
        for series in result.series:
            assert len(series.points) == len(run.schedule)

    def test_phase_boundary_notes(self, run):
        result = figure4(run)
        assert any("locations" in note for note in result.notes)


class TestFigures5and6:
    def test_fewer_locations_larger_final_clusters(self, run):
        result = figure5(run, max_subsets=3)
        all_curve = result.series_named("All locations").points
        four_curve = result.series_named("Four locations").points
        assert all_curve[-1][1] <= four_curve[-1][1]

    def test_fewer_locations_fewer_configs(self, run):
        result = figure5(run, max_subsets=3)
        assert len(result.series_named("All locations").points) > len(
            result.series_named("Four locations").points
        )

    def test_min_max_envelope_ordering(self, run):
        result = figure5(run, max_subsets=4)
        minimum = result.series_named("Four locations (min)").points
        maximum = result.series_named("Four locations (max)").points
        for (_, low), (_, high) in zip(minimum, maximum):
            assert low <= high + 1e-9

    def test_figure6_ccdf_tails(self, run):
        result = figure6(run, max_subsets=3)
        for series in result.series:
            ys = [y for _, y in series.points]
            assert ys == sorted(ys, reverse=True)


class TestFigure7:
    def test_groups_present(self, run):
        result = figure7(run)
        assert len(result.series) >= 2

    def test_cdf_monotone(self, run):
        for series in figure7(run).series:
            ys = [y for _, y in series.points]
            assert ys == sorted(ys)

    def test_note_compares_near_vs_far(self, run):
        result = figure7(run)
        assert any("paper: 1.85 vs 2.64" in note for note in result.notes)


class TestFigure8:
    def test_greedy_beats_random_median_early(self, run):
        result = figure8(run, num_random_sequences=20, max_steps=12, seed=1)
        median = result.series_named("Random (median of means)").points
        greedy = result.series_named("Iterative Algorithm").points
        horizon = min(10, len(median), len(greedy)) - 1
        assert greedy[horizon][1] <= median[horizon][1]

    def test_percentile_band_ordering(self, run):
        result = figure8(run, num_random_sequences=20, max_steps=10, seed=2)
        p25 = result.series_named("25th Percentile").points
        p75 = result.series_named("75th Percentile").points
        for (_, low), (_, high) in zip(p25, p75):
            assert low <= high + 1e-9


class TestFigure9:
    def test_both_criteria_below_relationship(self, run):
        result = figure9(run)
        both = dict(result.series_named("Best Relationship & Shortest").points)
        # CDF of 'both' sits left of (or equal to) 'relationship': median
        # compliance for both ≤ relationship.
        relationship = [
            x for x, _ in result.series_named("Best Relationship").points
        ]
        both_xs = [x for x in both]
        assert min(both_xs) <= min(relationship) or max(both_xs) <= max(
            relationship
        )

    def test_high_compliance(self, run):
        result = figure9(run)
        relationship_points = result.series_named("Best Relationship").points
        # Most configurations should see >80% compliance.
        assert max(x for x, _ in relationship_points) > 0.8


class TestFigure10:
    def test_three_distributions(self, run):
        result = figure10(run, num_placements=20, num_sources=10, seed=3)
        assert len(result.series) == 3

    def test_curves_cumulative(self, run):
        result = figure10(run, num_placements=20, num_sources=10, seed=3)
        for series in result.series:
            ys = [y for _, y in series.points]
            assert ys == sorted(ys)
            assert ys[-1] <= 1.0 + 1e-9

    def test_most_traffic_in_small_clusters(self, run):
        result = figure10(run, num_placements=20, num_sources=10, seed=3)
        for series in result.series:
            points = dict(series.points)
            assert points[8.0] > 0.5
