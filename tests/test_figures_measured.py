"""Tests for measured-mode EvaluationRun (figures from the §IV pipeline)."""

import pytest

from repro.analysis.figures import EvaluationRun, figure3, figure4


@pytest.fixture(scope="module")
def measured_run(request):
    small_testbed = request.getfixturevalue("small_testbed")
    return EvaluationRun(
        testbed=small_testbed,
        max_configs=12,
        compute_compliance=False,
        measured=True,
    )


class TestMeasuredRun:
    def test_universe_from_measured_anycast(self, measured_run):
        # Measured coverage is a strict subset of the topology.
        assert 20 < len(measured_run.universe) < len(measured_run.testbed.graph)

    def test_flag_recorded(self, measured_run):
        assert measured_run.measured

    def test_one_catchment_map_per_config(self, measured_run):
        assert len(measured_run.catchment_history) == 12

    def test_catchments_restricted_to_universe(self, measured_run):
        for catchments in measured_run.catchment_history:
            for members in catchments.values():
                assert members <= measured_run.universe

    def test_catchment_links_match_announcements(self, measured_run):
        for config, catchments in zip(
            measured_run.schedule, measured_run.catchment_history
        ):
            assert set(catchments) <= set(config.announced) | set(
                measured_run.testbed.origin.link_ids
            )

    def test_imputation_keeps_coverage_high(self, measured_run):
        """smax imputation should leave few sources unassigned per config."""
        for catchments in measured_run.catchment_history:
            assigned = frozenset().union(*catchments.values())
            assert len(assigned) >= 0.8 * len(measured_run.universe)

    def test_figures_run_on_measured_data(self, measured_run):
        fig3 = figure3(measured_run)
        fig4 = figure4(measured_run)
        assert fig3.series
        means = [y for _, y in fig4.series_named("Mean Cluster Size").points]
        assert means[-1] <= means[0]

    def test_measured_clusters_coarser_than_truth(self, request, measured_run):
        small_testbed = request.getfixturevalue("small_testbed")
        truth_run = EvaluationRun(
            testbed=small_testbed, max_configs=12, compute_compliance=False
        )
        # Ground truth observes every AS; measured only a subset.
        assert len(measured_run.universe) < len(truth_run.universe)
