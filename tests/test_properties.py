"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.stats import ccdf_points, cdf_points, percentile
from repro.bgp.announcement import AnnouncementConfig
from repro.bgp.policy import PolicyModel
from repro.bgp.simulator import RoutingSimulator
from repro.core.clustering import ClusterState
from repro.errors import MappingError
from repro.measurement.ip2as import PrefixTrie
from repro.types import Prefix, path_without_prepending
from repro.topology.generator import TopologyParams, generate_topology
from repro.topology.peering import attach_origin

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

asns = st.integers(min_value=1, max_value=10**6)
as_paths = st.lists(asns, min_size=0, max_size=12).map(tuple)


def prefix_strategy():
    def build(length, seedbits):
        mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
        return Prefix(seedbits & mask, length)

    return st.builds(
        build,
        st.integers(min_value=0, max_value=32),
        st.integers(min_value=0, max_value=2**32 - 1),
    )


# ----------------------------------------------------------------------
# AS-path helpers
# ----------------------------------------------------------------------


class TestPathCollapse:
    @given(as_paths)
    def test_idempotent(self, path):
        collapsed = path_without_prepending(path)
        assert path_without_prepending(collapsed) == collapsed

    @given(as_paths)
    def test_no_consecutive_duplicates(self, path):
        collapsed = path_without_prepending(path)
        assert all(a != b for a, b in zip(collapsed, collapsed[1:]))

    @given(as_paths.filter(lambda p: len(p) > 0))
    def test_preserves_endpoints_and_order(self, path):
        collapsed = path_without_prepending(path)
        assert collapsed[0] == path[0]
        assert collapsed[-1] == path[-1]
        # Collapsed is a subsequence of the original.
        iterator = iter(path)
        assert all(any(x == item for item in iterator) for x in collapsed)


# ----------------------------------------------------------------------
# Prefix trie vs linear scan
# ----------------------------------------------------------------------


class TestTrieMatchesLinearScan:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(prefix_strategy(), min_size=1, max_size=30),
        st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=30),
    )
    def test_lpm_equivalence(self, prefixes, addresses):
        trie = PrefixTrie()
        inserted = []
        for index, prefix in enumerate(prefixes):
            try:
                trie.insert(prefix, index)
                inserted.append((prefix, index))
            except MappingError:
                pass  # duplicate prefix with different value
        for address in addresses:
            expected, best = None, -1
            for prefix, value in inserted:
                if prefix.contains_address(address) and prefix.length > best:
                    expected, best = value, prefix.length
            assert trie.lookup(address) == expected


# ----------------------------------------------------------------------
# Cluster refinement invariants
# ----------------------------------------------------------------------

universes = st.sets(asns, min_size=1, max_size=40)


class TestClusterInvariants:
    @settings(max_examples=60, deadline=None)
    @given(universes, st.lists(st.sets(asns, max_size=25), max_size=8))
    def test_always_a_partition(self, universe, catchments):
        state = ClusterState(universe)
        for catchment in catchments:
            state.refine(catchment)
        seen = set()
        for cluster in state.clusters():
            assert cluster, "empty cluster"
            assert not cluster & seen, "overlapping clusters"
            seen |= cluster
        assert seen == set(universe)

    @settings(max_examples=60, deadline=None)
    @given(universes, st.sets(asns, max_size=25))
    def test_refine_idempotent(self, universe, catchment):
        state = ClusterState(universe)
        state.refine(catchment)
        before = state.clusters()
        assert state.refine(catchment) == 0
        assert state.clusters() == before

    @settings(max_examples=40, deadline=None)
    @given(
        universes,
        st.lists(st.sets(asns, max_size=25), min_size=2, max_size=5),
        st.randoms(use_true_random=False),
    )
    def test_final_partition_order_independent(self, universe, catchments, rnd):
        ordered = ClusterState(universe)
        for catchment in catchments:
            ordered.refine(catchment)
        shuffled_catchments = list(catchments)
        rnd.shuffle(shuffled_catchments)
        shuffled = ClusterState(universe)
        for catchment in shuffled_catchments:
            shuffled.refine(catchment)
        assert ordered.clusters() == shuffled.clusters()

    @settings(max_examples=60, deadline=None)
    @given(universes, st.lists(st.sets(asns, max_size=25), max_size=6))
    def test_mean_size_consistent(self, universe, catchments):
        state = ClusterState(universe)
        for catchment in catchments:
            state.refine(catchment)
        assert state.mean_size() * state.num_clusters() == len(universe)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------


class TestStatsProperties:
    @given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=50))
    def test_ccdf_bounds_and_monotonicity(self, values):
        points = ccdf_points(values)
        ys = [y for _, y in points]
        assert ys[0] == 1.0
        assert all(0.0 < y <= 1.0 for y in ys)
        assert ys == sorted(ys, reverse=True)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_cdf_ends_at_one(self, values):
        points = cdf_points(values)
        assert points[-1][1] == 1.0

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_percentile_within_range(self, values, pct):
        result = percentile(values, pct)
        assert min(values) <= result <= max(values)


# ----------------------------------------------------------------------
# Announcement AS-path construction
# ----------------------------------------------------------------------


class TestAnnouncementProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.sets(asns, max_size=3),
        st.booleans(),
    )
    def test_announced_path_structure(self, prepend_count, poisons, prepend):
        config = AnnouncementConfig(
            announced=frozenset(["l1"]),
            prepended=frozenset(["l1"]) if prepend else frozenset(),
            poisoned={"l1": frozenset(poisons)} if poisons else {},
            prepend_count=prepend_count,
        )
        origin = 47065
        path = config.as_path_for_link(origin, "l1")
        copies = 1 + (prepend_count if prepend else 0)
        assert path[0] == origin
        assert path[-1] == origin
        assert len(path) == copies + 2 * len(poisons - {origin})
        for poisoned in poisons - {origin}:
            index = path.index(poisoned)
            assert path[index - 1] == origin and path[index + 1] == origin


# ----------------------------------------------------------------------
# BGP simulator invariants on random topologies
# ----------------------------------------------------------------------


class TestSimulatorInvariants:
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=2, max_value=4),
        st.floats(min_value=0.0, max_value=0.2),
    )
    def test_outcome_invariants(self, seed, num_links, noise):
        topo = generate_topology(
            TopologyParams(num_tier1=3, num_transit=12, num_stub=30, seed=seed)
        )
        origin = attach_origin(topo, num_links=num_links, seed=seed)
        policy = PolicyModel(topo.graph, seed=seed, policy_noise=noise)
        simulator = RoutingSimulator(topo.graph, origin, policy)
        rng = random.Random(seed)
        links = origin.link_ids
        announced = frozenset(rng.sample(links, rng.randint(1, len(links))))
        config = AnnouncementConfig(
            announced=announced,
            prepended=frozenset(
                rng.sample(sorted(announced), rng.randint(0, 1))
            ),
        )
        outcome = simulator.simulate(config)
        assert outcome.converged
        # Catchments partition the covered ASes.
        union = set()
        for link, members in outcome.catchments.items():
            assert link in announced
            assert not members & union
            union |= members
        assert union == set(outcome.covered_ases)
        # Forwarding paths are loop-free and terminate at the origin.
        for asn in outcome.covered_ases:
            path = outcome.forwarding_path(asn)
            assert len(path) == len(set(path))
            assert path[-1] == origin.asn
        # Control-plane paths end at the origin and enter via the right
        # provider for the claimed link.
        for asn, route in outcome.routes.items():
            assert route.as_path[-1] == origin.asn
            first_origin = route.as_path.index(origin.asn)
            if first_origin > 0:
                provider = route.as_path[first_origin - 1]
                assert origin.link_toward_provider(provider).link_id == (
                    route.link_id
                )
