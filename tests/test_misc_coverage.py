"""Cross-cutting tests: lazy package exports, CLI extras, combined
announcement manipulations, figure3 with custom phases."""

import pytest

from repro.bgp.announcement import AnnouncementConfig
from repro.cli import main
from tests.conftest import A, B, C, M, ORIGIN, P1, T1, T2, build_mini_internet


class TestPackageRoot:
    def test_lazy_pipeline_exports(self):
        import repro

        assert repro.build_testbed is not None
        assert repro.SpoofTracker is not None
        assert repro.TrackerReport is not None

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2


class TestCombinedManipulations:
    """A configuration may prepend, poison, and tag communities at once."""

    def simulate(self, config):
        from repro.bgp.policy import PolicyModel
        from repro.bgp.simulator import RoutingSimulator

        mini = build_mini_internet()
        policy = PolicyModel(
            mini.graph,
            policy_noise=0.0,
            loop_prevention_disabled_fraction=0.0,
            tier1_leak_filtering=False,
        )
        return RoutingSimulator(mini.graph, mini.origin, policy).simulate(config)

    def test_everything_at_once(self):
        config = AnnouncementConfig(
            announced=frozenset(["l1", "l2"]),
            prepended=frozenset(["l2"]),
            poisoned={"l1": frozenset([M])},
            no_export={"l2": frozenset([T2])},
            prepend_count=2,
        )
        outcome = self.simulate(config)
        # Poisoned M rejects every l1 path.  Its only alternative would be
        # l2 via T1←T2, but the community blocks the P2→T2 export of l2,
        # and T1 (a peer) would never re-export a peer-learned route to T2
        # anyway — so the combination blacks M (and its customer C) out.
        assert outcome.route(M) is None
        assert outcome.route(C) is None
        # T2 loses its customer path (community) and falls back to the l1
        # route its peer T1 exports (customer-learned routes go to peers).
        assert outcome.catchment_of(T2) == "l1"
        # Prepending on l2 is visible in B's AS path length.
        assert outcome.route(B).as_path.count(ORIGIN) >= 3

    def test_poisoning_both_links_blacks_out_target(self):
        config = AnnouncementConfig(
            announced=frozenset(["l1", "l2"]),
            poisoned={"l1": frozenset([T1]), "l2": frozenset([T1])},
        )
        outcome = self.simulate(config)
        assert outcome.route(T1) is None
        # T1's single-homed cone goes dark with it.
        assert outcome.route(M) is None and outcome.route(C) is None
        # The rest of the Internet is unaffected.
        assert outcome.route(A) is not None and outcome.route(B) is not None


class TestFigure3CustomPhases:
    def test_custom_phase_uses_raw_name(self, small_testbed):
        from repro.analysis.figures import EvaluationRun, figure3
        from repro.core.configgen import ScheduleParams

        run = EvaluationRun(
            testbed=small_testbed,
            schedule_params=ScheduleParams(
                include_poisoning=True,
                include_communities=True,
                max_poison_targets=1,
            ),
            compute_compliance=False,
        )
        result = figure3(run)
        names = [series.name for series in result.series]
        assert "communities" in names  # falls back to the raw phase tag


class TestCliExtras:
    def test_figures_with_plot(self, capsys):
        code = main(
            ["--seed", "2", "figures", "figure9", "--max-configs", "8", "--plot"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Cumulative Fraction of Configurations" in out
        assert "|" in out  # the ASCII raster

    def test_dataset_subcommand(self, tmp_path, capsys):
        output = tmp_path / "ds.json"
        code = main(
            ["--seed", "2", "dataset", "--max-configs", "4", "--output", str(output)]
        )
        assert code == 0
        from repro.data import Dataset

        dataset = Dataset.load(output)
        assert len(dataset) == 4
        assert dataset.meta["seed"] == 2

    def test_track_with_split(self, capsys):
        code = main(
            [
                "--seed",
                "2",
                "track",
                "--max-configs",
                "20",
                "--split-threshold",
                "6",
            ]
        )
        assert code == 0
        assert "configurations deployed" in capsys.readouterr().out


class TestReportSampling:
    def test_two_point_series(self):
        from repro.analysis.figures import Series
        from repro.analysis.report import render_series

        series = Series("tiny", ((1.0, 2.0), (3.0, 4.0)))
        text = render_series(series, max_points=10)
        assert text.count("x=") == 2
