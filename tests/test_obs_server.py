"""Tests for the servable observability surface (bus, logbook, SLOs,
HTTP exporter, bench gate) added on top of repro.obs."""

import json
import math
import threading
import urllib.error
import urllib.request

import pytest

from repro.faults.injection import FaultLog
from repro.live import LiveTracebackService, ReplayScenario
from repro.obs import (
    DEFAULT_SLOS,
    EventBus,
    Logbook,
    MetricsRegistry,
    Observability,
    ObsServer,
    SloRule,
    SloWatchdog,
    Tracer,
    build_manifest,
    capture_environment,
    check_benchmarks,
    ensure_parent_dir,
    parse_prometheus,
    record_build_info,
    strip_measured,
    write_history,
)
from repro.obs.manifest import REDACTED


def _get(url: str, timeout: float = 10.0):
    """(status, body) of a GET, following the 503-body convention."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def _sse_events(body: str):
    """Parse SSE frames into event dicts."""
    events = []
    for frame in body.split("\n\n"):
        for line in frame.splitlines():
            if line.startswith("data: "):
                events.append(json.loads(line[len("data: "):]))
    return events


class TestEventBus:
    def test_publish_assigns_seq_and_kind(self):
        bus = EventBus()
        first = bus.publish("window", index=0)
        second = bus.publish("fault", fault_kind="worker_crash")
        assert first == {"seq": 0, "kind": "window", "index": 0}
        assert second["seq"] == 1
        assert bus.events_published == 2

    def test_subscriber_receives_live_events_in_order(self):
        bus = EventBus()
        subscription = bus.subscribe()
        bus.publish("a")
        bus.publish("b")
        assert subscription.get(timeout=1)["kind"] == "a"
        assert subscription.get(timeout=1)["kind"] == "b"

    def test_replay_delivers_history_before_live(self):
        bus = EventBus()
        bus.publish("early")
        subscription = bus.subscribe(replay=True)
        bus.publish("late")
        kinds = [subscription.get(timeout=1)["kind"] for _ in range(2)]
        assert kinds == ["early", "late"]

    def test_no_replay_skips_history(self):
        bus = EventBus()
        bus.publish("early")
        subscription = bus.subscribe(replay=False)
        bus.publish("late")
        assert subscription.get(timeout=1)["kind"] == "late"

    def test_close_ends_iteration(self):
        bus = EventBus()
        subscription = bus.subscribe()
        bus.publish("only")
        bus.close()
        assert [e["kind"] for e in subscription.events(timeout=1)] == ["only"]

    def test_history_is_bounded_and_drops_are_counted(self):
        bus = EventBus(history_limit=3)
        for index in range(5):
            bus.publish("tick", index=index)
        history = bus.history()
        assert [event["index"] for event in history] == [2, 3, 4]
        assert bus.events_dropped == 2

    def test_attached_listener_runs_synchronously(self):
        bus = EventBus()
        seen = []
        bus.attach(lambda event: seen.append(event["kind"]))
        bus.publish("x")
        assert seen == ["x"]

    def test_strip_measured_removes_only_seconds_fields(self):
        event = {"kind": "window", "duration_seconds": 0.5, "volume": 4.0}
        assert strip_measured(event) == {"kind": "window", "volume": 4.0}

    def test_rejects_negative_history_limit(self):
        with pytest.raises(ValueError):
            EventBus(history_limit=-1)


class TestLogbook:
    def test_human_mode_prints_bare_message(self, capsys):
        log = Logbook()
        log.info("wrote trace /tmp/t.jsonl", event="export")
        assert capsys.readouterr().err == "wrote trace /tmp/t.jsonl\n"

    def test_json_mode_prints_structured_record(self, capsys):
        log = Logbook(json_mode=True)
        log.warning("queue filling", event="ingest", depth=12)
        record = json.loads(capsys.readouterr().err)
        assert record == {
            "event": "ingest",
            "depth": 12,
            "level": "warning",
            "msg": "queue filling",
        }

    def test_threshold_suppresses_but_still_records(self, capsys):
        log = Logbook(level="warning")
        log.debug("noise")
        log.info("still noise")
        log.error("boom")
        assert capsys.readouterr().err == "boom\n"
        assert log.suppressed == 2
        assert [r.level for r in log.records] == ["debug", "info", "error"]

    def test_records_carry_open_span_id(self):
        tracer = Tracer("test")
        log = Logbook(tracer=tracer)
        with tracer.span("phase") as span:
            log.info("inside")
        log.info("outside")
        tracer.finish()
        log.info("after finish")
        assert log.records[0].span_id == span.span_id
        assert log.records[1].span_id == tracer.root.span_id
        assert log.records[2].span_id == ""

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            Logbook(level="loud")
        with pytest.raises(ValueError):
            Logbook().log("loud", "hm")


class TestSloWatchdog:
    def test_check_trips_counter_and_flips_ready(self):
        registry = MetricsRegistry()
        watchdog = SloWatchdog(registry=registry)
        assert watchdog.check("window_lag_seconds", 0.5)
        assert watchdog.ready
        assert not watchdog.check("window_lag_seconds", 6.0)
        assert not watchdog.ready
        totals = registry.counter_totals()
        assert totals['repro_slo_breached_total{slo="window_lag_seconds"}'] == 1

    def test_unknown_indicator_is_ignored(self):
        watchdog = SloWatchdog()
        assert watchdog.check("unheard_of", 1e9)
        assert watchdog.ready

    def test_window_event_feeds_lag_and_drop_rate(self):
        watchdog = SloWatchdog()
        watchdog.observe(
            {"kind": "window", "duration_seconds": 9.0,
             "offered_volume": 10.0, "dropped_volume": 5.0}
        )
        assert set(watchdog.breaches) == {
            "window_lag_seconds", "ingest_drop_rate"
        }

    def test_engine_batches_accumulate_error_rate(self):
        watchdog = SloWatchdog()
        watchdog.observe(
            {"kind": "engine_batch", "configs_requested": 10,
             "worker_failures": 0}
        )
        assert watchdog.ready
        watchdog.observe(
            {"kind": "engine_batch", "configs_requested": 10,
             "worker_failures": 9}
        )
        assert "worker_error_rate" in watchdog.breaches

    def test_pipeline_event_feeds_degraded_fraction(self):
        watchdog = SloWatchdog()
        watchdog.observe({"kind": "pipeline", "steps": 4, "degraded_steps": 3})
        assert "degraded_link_fraction" in watchdog.breaches

    def test_status_shape(self):
        watchdog = SloWatchdog()
        watchdog.check("window_lag_seconds", 99.0)
        status = watchdog.status()
        assert status["ready"] is False
        assert status["trips"] == {"window_lag_seconds": 1}
        assert "window_lag_seconds" in status["breaches"]

    def test_duplicate_rule_names_rejected(self):
        rule = DEFAULT_SLOS[0]
        with pytest.raises(ValueError):
            SloWatchdog(rules=(rule, rule))

    def test_lt_comparison(self):
        rule = SloRule("floor", "must stay above", 1.0, comparison="lt")
        assert not rule.breached(1.5)
        assert rule.breached(0.5)
        with pytest.raises(ValueError):
            SloRule("bad", "", 1.0, comparison="ge")


class TestManifestRedaction:
    def test_credential_shaped_values_are_redacted(self):
        captured = capture_environment(
            {
                "REPRO_API_KEY": "hunter2",
                "REPRO_ACCESS_TOKEN": "t0ps3cret",
                "SPOOFTRACK_SECRET_SALT": "salty",
                "PYTHONHASHSEED": "0",
                "HOME": "/root",
            }
        )
        assert captured["REPRO_API_KEY"] == REDACTED
        assert captured["REPRO_ACCESS_TOKEN"] == REDACTED
        assert captured["SPOOFTRACK_SECRET_SALT"] == REDACTED
        assert captured["PYTHONHASHSEED"] == "0"
        assert "HOME" not in captured  # unprefixed vars are not captured

    def test_build_manifest_carries_environment(self):
        manifest = build_manifest("track", seed=3)
        assert isinstance(manifest.environment, dict)
        assert all(
            REDACTED == value
            for name, value in manifest.environment.items()
            if "KEY" in name.upper()
        )


class TestBuildInfo:
    def test_gauge_carries_identity_labels(self):
        registry = MetricsRegistry()
        record_build_info(registry)
        parsed = parse_prometheus(registry.render_prometheus())
        series = [name for name in parsed if name.startswith("repro_build_info")]
        assert len(series) == 1
        assert parsed[series[0]] == 1.0
        assert 'version="' in series[0]
        assert 'python="' in series[0]
        assert 'platform="' in series[0]

    def test_for_run_arms_build_info(self):
        obs = Observability.for_run("t")
        assert "repro_build_info" in obs.registry.render_prometheus()


class TestEnsureParentDir:
    def test_creates_nested_parents(self, tmp_path):
        target = tmp_path / "a" / "b" / "c" / "out.json"
        assert ensure_parent_dir(str(target)) == str(target)
        assert target.parent.is_dir()

    def test_existing_parent_is_fine(self, tmp_path):
        target = tmp_path / "out.json"
        ensure_parent_dir(str(target))
        ensure_parent_dir(str(target))
        assert tmp_path.is_dir()

    def test_writers_create_parents(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("x_total").inc()
        registry.write_prometheus(str(tmp_path / "m" / "x.prom"))
        registry.write_json(str(tmp_path / "j" / "x.json"))
        tracer = Tracer("t")
        tracer.write_jsonl(str(tmp_path / "t" / "x.jsonl"))
        manifest = build_manifest("track")
        manifest.write(str(tmp_path / "mf" / "x.json"))
        for sub in ("m/x.prom", "j/x.json", "t/x.jsonl", "mf/x.json"):
            assert (tmp_path / sub).exists()


class TestFaultLogListeners:
    def test_listeners_observe_records(self):
        log = FaultLog()
        seen = []
        log.listeners.append(lambda kind, count: seen.append((kind, count)))
        log.record("worker_crash")
        log.record("link_degradation", 3)
        assert seen == [("worker_crash", 1), ("link_degradation", 3)]
        assert log.by_kind == {"worker_crash": 1, "link_degradation": 3}

    def test_listeners_do_not_affect_equality(self):
        plain = FaultLog(by_kind={"x": 1})
        listened = FaultLog(by_kind={"x": 1})
        listened.listeners.append(lambda kind, count: None)
        assert plain == listened


@pytest.fixture()
def served_obs():
    """An armed bundle with some events, served over a real socket."""
    obs = Observability.for_run("serve-test")
    obs.registry.counter("served_total").inc(7)
    obs.bus.publish("window", window_index=0, duration_seconds=0.25)
    obs.bus.publish("fault", fault_kind="worker_crash", count=1)
    manifest = build_manifest("track", seed=3)
    watchdog = SloWatchdog(registry=obs.registry)
    obs.bus.attach(watchdog.observe)
    server = ObsServer(obs=obs, manifest=manifest, watchdog=watchdog, port=0)
    server.start()
    try:
        yield obs, server, watchdog
    finally:
        server.stop()
        obs.bus.close()


class TestObsServer:
    def test_metrics_endpoint_parses(self, served_obs):
        obs, server, _ = served_obs
        status, body = _get(server.url + "/metrics")
        assert status == 200
        parsed = parse_prometheus(body)
        assert parsed["served_total"] == 7.0
        assert any(name.startswith("repro_build_info") for name in parsed)

    def test_healthz_defaults_healthy(self, served_obs):
        _, server, _ = served_obs
        status, body = _get(server.url + "/healthz")
        assert status == 200
        assert json.loads(body)["healthy"] is True

    def test_healthz_reports_unhealthy_source(self):
        obs = Observability.for_run("sick")
        server = ObsServer(
            obs=obs, health_source={"healthy": False, "reason": "violations"}
        ).start()
        try:
            status, body = _get(server.url + "/healthz")
        finally:
            server.stop()
        assert status == 503
        assert json.loads(body)["reason"] == "violations"

    def test_readyz_gates_on_startup_and_watchdog(self, served_obs):
        obs, server, watchdog = served_obs
        status, _ = _get(server.url + "/readyz")
        assert status == 503  # set_ready not called yet
        server.set_ready()
        status, body = _get(server.url + "/readyz")
        assert status == 200
        assert json.loads(body)["ready"] is True
        # A breached SLO flips readiness back off.
        obs.bus.publish("window", duration_seconds=60.0, window_index=1)
        status, body = _get(server.url + "/readyz")
        assert status == 503
        assert "window_lag_seconds" in json.loads(body)["breaches"]

    def test_manifest_roundtrips(self, served_obs):
        _, server, _ = served_obs
        status, body = _get(server.url + "/manifest")
        assert status == 200
        payload = json.loads(body)
        assert payload["command"] == "track"
        assert payload["seed"] == 3

    def test_traces_lists_finished_spans(self, served_obs):
        obs, server, _ = served_obs
        with obs.tracer.span("probe"):
            pass
        status, body = _get(server.url + "/traces")
        assert status == 200
        assert any(span["name"] == "probe" for span in json.loads(body))

    def test_events_streams_replay_with_limit(self, served_obs):
        _, server, _ = served_obs
        status, body = _get(server.url + "/events?replay=1&limit=2")
        assert status == 200
        events = _sse_events(body)
        assert [event["kind"] for event in events] == ["window", "fault"]
        assert [event["seq"] for event in events] == [0, 1]

    def test_unknown_route_404(self, served_obs):
        _, server, _ = served_obs
        status, body = _get(server.url + "/nope")
        assert status == 404
        assert "unknown route" in body

    def test_index_lists_routes(self, served_obs):
        _, server, _ = served_obs
        status, body = _get(server.url)
        assert status == 200
        assert set(json.loads(body)["endpoints"]) == set(ObsServer.ROUTES)

    def test_tenants_404_without_fleet_runtime(self, served_obs):
        _, server, _ = served_obs
        status, body = _get(server.url + "/tenants")
        assert status == 404
        assert "no fleet runtime" in json.loads(body)["error"]

    def test_tenants_serves_callable_source(self):
        calls = {"count": 0}

        def summary():
            calls["count"] += 1
            return {
                "tenants": {"tenant-00": {"windows": 9, "states": {"done": 2}}},
                "pending": [],
            }

        obs = Observability.for_run("fleet")
        server = ObsServer(obs=obs, tenants_source=summary, port=0).start()
        try:
            first, body = _get(server.url + "/tenants")
            second, _ = _get(server.url + "/tenants")
        finally:
            server.stop()
            obs.bus.close()
        assert first == second == 200
        payload = json.loads(body)
        assert payload["tenants"]["tenant-00"]["windows"] == 9
        assert calls["count"] == 2  # re-evaluated per request, never cached

    def test_tenants_accepts_static_mapping(self):
        obs = Observability.for_run("fleet")
        server = ObsServer(
            obs=obs, tenants_source={"tenants": {}, "pending": []}, port=0
        ).start()
        try:
            status, body = _get(server.url + "/tenants")
        finally:
            server.stop()
            obs.bus.close()
        assert status == 200
        assert json.loads(body) == {"tenants": {}, "pending": []}

    def test_tenants_route_is_listed(self):
        assert "/tenants" in ObsServer.ROUTES


class TestConcurrentScrapes:
    def test_metrics_consistent_while_parallel_run_mutates(self, small_testbed):
        """Scrapes during a --workers 2 live replay always parse, and
        counter series never decrease between consecutive scrapes."""
        obs = Observability.for_run("live")
        service = LiveTracebackService(
            scenario=ReplayScenario(seed=5, max_configs=4, adaptive=False),
            testbed=small_testbed,
            workers=2,
            obs=obs,
        )
        server = ObsServer(obs=obs, port=0).start()
        failures = []
        done = threading.Event()

        def run():
            try:
                service.run()
            except Exception as exc:  # surfaced after join
                failures.append(exc)
            finally:
                done.set()

        thread = threading.Thread(target=run)
        thread.start()
        previous = {}
        scrapes = 0
        try:
            while not done.is_set() or scrapes < 3:
                status, body = _get(server.url + "/metrics")
                assert status == 200
                parsed = parse_prometheus(body)  # malformed text would raise
                for series, value in previous.items():
                    if series.endswith("_total") and series in parsed:
                        assert parsed[series] >= value
                previous = parsed
                scrapes += 1
                if done.is_set() and scrapes >= 3:
                    break
        finally:
            thread.join(timeout=60)
            server.stop()
            service.close()
        assert not failures
        assert scrapes >= 3


class TestSseDeterminism:
    @staticmethod
    def _stripped_stream(small_testbed, tmp_path, tag):
        obs = Observability.for_run("live")
        scenario = ReplayScenario(
            seed=5,
            max_configs=4,
            adaptive=False,
            churn_events=((2, 0.2),),
            checkpoint_every=4,
            checkpoint_path=str(tmp_path / f"{tag}.json"),
        )
        service = LiveTracebackService(
            scenario=scenario, testbed=small_testbed, obs=obs
        )
        try:
            service.run()
        finally:
            service.close()
        history = obs.bus.history()
        assert any("_seconds" in key for event in history for key in event)
        return [
            json.dumps(strip_measured(event), sort_keys=True)
            for event in history
        ]

    def test_same_seed_same_stripped_event_sequence(
        self, small_testbed, tmp_path
    ):
        first = self._stripped_stream(small_testbed, tmp_path, "a")
        second = self._stripped_stream(small_testbed, tmp_path, "b")
        assert first == second
        kinds = {json.loads(line)["kind"] for line in first}
        assert {"engine_batch", "select", "window", "churn", "checkpoint"} <= kinds


def _write_bench(tmp_path, name, metrics):
    path = tmp_path / name
    path.write_text(json.dumps(metrics, indent=2))
    return path


class TestBenchGate:
    def test_passes_on_identical_history(self, tmp_path):
        _write_bench(tmp_path, "BENCH_a.json", {"x_seconds": 1.0, "runs": 3})
        write_history(str(tmp_path))
        result = check_benchmarks(str(tmp_path))
        assert result.passed
        assert result.checked == 1  # `runs` is not a gated metric

    def test_fails_on_twenty_percent_slowdown(self, tmp_path):
        _write_bench(tmp_path, "BENCH_a.json", {"x_seconds": 1.0})
        write_history(str(tmp_path))
        _write_bench(tmp_path, "BENCH_a.json", {"x_seconds": 1.2})
        result = check_benchmarks(str(tmp_path))
        assert not result.passed
        regression = result.regressions[0]
        assert regression.metric == "x_seconds"
        assert regression.ratio == pytest.approx(1.2)
        assert any("REGRESSION" in line for line in result.summary_lines())

    def test_tolerance_is_configurable(self, tmp_path):
        _write_bench(tmp_path, "BENCH_a.json", {"x_seconds": 1.0})
        write_history(str(tmp_path))
        _write_bench(tmp_path, "BENCH_a.json", {"x_seconds": 1.2})
        assert check_benchmarks(str(tmp_path), tolerance=0.25).passed

    def test_improvements_always_pass(self, tmp_path):
        _write_bench(tmp_path, "BENCH_a.json", {"x_seconds": 1.0})
        write_history(str(tmp_path))
        _write_bench(tmp_path, "BENCH_a.json", {"x_seconds": 0.5})
        assert check_benchmarks(str(tmp_path)).passed

    def test_new_and_missing_metrics_reported_not_failed(self, tmp_path):
        _write_bench(tmp_path, "BENCH_a.json", {"x_seconds": 1.0})
        write_history(str(tmp_path))
        _write_bench(tmp_path, "BENCH_a.json", {"y_seconds": 1.0})
        _write_bench(tmp_path, "BENCH_b.json", {"z_seconds": 1.0})
        result = check_benchmarks(str(tmp_path))
        assert result.passed
        assert "BENCH_a.json:x_seconds" in result.missing
        assert "BENCH_a.json:y_seconds" in result.new_metrics
        assert "BENCH_b.json:z_seconds" in result.new_metrics

    def test_committed_history_matches_artifacts(self):
        result = check_benchmarks("benchmarks")
        assert result.passed, result.summary_lines()
        assert result.checked > 0


class TestDashboard:
    def test_render_reflects_events(self):
        from repro.analysis.dashboard import Dashboard

        dash = Dashboard()
        for index in range(3):
            dash.ingest(
                {"kind": "window", "window_index": index,
                 "num_clusters": 4 + index, "entropy": 2.0 - index * 0.3,
                 "offered_volume": 8.0, "dropped_volume": 1.0}
            )
        dash.ingest({"kind": "fault", "fault_kind": "worker_crash", "count": 2})
        dash.ingest({"kind": "churn", "remeasured": True})
        dash.ingest(
            {"kind": "select", "schedule_index": 1, "phase": "locations",
             "configs_consumed": 2}
        )
        text = dash.render()
        assert "window 2" in text
        assert "worker_crash×2" in text
        assert "1 remeasurements" in text
        assert "entropy (bits) by window" in text
        assert "clusters by window" in text

    def test_tenant_filter_drops_foreign_events(self):
        from repro.analysis.dashboard import Dashboard

        dash = Dashboard(tenant="tenant-00")
        dash.ingest(
            {"kind": "window", "window_index": 0, "tenant": "tenant-00",
             "num_clusters": 4, "entropy": 2.0}
        )
        dash.ingest(
            {"kind": "window", "window_index": 5, "tenant": "tenant-01",
             "num_clusters": 9, "entropy": 0.5}
        )
        dash.ingest({"kind": "fault", "fault_kind": "worker_crash", "count": 1})
        text = dash.render()
        assert "window 0" in text
        assert "window 5" not in text
        assert dash.events_filtered == 2  # foreign window + untagged fault
        assert "tenant tenant-00" in text

    def test_no_tenant_filter_keeps_everything(self):
        from repro.analysis.dashboard import Dashboard

        dash = Dashboard()
        dash.ingest(
            {"kind": "window", "window_index": 0, "tenant": "tenant-01",
             "num_clusters": 4, "entropy": 2.0}
        )
        assert dash.events_filtered == 0
        assert "window 0" in dash.render()
