"""Tests for the campaign wall-clock model."""

from datetime import timedelta

import pytest

from repro.core.timeline import (
    PAPER_MINUTES_PER_CONFIG,
    CampaignTimeline,
    paper_campaign_duration,
)


class TestPaperNumbers:
    def test_705_configs_take_about_a_month(self):
        duration = paper_campaign_duration(705)
        assert timedelta(days=30) < duration < timedelta(days=40)

    def test_per_config_dwell(self):
        assert paper_campaign_duration(1) == timedelta(
            minutes=PAPER_MINUTES_PER_CONFIG
        )

    def test_analytic_dwell_close_to_papers_70_minutes(self):
        timeline = CampaignTimeline()
        assert 60 <= timeline.minutes_per_config <= 90


class TestTimeline:
    def test_duration_scales_linearly(self):
        timeline = CampaignTimeline()
        assert timeline.duration(10) == 10 * timeline.duration(1)

    def test_zero_configs(self):
        assert CampaignTimeline().duration(0) == timedelta(0)

    def test_negative_configs_rejected(self):
        with pytest.raises(ValueError):
            CampaignTimeline().duration(-1)

    def test_concurrent_prefixes_divide_time(self):
        single = CampaignTimeline(concurrent_prefixes=1)
        quad = CampaignTimeline(concurrent_prefixes=4)
        assert quad.duration(100) < single.duration(100)
        # Ceil-division batching: 100 configs over 4 prefixes = 25 batches.
        assert quad.duration(100) == single.duration(25)

    def test_configs_per_day(self):
        timeline = CampaignTimeline(concurrent_prefixes=2)
        per_day = timeline.configs_per_day()
        assert per_day == pytest.approx(
            2 * 24 * 60 / timeline.minutes_per_config
        )

    def test_more_rounds_longer_dwell(self):
        quick = CampaignTimeline(rounds_per_config=1)
        thorough = CampaignTimeline(rounds_per_config=5)
        assert thorough.minutes_per_config > quick.minutes_per_config

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignTimeline(convergence_minutes=-1)
        with pytest.raises(ValueError):
            CampaignTimeline(probe_interval_minutes=0)
        with pytest.raises(ValueError):
            CampaignTimeline(rounds_per_config=0)
        with pytest.raises(ValueError):
            CampaignTimeline(concurrent_prefixes=0)


class TestPrefixesNeeded:
    def test_one_prefix_enough_for_long_deadline(self):
        timeline = CampaignTimeline()
        assert timeline.prefixes_needed(10, timedelta(days=2)) == 1

    def test_tight_deadline_needs_many(self):
        timeline = CampaignTimeline()
        needed = timeline.prefixes_needed(705, timedelta(days=1))
        assert needed > 10

    def test_deadline_consistency(self):
        """With the suggested prefixes, the campaign fits the deadline."""
        timeline = CampaignTimeline()
        deadline = timedelta(days=3)
        needed = timeline.prefixes_needed(200, deadline)
        scaled = CampaignTimeline(concurrent_prefixes=needed)
        assert scaled.duration(200) <= deadline

    def test_impossible_deadline_rejected(self):
        timeline = CampaignTimeline()
        with pytest.raises(ValueError):
            timeline.prefixes_needed(5, timedelta(minutes=10))
        with pytest.raises(ValueError):
            timeline.prefixes_needed(5, timedelta(0))
