"""Tests for simulator modes: strict convergence, determinism, ordering."""

import pytest

from repro.bgp.announcement import anycast_all
from repro.bgp.policy import PolicyModel
from repro.bgp.simulator import RoutingSimulator
from repro.errors import ConvergenceError
from tests.conftest import build_mini_internet


class TestStrictMode:
    def test_strict_passes_on_convergent_system(self):
        mini = build_mini_internet()
        policy = PolicyModel(mini.graph, policy_noise=0.0)
        simulator = RoutingSimulator(
            mini.graph, mini.origin, policy, strict=True
        )
        outcome = simulator.simulate(anycast_all(["l1", "l2"]))
        assert outcome.converged

    def test_strict_raises_when_passes_exhausted(self):
        mini = build_mini_internet()
        policy = PolicyModel(mini.graph, policy_noise=0.0)
        simulator = RoutingSimulator(
            mini.graph, mini.origin, policy, max_passes=1, strict=True
        )
        with pytest.raises(ConvergenceError, match="no fixpoint"):
            simulator.simulate(anycast_all(["l1", "l2"]))

    def test_lenient_returns_partial_state(self):
        mini = build_mini_internet()
        policy = PolicyModel(mini.graph, policy_noise=0.0)
        simulator = RoutingSimulator(
            mini.graph, mini.origin, policy, max_passes=1, strict=False
        )
        outcome = simulator.simulate(anycast_all(["l1", "l2"]))
        assert not outcome.converged
        # Even the partial state is a valid (loop-free) assignment.
        for asn in outcome.covered_ases:
            path = outcome.forwarding_path(asn)
            assert len(path) == len(set(path))


class TestDeterminism:
    def test_repeat_simulation_identical(self, small_testbed):
        config = anycast_all(small_testbed.origin.link_ids)
        first = small_testbed.simulator.simulate(config)
        second = small_testbed.simulator.simulate(config)
        assert first.routes == second.routes
        assert first.catchments == second.catchments
        assert first.passes == second.passes

    def test_fresh_simulator_identical(self, small_testbed):
        config = anycast_all(small_testbed.origin.link_ids)
        fresh = RoutingSimulator(
            small_testbed.graph, small_testbed.origin, small_testbed.policy
        )
        assert fresh.simulate(config).routes == (
            small_testbed.simulator.simulate(config).routes
        )

    def test_different_salt_changes_ties_only(self, small_testbed):
        config = anycast_all(small_testbed.origin.link_ids)
        base = small_testbed.simulator.simulate(config)
        other_policy = PolicyModel(
            small_testbed.graph,
            seed=small_testbed.policy.seed,
            tiebreak_salt=small_testbed.policy.tiebreak_salt + 99,
        )
        other = RoutingSimulator(
            small_testbed.graph, small_testbed.origin, other_policy
        ).simulate(config)
        # Coverage is salt-independent; only tie resolutions may differ.
        assert other.covered_ases == base.covered_ases
        moved = sum(
            1
            for asn in base.covered_ases
            if base.catchment_of(asn) != other.catchment_of(asn)
        )
        assert moved > 0  # some ties existed and re-resolved
