"""Property-based tests on cross-module system invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bgp.announcement import AnnouncementConfig
from repro.bgp.convergence import ConvergenceEngine, ConvergenceParams
from repro.bgp.policy import PolicyModel
from repro.bgp.simulator import RoutingSimulator
from repro.data import Dataset
from repro.measurement.catchment import CatchmentHistory
from repro.mitigation import BlackholeRule, FlowspecRule, evaluate_mitigation
from repro.spoof.sources import SourcePlacement
from repro.topology.generator import TopologyParams, generate_topology
from repro.topology.geography import GeographyModel
from repro.topology.peering import attach_origin

# ----------------------------------------------------------------------
# Event-driven convergence ≡ synchronous fixpoint
# ----------------------------------------------------------------------


class TestConvergenceEquivalence:
    @settings(
        max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        st.integers(min_value=0, max_value=500),
        st.floats(min_value=0.0, max_value=0.15),
        st.booleans(),
        st.floats(min_value=0.0, max_value=10.0),
    )
    def test_engines_agree(self, seed, noise, use_geography, mrai):
        topo = generate_topology(
            TopologyParams(num_tier1=3, num_transit=12, num_stub=40, seed=seed)
        )
        origin = attach_origin(topo, num_links=3, seed=seed)
        geography = (
            GeographyModel.random(topo.graph.ases, seed=seed)
            if use_geography
            else None
        )
        policy = PolicyModel(
            topo.graph, seed=seed, policy_noise=noise, geography=geography
        )
        rng = random.Random(seed)
        links = origin.link_ids
        announced = frozenset(rng.sample(links, rng.randint(1, len(links))))
        config = AnnouncementConfig(
            announced=announced,
            prepended=frozenset(rng.sample(sorted(announced), rng.randint(0, 1))),
        )
        fixpoint = RoutingSimulator(topo.graph, origin, policy).simulate(config)
        engine = ConvergenceEngine(
            topo.graph, origin, policy, ConvergenceParams(mrai_seconds=mrai)
        )
        result = engine.run(config)
        assert result.agrees_with(fixpoint)
        assert result.convergence_time >= 0.0
        assert result.messages_sent >= len(result.routes)


# ----------------------------------------------------------------------
# Dataset roundtrip
# ----------------------------------------------------------------------

link_names = st.sampled_from(["l1", "l2", "l3", "l4"])
asns = st.integers(min_value=1, max_value=100000)


@st.composite
def dataset_strategy(draw):
    links = sorted(draw(st.sets(link_names, min_size=1, max_size=4)))
    num_configs = draw(st.integers(min_value=1, max_value=5))
    configs = []
    assignments = []
    for _ in range(num_configs):
        announced = sorted(
            draw(st.sets(st.sampled_from(links), min_size=1, max_size=len(links)))
        )
        prepended = draw(
            st.sets(st.sampled_from(announced), max_size=len(announced))
        )
        poisons = draw(st.dictionaries(
            st.sampled_from(announced), st.sets(asns, min_size=1, max_size=2),
            max_size=2,
        ))
        configs.append(
            AnnouncementConfig(
                announced=frozenset(announced),
                prepended=frozenset(prepended),
                poisoned={k: frozenset(v) for k, v in poisons.items()},
                label=draw(st.text(max_size=8)),
                phase=draw(st.sampled_from(["locations", "prepending", ""])),
            )
        )
        assignments.append(
            draw(
                st.dictionaries(asns, st.sampled_from(announced), max_size=10)
            )
        )
    return Dataset.from_history(links, configs, assignments)


class TestDatasetRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(dataset_strategy())
    def test_json_roundtrip_preserves_everything(self, dataset):
        restored = Dataset.from_json_dict(dataset.to_json_dict())
        assert restored.links == dataset.links
        assert len(restored) == len(dataset)
        for mine, theirs in zip(dataset.records, restored.records):
            assert mine.config.key() == theirs.config.key()
            assert mine.config.label == theirs.config.label
            assert mine.assignment == theirs.assignment
        assert restored.catchment_history() == dataset.catchment_history()


# ----------------------------------------------------------------------
# Mitigation invariants
# ----------------------------------------------------------------------


@st.composite
def mitigation_case(draw):
    members = draw(st.sets(asns, min_size=2, max_size=20))
    ordered = sorted(members)
    half = len(ordered) // 2
    catchments = {
        "l1": frozenset(ordered[:half] or ordered[:1]),
        "l2": frozenset(ordered[half:] or ordered[-1:]),
    }
    sources = draw(
        st.dictionaries(
            st.sampled_from(ordered), st.integers(min_value=1, max_value=5),
            min_size=1, max_size=5,
        )
    )
    rule_ases = draw(st.sets(st.sampled_from(ordered), min_size=1, max_size=5))
    return catchments, SourcePlacement(sources), frozenset(rule_ases)


class TestMitigationInvariants:
    @settings(max_examples=60, deadline=None)
    @given(mitigation_case())
    def test_fractions_bounded_and_blackhole_dominates(self, case):
        catchments, placement, rule_ases = case
        flowspec = [FlowspecRule(source_ases=rule_ases)]
        flow_report = evaluate_mitigation(flowspec, placement, catchments)
        hole_report = evaluate_mitigation([BlackholeRule()], placement, catchments)
        for report in (flow_report, hole_report):
            assert 0.0 <= report.attack_volume_dropped <= 1.0
            assert 0.0 <= report.legitimate_volume_dropped <= 1.0
        assert hole_report.attack_volume_dropped >= flow_report.attack_volume_dropped
        assert (
            hole_report.legitimate_volume_dropped
            >= flow_report.legitimate_volume_dropped
        )

    @settings(max_examples=60, deadline=None)
    @given(mitigation_case())
    def test_more_rules_drop_weakly_more(self, case):
        catchments, placement, rule_ases = case
        some = [FlowspecRule(source_ases=rule_ases)]
        ordered = sorted(rule_ases)
        fewer = [FlowspecRule(source_ases=frozenset(ordered[:1]))]
        more_report = evaluate_mitigation(some, placement, catchments)
        less_report = evaluate_mitigation(fewer, placement, catchments)
        assert (
            more_report.attack_volume_dropped
            >= less_report.attack_volume_dropped - 1e-12
        )


# ----------------------------------------------------------------------
# smax imputation invariants
# ----------------------------------------------------------------------


@st.composite
def history_case(draw):
    universe = sorted(draw(st.sets(asns, min_size=2, max_size=12)))
    num_configs = draw(st.integers(min_value=1, max_value=5))
    history = CatchmentHistory(universe)
    for _ in range(num_configs):
        assignment = draw(
            st.dictionaries(
                st.sampled_from(universe), st.sampled_from(["l1", "l2", "l3"]),
                max_size=len(universe),
            )
        )
        history.add(assignment)
    return history


class TestImputationInvariants:
    @settings(max_examples=60, deadline=None)
    @given(history_case())
    def test_imputation_only_adds(self, history):
        raw = history.catchment_maps(["l1", "l2", "l3"], imputed=False)
        imputed = history.imputed_assignments()
        assert len(imputed) == len(history)
        for index, assignment in enumerate(imputed):
            for link, members in raw[index].items():
                for source in members:
                    assert assignment[source] == link  # originals preserved

    @settings(max_examples=60, deadline=None)
    @given(history_case())
    def test_imputed_links_actually_occur(self, history):
        imputed = history.imputed_assignments()
        for index, assignment in enumerate(imputed):
            raw_links = set(
                history.catchment_maps(["l1", "l2", "l3"], imputed=False)[index]
            )
            used = {
                link
                for link, members in history.catchment_maps(
                    ["l1", "l2", "l3"], imputed=False
                )[index].items()
                if members
            }
            for source, link in assignment.items():
                assert link in raw_links
                # An imputed link must have been observed for someone in
                # that configuration (smax was observed there).
                assert link in used or not used
