"""Tests for policy-compliance auditing and catchment prediction."""

import pytest

from repro.bgp.announcement import AnnouncementConfig, anycast_all
from repro.bgp.policy import PolicyModel
from repro.bgp.simulator import RoutingSimulator
from repro.core.prediction import (
    CatchmentPredictor,
    PredictionAccuracy,
    policy_compliance,
)
from tests.conftest import build_mini_internet


def mini_setup(**policy_kwargs):
    mini = build_mini_internet()
    defaults = dict(policy_noise=0.0, loop_prevention_disabled_fraction=0.0)
    defaults.update(policy_kwargs)
    policy = PolicyModel(mini.graph, seed=0, **defaults)
    simulator = RoutingSimulator(mini.graph, mini.origin, policy)
    return mini, policy, simulator


class TestPolicyCompliance:
    def test_clean_policies_fully_compliant(self):
        mini, policy, simulator = mini_setup()
        outcome = simulator.simulate(anycast_all(["l1", "l2"]))
        stats = policy_compliance(outcome, mini.graph, policy, mini.origin)
        assert stats.ases_checked > 0
        assert stats.best_relationship == 1.0
        assert stats.best_relationship_and_shortest == 1.0

    def test_both_criteria_never_exceeds_relationship(self, small_testbed):
        outcome = small_testbed.simulator.simulate(
            anycast_all(small_testbed.origin.link_ids)
        )
        stats = policy_compliance(
            outcome,
            small_testbed.graph,
            small_testbed.policy,
            small_testbed.origin,
        )
        assert (
            stats.best_relationship_and_shortest <= stats.best_relationship <= 1.0
        )

    def test_deviant_policies_reduce_compliance(self):
        mini, policy, simulator = mini_setup(policy_noise=1.0)
        outcome = simulator.simulate(anycast_all(["l1", "l2"]))
        stats = policy_compliance(outcome, mini.graph, policy, mini.origin)
        clean_mini, clean_policy, clean_simulator = mini_setup()
        clean_outcome = clean_simulator.simulate(anycast_all(["l1", "l2"]))
        clean = policy_compliance(
            clean_outcome, clean_mini.graph, clean_policy, clean_mini.origin
        )
        assert stats.best_relationship <= clean.best_relationship

    def test_checks_only_ases_with_alternatives(self):
        mini, policy, simulator = mini_setup()
        outcome = simulator.simulate(anycast_all(["l1", "l2"]))
        stats = policy_compliance(outcome, mini.graph, policy, mini.origin)
        # Stubs A, B, C have one provider each — no choice, not checked.
        assert stats.ases_checked <= len(outcome.routes) - 3

    def test_no_checkable_ases_degenerate(self):
        mini, policy, simulator = mini_setup()
        outcome = simulator.simulate(
            AnnouncementConfig(announced=frozenset(["l1"]))
        )
        # Works without the origin argument too (fewer candidates audited).
        stats = policy_compliance(outcome, mini.graph, policy)
        assert 0.0 <= stats.best_relationship <= 1.0


class TestCatchmentPredictor:
    def test_perfect_prediction_on_clean_internet(self):
        mini, policy, simulator = mini_setup()
        predictor = CatchmentPredictor(mini.graph, mini.origin)
        config = anycast_all(["l1", "l2"])
        actual = simulator.simulate(config)
        predicted = predictor.predict(config)
        accuracy = CatchmentPredictor.accuracy(predicted, actual)
        assert accuracy.fraction_correct == 1.0
        assert accuracy.ases_compared == len(actual.routes)

    def test_prediction_mostly_right_with_noise(self, small_testbed):
        predictor = CatchmentPredictor(small_testbed.graph, small_testbed.origin)
        config = anycast_all(small_testbed.origin.link_ids)
        actual = small_testbed.simulator.simulate(config)
        predicted = predictor.predict(config)
        accuracy = CatchmentPredictor.accuracy(predicted, actual)
        assert accuracy.fraction_correct > 0.7

    def test_accuracy_degenerate(self):
        mini, policy, simulator = mini_setup()
        outcome = simulator.simulate(anycast_all(["l1", "l2"]))
        empty = simulator.simulate(anycast_all(["l1", "l2"]))
        empty.routes.clear()
        accuracy = CatchmentPredictor.accuracy(empty, empty)
        assert accuracy.ases_compared == 0
        assert accuracy.fraction_correct == 1.0
