"""Tests for the traceback-strategy plugin layer (repro.strategy).

The equivalence classes here embed verbatim replicas of the pre-plugin
selection loops (the old ``GreedyScheduler.run`` body and the old
controller ``_score``/``select_next``) and assert the plugin-backed
paths reproduce them bit-identically — order, curve floats, and dwell —
across seeds, both simulation cores, and worker counts.
"""

import os
import random
import subprocess
import sys

import pytest

from repro.bgp.announcement import AnnouncementConfig
from repro.core.clustering import ClusterState
from repro.core.configgen import ScheduleParams, generate_schedule
from repro.core.engine import SimulationEngine
from repro.core.pipeline import SpoofTracker, build_testbed
from repro.core.scheduler import (
    GreedyScheduler,
    VolumeAwareGreedyScheduler,
    measured_catchment_history,
    refinement_gain,
)
from repro.core.timeline import CampaignTimeline
from repro.errors import StrategyError
from repro.live.controller import AdaptiveController, ControllerPolicy
from repro.strategy import (
    NO_SPLIT_REASON,
    GreedyStrategy,
    RandomStrategy,
    TracebackStrategy,
    available_strategies,
    make_strategy,
    register_strategy,
    run_strategy,
    strategy_class,
    weighted_cost,
    weighted_split_score,
)

UNIVERSE = list(range(16))
HISTORY = [
    {"l1": frozenset(range(8)), "l2": frozenset(range(8, 16))},
    {"l1": frozenset(list(range(4)) + list(range(8, 12))),
     "l2": frozenset(list(range(4, 8)) + list(range(12, 16)))},
    {"l1": frozenset(range(8)), "l2": frozenset(range(8, 16))},
    {"l1": frozenset(range(0, 16, 2)), "l2": frozenset(range(1, 16, 2))},
]


def measured_evidence(testbed, max_configs=14):
    """Schedule + measured catchments for a testbed, shared per test."""
    schedule = generate_schedule(
        testbed.origin, testbed.graph, ScheduleParams()
    )[:max_configs]
    engine = SimulationEngine(testbed.simulator)
    try:
        universe, history = measured_catchment_history(engine, schedule)
    finally:
        engine.close()
    return schedule, universe, history


class TestRegistry:
    def test_builtins_registered(self):
        assert {"greedy", "volume-greedy", "bisect", "bgpeek", "random",
                "schedule"} <= set(available_strategies())

    def test_make_strategy(self):
        strategy = make_strategy("greedy")
        assert isinstance(strategy, GreedyStrategy)
        assert not strategy.bound

    def test_unknown_name_lists_available(self):
        with pytest.raises(StrategyError, match="greedy"):
            strategy_class("nope")

    def test_reregistering_same_class_is_noop(self):
        assert register_strategy(GreedyStrategy) is GreedyStrategy

    def test_name_collision_rejected(self):
        class Impostor(TracebackStrategy):
            name = "greedy"

            def propose(self, state, volume_by_as=None):
                return None

        with pytest.raises(StrategyError, match="already registered"):
            register_strategy(Impostor)


class TestInterface:
    def test_bind_validates_lengths(self):
        with pytest.raises(StrategyError):
            make_strategy("greedy").bind(HISTORY, schedule=[object()])

    def test_bind_rejects_empty(self):
        with pytest.raises(StrategyError):
            make_strategy("greedy").bind([])

    def test_double_bind_rejected(self):
        strategy = make_strategy("greedy").bind(HISTORY)
        with pytest.raises(StrategyError):
            strategy.bind(HISTORY)

    def test_observe_unknown_index_rejected(self):
        strategy = make_strategy("greedy").bind(HISTORY)
        state = ClusterState(UNIVERSE)
        strategy.observe(0, state)
        with pytest.raises(StrategyError):
            strategy.observe(0, state)

    def test_converged_reports_exhaustion_and_no_split(self):
        strategy = make_strategy("greedy").bind(HISTORY)
        state = ClusterState(UNIVERSE)
        assert strategy.converged(state) is None
        for index in (0, 1, 3):
            strategy.observe(index, state)
            state.refine_with_catchments(HISTORY[index])
        # Only the redundant config 2 remains: nothing it can split.
        assert strategy.converged(state) == NO_SPLIT_REASON
        strategy.observe(2, state)
        assert strategy.converged(state) == "schedule exhausted"

    def test_run_strategy_requires_maps_when_unbound(self):
        with pytest.raises(StrategyError):
            run_strategy(make_strategy("greedy"), UNIVERSE)

    def test_update_catchments_validates_length(self):
        strategy = make_strategy("greedy").bind(HISTORY)
        with pytest.raises(StrategyError):
            strategy.update_catchments(HISTORY[:2])


class TestScoring:
    def test_weighted_cost(self):
        state = ClusterState(UNIVERSE)
        volume = {asn: 1.0 for asn in UNIVERSE}
        assert weighted_cost(state, volume) == pytest.approx(16.0 * 16.0)

    def test_no_volume_scores_by_split_gain_only(self):
        state = ClusterState(UNIVERSE)
        score = weighted_split_score(state, HISTORY[1], {})
        assert score == (0.0, refinement_gain(state, HISTORY[1].values()))

    def test_noise_reduction_clamps_to_zero(self):
        # Two clusters with equal volume: any refinement that moves no
        # volume between clusters computes a reduction of exactly 0 up
        # to float summation noise — the clamp makes it exactly 0.0 so
        # the split gain decides.
        state = ClusterState(UNIVERSE)
        volume = {asn: 0.1 + 1e-13 * asn for asn in UNIVERSE}
        score = weighted_split_score(state, HISTORY[2], volume)
        assert score[0] >= 0.0  # never a negative "reduction"

    def test_genuine_reduction_dominates(self):
        state = ClusterState(UNIVERSE)
        state.refine_with_catchments(HISTORY[0])
        volume = {asn: (10.0 if asn >= 8 else 0.0) for asn in UNIVERSE}
        score = weighted_split_score(state, HISTORY[1], volume)
        assert score[0] > 0.0


class TestBuiltinStrategies:
    def test_greedy_matches_scheduler(self):
        result = run_strategy(
            make_strategy("greedy"), UNIVERSE, HISTORY, check_converged=False
        )
        order, curve = GreedyScheduler(UNIVERSE, HISTORY).run()
        assert result.order == order
        assert result.curve == curve

    def test_schedule_strategy_deploys_in_order(self):
        # Schedule order deploys everything (even the redundant config 2)
        # as long as *some* remaining configuration could still split.
        result = run_strategy(make_strategy("schedule"), UNIVERSE, HISTORY)
        assert result.order == [0, 1, 2, 3]
        assert result.stop_reason == "schedule exhausted"
        assert strategy_class("schedule").deploys_in_schedule_order

    def test_schedule_strategy_stops_when_nothing_can_split(self):
        # Once only no-op configurations remain, the base convergence
        # check short-circuits even schedule order.
        result = run_strategy(
            make_strategy("schedule"),
            UNIVERSE,
            [HISTORY[0], HISTORY[2], HISTORY[2]],
        )
        assert result.order == [0]
        assert result.stop_reason == NO_SPLIT_REASON

    def test_random_strategy_is_seed_deterministic(self):
        runs = [
            run_strategy(RandomStrategy(seed=7), UNIVERSE, HISTORY)
            for _ in range(2)
        ]
        assert runs[0].order == runs[1].order
        other = run_strategy(RandomStrategy(seed=8), UNIVERSE, HISTORY)
        orders = {tuple(run_strategy(RandomStrategy(seed=s), UNIVERSE,
                                     HISTORY).order) for s in range(6)}
        assert len(orders) > 1  # seeds genuinely vary the shuffle
        assert sorted(other.order) == sorted(set(other.order))

    def test_bisect_halves_the_largest_cluster_first(self):
        result = run_strategy(make_strategy("bisect"), UNIVERSE, HISTORY)
        # Config 0 and 3 both halve the 16-universe; ties break low.
        assert result.order[0] == 0
        assert result.curve[0] == pytest.approx(8.0)
        assert result.stop_reason == NO_SPLIT_REASON
        assert 2 not in result.order  # redundant config never helps

    def test_bgpeek_narrows_to_a_singleton_suspect(self):
        # HISTORY alone bottoms out at clusters of two; an extra config
        # that isolates AS 5 lets the walk finish the bisection.
        evidence = HISTORY + [
            {"l1": frozenset({5}),
             "l2": frozenset(a for a in UNIVERSE if a != 5)},
        ]
        volume = {asn: (100.0 if asn == 5 else 0.0) for asn in UNIVERSE}
        result = run_strategy(
            make_strategy("bgpeek"), UNIVERSE, evidence, volume_by_as=volume
        )
        assert result.stop_reason == "suspect set narrowed to AS 5"
        # log2(16) = 4 halving steps at most; the walk is fast.
        assert len(result.order) <= 4

    def test_bgpeek_without_volume_follows_smallest_piece(self):
        strategy = make_strategy("bgpeek")
        result = run_strategy(strategy, UNIVERSE, HISTORY)
        # No volume signal: the walk still narrows monotonically, down to
        # one of the indivisible pairs this evidence bottoms out at.
        suspects = strategy.extra_state()["suspects"]
        assert suspects is not None and len(suspects) <= 2
        assert result.stop_reason == NO_SPLIT_REASON

    def test_bgpeek_state_roundtrip(self):
        strategy = make_strategy("bgpeek").bind(HISTORY)
        state = ClusterState(UNIVERSE)
        index = strategy.propose(state)
        strategy.observe(index, state)
        dumped = strategy.extra_state()
        clone = make_strategy("bgpeek").bind(HISTORY)
        clone.restore_remaining(strategy.remaining)
        clone.restore_extra(dumped)
        assert clone.extra_state() == dumped
        assert clone.remaining == strategy.remaining

    def test_volume_greedy_prefers_busy_clusters(self):
        volume = {asn: (10.0 if asn >= 12 else 0.0) for asn in UNIVERSE}
        evidence = [
            HISTORY[0],  # halves: busy 12..15 stay in an 8-cluster
            {"l1": frozenset(range(12, 16)),
             "l2": frozenset(range(12))},  # isolates the busy quartet
        ]
        result = run_strategy(
            make_strategy("volume-greedy", volume_by_as=volume),
            UNIVERSE,
            evidence,
            check_converged=False,
        )
        # Isolating the busy quartet cuts weighted cost 40×16→40×4; the
        # plain halving only reaches 40×8.  Reduction ranks 1 first.
        assert result.order[0] == 1


class TestGreedyEquivalence:
    """Plugin greedy vs a verbatim replica of the old scheduler loop."""

    @staticmethod
    def legacy_greedy_run(universe, catchment_history, max_steps=None):
        # Verbatim pre-plugin GreedyScheduler.run (restricted-map gain
        # loop), kept as the bit-identity reference.
        universe_set = set(universe)
        restricted = [
            [
                (link, frozenset(catchment & universe_set))
                for link, catchment in sorted(catchments.items())
            ]
            for catchments in catchment_history
        ]
        steps = len(catchment_history) if max_steps is None else min(
            max_steps, len(catchment_history)
        )
        state = ClusterState(universe)
        remaining = set(range(len(catchment_history)))
        order, curve = [], []
        for _ in range(steps):
            best_index = None
            best_gain = 0
            for index in sorted(remaining):
                gain = refinement_gain(
                    state, (members for _, members in restricted[index])
                )
                if gain > best_gain:
                    best_gain = gain
                    best_index = index
            if best_index is None:
                break
            remaining.discard(best_index)
            state.refine_with_catchments(catchment_history[best_index])
            order.append(best_index)
            curve.append(state.mean_size())
        return order, curve

    @pytest.mark.parametrize("seed", range(5))
    def test_bit_identical_across_seeds(self, seed):
        testbed = build_testbed(seed=seed)
        _, universe, history = measured_evidence(testbed)
        order, curve = GreedyScheduler(universe, history).run()
        legacy_order, legacy_curve = self.legacy_greedy_run(universe, history)
        assert order == legacy_order
        assert curve == legacy_curve  # exact float equality, not approx

    @pytest.mark.parametrize("core", ["legacy", "indexed"])
    def test_bit_identical_across_simulation_cores(self, core, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CORE", core)
        testbed = build_testbed(seed=3)
        _, universe, history = measured_evidence(testbed)
        order, curve = GreedyScheduler(universe, history).run()
        legacy_order, legacy_curve = self.legacy_greedy_run(universe, history)
        assert (order, curve) == (legacy_order, legacy_curve)

    def test_bit_identical_across_worker_counts(self):
        testbed = build_testbed(seed=2)
        schedule = generate_schedule(
            testbed.origin, testbed.graph, ScheduleParams()
        )[:10]
        results = []
        for workers in (1, 2):
            engine = SimulationEngine(testbed.simulator, workers=workers)
            try:
                universe, history = measured_catchment_history(
                    engine, schedule
                )
            finally:
                engine.close()
            results.append(GreedyScheduler(universe, history).run())
        assert results[0] == results[1]

    def test_max_steps_bit_identical(self):
        testbed = build_testbed(seed=1)
        _, universe, history = measured_evidence(testbed)
        assert GreedyScheduler(universe, history).run(max_steps=4) == (
            self.legacy_greedy_run(universe, history, max_steps=4)
        )


class TestControllerEquivalence:
    """Plugin-backed controller vs the old _score/select_next loop."""

    @staticmethod
    def legacy_select(state, remaining, catchment_maps, volume_by_as):
        # Verbatim pre-plugin AdaptiveController adaptive selection.
        def weighted(state_):
            cost = 0.0
            for cluster in state_.clusters():
                volume = sum(volume_by_as.get(a, 0.0) for a in cluster)
                cost += volume * len(cluster)
            return cost

        def score(index):
            catchments = catchment_maps[index]
            if volume_by_as:
                working = state.copy()
                before = weighted(working)
                working.refine_with_catchments(catchments)
                reduction = before - weighted(working)
                if reduction > 0:
                    return reduction
            return float(
                refinement_gain(state, catchments.values())
            ) * 1e-9

        best_index = None
        best_score = 0.0
        for index in remaining:
            value = score(index)
            if value > best_score:
                best_score = value
                best_index = index
        return best_index if best_index is not None else remaining[0]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lockstep_selection_with_live_attributor(self, seed):
        from repro.live.attributor import LiveAttributor
        from repro.spoof.sources import make_placement
        from repro.spoof.traffic import link_volumes

        testbed = build_testbed(seed=seed)
        schedule, universe, history = measured_evidence(testbed, 10)
        placement = make_placement(
            "pareto",
            sorted(testbed.topology.stubs or testbed.graph.ases),
            20,
            random.Random(seed + 1),
        )
        engine = SimulationEngine(testbed.simulator)
        try:
            outcomes = engine.simulate_many(schedule)
        finally:
            engine.close()

        controller = AdaptiveController(schedule, history)
        attributor = LiveAttributor(universe)
        shadow_remaining = list(range(len(schedule)))
        timeline = CampaignTimeline()
        dwell = 0.0
        while controller.remaining:
            if attributor.configs_applied > 0:
                volume_by_as = attributor.volume_by_as()
                # The specified score: lexicographic (clamped weighted
                # reduction, split gain), ties toward the lowest index.
                best_index, best_score = None, (0.0, 0)
                reductions = {}
                for index in shadow_remaining:
                    score = weighted_split_score(
                        attributor.state,
                        controller.catchment_maps[index],
                        volume_by_as,
                    )
                    reductions[index] = score[0]
                    if score > best_score:
                        best_score = score
                        best_index = index
                expected = (
                    best_index if best_index is not None
                    else shadow_remaining[0]
                )
                legacy = self.legacy_select(
                    attributor.state,
                    shadow_remaining,
                    controller.catchment_maps,
                    volume_by_as,
                )
            else:
                expected = legacy = shadow_remaining[0]
                reductions = {}
            choice = controller.select_next(attributor)
            assert choice == expected
            # Outside exact reduction ties (where the split-gain
            # tie-break is the satellite-2 fix) the plugin reproduces
            # the legacy controller's selection bit-identically.
            top = max(reductions.values(), default=0.0)
            unique_top = (
                sum(1 for value in reductions.values() if value == top) == 1
            )
            if top == 0.0 or unique_top:
                assert choice == legacy
            shadow_remaining.remove(choice)
            dwell += timeline.minutes_per_config
            assert controller.dwell_minutes == dwell
            attributor.apply_config(schedule[choice], history[choice])
            volumes = link_volumes(placement, outcomes[choice].catchments)
            attributor.observe(volumes, volumes.offered)
        assert controller.select_next(attributor) is None

    def test_tie_break_is_deterministic_and_lowest_index(self):
        # Two identical configurations: equal scores must resolve to the
        # lower schedule index, regardless of hash order.
        duplicated = [HISTORY[0], dict(HISTORY[0]), HISTORY[1]]
        strategy = make_strategy("greedy").bind(duplicated)
        state = ClusterState(UNIVERSE)
        volume = {asn: 1.0 for asn in UNIVERSE}
        assert strategy.propose(state, volume) == 0

    def test_noise_scale_reduction_loses_to_real_split(self):
        # Regression for the `* 1e-9` fallback bug: a float-noise
        # weighted reduction must not outrank a configuration with a
        # genuine split gain.  Cluster {0..7} carries all volume and
        # nothing can split it; config A "reduces" its cost only through
        # summation noise, config B genuinely splits the cold cluster.
        state = ClusterState(UNIVERSE)
        state.refine_with_catchments(HISTORY[0])
        volume = {asn: (1e8 + 1e-7 * asn if asn < 8 else 0.0)
                  for asn in UNIVERSE}
        noise_config = {"l1": frozenset(range(8))}   # no split at all
        split_config = {"l1": frozenset(range(8, 12)),
                        "l2": frozenset(range(12, 16))}
        strategy = make_strategy("greedy").bind([noise_config, split_config])
        assert strategy.propose(state, volume) == 1


class TestControllerStrategyFeatures:
    def test_policy_builds_named_strategy(self):
        controller = AdaptiveController(
            [object()] * len(HISTORY),
            HISTORY,
            policy=ControllerPolicy(strategy="random", strategy_seed=5),
        )
        assert controller.strategy.name == "random"
        assert controller.strategy.seed == 5

    def test_unknown_policy_strategy_rejected(self):
        with pytest.raises(StrategyError):
            AdaptiveController(
                [object()] * len(HISTORY),
                HISTORY,
                policy=ControllerPolicy(strategy="nope"),
            )

    def test_serialization_roundtrip_carries_strategy_state(self):
        controller = AdaptiveController([object()] * len(HISTORY), HISTORY)
        state = ClusterState(UNIVERSE)
        controller.strategy.observe(1, state)
        payload = controller.as_serializable()
        assert payload["strategy_state"] == {}
        clone = AdaptiveController([object()] * len(HISTORY), HISTORY)
        clone.restore(payload)
        assert clone.remaining == controller.remaining

    def test_restore_tolerates_pre_strategy_payload(self):
        controller = AdaptiveController([object()] * len(HISTORY), HISTORY)
        controller.restore(
            {
                "remaining": [2, 3],
                "configs_consumed": 2,
                "dwell_minutes": 165.0,
                "remeasurements": 0,
            }
        )
        assert controller.remaining == [2, 3]


class TestTrackerStrategyPath:
    def test_default_run_reports_no_strategy(self):
        testbed = build_testbed(seed=1)
        tracker = SpoofTracker.from_testbed(testbed)
        try:
            report = tracker.run(max_configs=8)
        finally:
            tracker.engine.close()
        assert report.strategy is None

    def test_schedule_strategy_is_the_default_path(self):
        testbed = build_testbed(seed=1)
        tracker = SpoofTracker.from_testbed(testbed)
        try:
            base = tracker.run(max_configs=8)
        finally:
            tracker.engine.close()
        tracker2 = SpoofTracker.from_testbed(testbed)
        try:
            via_schedule = tracker2.run(max_configs=8, strategy="schedule")
        finally:
            tracker2.engine.close()
        assert via_schedule.strategy is None
        assert [s.config_label for s in via_schedule.steps] == [
            s.config_label for s in base.steps
        ]
        assert [s.mean_cluster_size for s in via_schedule.steps] == [
            s.mean_cluster_size for s in base.steps
        ]

    def test_greedy_planned_run_matches_scheduler_order(self):
        testbed = build_testbed(seed=2)
        tracker = SpoofTracker.from_testbed(testbed)
        try:
            report = tracker.run(max_configs=10, strategy="greedy")
            schedule = tracker.schedule[:10]
            engine = tracker.engine
            universe, history = measured_catchment_history(engine, schedule)
        finally:
            tracker.engine.close()
        order, _ = GreedyScheduler(universe, history).run()
        expected_labels = [
            schedule[i].label or schedule[i].describe() for i in order
        ]
        assert [s.config_label for s in report.steps] == expected_labels
        assert report.strategy == "greedy"
