"""Tests for catchment staleness / route drift (§V-C trade-off)."""

import pytest

from repro.bgp.announcement import anycast_all
from repro.bgp.simulator import RoutingSimulator
from repro.core.configgen import ScheduleParams, generate_schedule
from repro.core.staleness import StalenessExperiment, churned_policy


@pytest.fixture(scope="module")
def experiment(request):
    small_testbed = request.getfixturevalue("small_testbed")
    schedule = generate_schedule(
        small_testbed.origin,
        small_testbed.graph,
        ScheduleParams(include_poisoning=False),
    )[:20]
    return small_testbed, StalenessExperiment(
        small_testbed.graph,
        small_testbed.origin,
        small_testbed.policy,
        schedule,
    )


class TestChurnedPolicy:
    def test_zero_drift_is_identity(self, small_testbed):
        assert churned_policy(small_testbed.policy, 0.0) is small_testbed.policy

    def test_drift_changes_some_salts(self, small_testbed):
        drifted = churned_policy(small_testbed.policy, 0.5, churn_seed=2)
        base_salt = small_testbed.policy.tiebreak_salt
        salts = {drifted.salt_for(asn) for asn in small_testbed.graph.ases}
        assert base_salt in salts  # undrifted ASes keep theirs
        assert len(salts) == 2     # drifted ASes share the shifted salt

    def test_full_drift_shifts_many(self, small_testbed):
        drifted = churned_policy(small_testbed.policy, 1.0)
        base_salt = small_testbed.policy.tiebreak_salt
        shifted = sum(
            1
            for asn in small_testbed.graph.ases
            if drifted.salt_for(asn) != base_salt
        )
        assert shifted == len(small_testbed.graph)

    def test_preserves_policy_structure(self, small_testbed):
        """Drift only re-rolls tie-breaks; LocalPref tables and loop
        prevention carry over unchanged."""
        drifted = churned_policy(small_testbed.policy, 0.7)
        for asn in sorted(small_testbed.graph.ases)[:50]:
            assert drifted.follows_gao_rexford(asn) == (
                small_testbed.policy.follows_gao_rexford(asn)
            )
            assert drifted.loop_prevention_enabled(asn) == (
                small_testbed.policy.loop_prevention_enabled(asn)
            )

    def test_rejects_bad_drift(self, small_testbed):
        with pytest.raises(ValueError):
            churned_policy(small_testbed.policy, 1.5)

    def test_drift_actually_moves_routes(self, small_testbed):
        config = anycast_all(small_testbed.origin.link_ids)
        baseline = small_testbed.simulator.simulate(config)
        drifted_policy_model = churned_policy(small_testbed.policy, 1.0)
        drifted = RoutingSimulator(
            small_testbed.graph, small_testbed.origin, drifted_policy_model
        ).simulate(config)
        moved = sum(
            1
            for asn in baseline.covered_ases
            if baseline.catchment_of(asn) != drifted.catchment_of(asn)
        )
        assert moved > 0
        assert drifted.covered_ases == baseline.covered_ases


class TestStalenessExperiment:
    def test_zero_drift_perfect(self, experiment):
        _, exp = experiment
        point = exp.evaluate(0.0)
        assert point.misplaced_fraction == 0.0
        assert point.cluster_agreement == 1.0

    def test_error_grows_with_drift(self, experiment):
        _, exp = experiment
        low = exp.evaluate(0.1)
        high = exp.evaluate(1.0)
        assert low.misplaced_fraction <= high.misplaced_fraction
        assert high.misplaced_fraction > 0.0

    def test_sweep_shape(self, experiment):
        _, exp = experiment
        points = exp.sweep((0.0, 0.5, 1.0))
        assert [point.drift for point in points] == [0.0, 0.5, 1.0]
        for point in points:
            assert 0.0 <= point.misplaced_fraction <= 1.0
            assert 0.0 <= point.cluster_agreement <= 1.0

    def test_rejects_empty_schedule(self, small_testbed):
        with pytest.raises(ValueError):
            StalenessExperiment(
                small_testbed.graph,
                small_testbed.origin,
                small_testbed.policy,
                [],
            )
