"""Tests for the event-driven BGP convergence engine."""

import pytest

from repro.bgp.announcement import AnnouncementConfig, anycast_all
from repro.bgp.convergence import ConvergenceEngine, ConvergenceParams
from repro.bgp.policy import PolicyModel
from repro.bgp.simulator import RoutingSimulator
from repro.errors import ConvergenceError
from tests.conftest import A, B, C, ORIGIN, P1, T1, build_mini_internet


def mini_engine(**params):
    mini = build_mini_internet()
    policy = PolicyModel(
        mini.graph, policy_noise=0.0, loop_prevention_disabled_fraction=0.0
    )
    engine = ConvergenceEngine(
        mini.graph, mini.origin, policy, ConvergenceParams(**params)
    )
    simulator = RoutingSimulator(mini.graph, mini.origin, policy)
    return engine, simulator


BOTH = anycast_all(["l1", "l2"])


class TestFixpointAgreement:
    """The event-driven engine must land exactly on the fixpoint."""

    def test_anycast_agrees(self):
        engine, simulator = mini_engine()
        assert engine.run(BOTH).agrees_with(simulator.simulate(BOTH))

    def test_withdrawal_agrees(self):
        config = AnnouncementConfig(announced=frozenset(["l2"]))
        engine, simulator = mini_engine()
        assert engine.run(config).agrees_with(simulator.simulate(config))

    def test_prepending_agrees(self):
        config = AnnouncementConfig(
            announced=frozenset(["l1", "l2"]), prepended=frozenset(["l1"])
        )
        engine, simulator = mini_engine()
        assert engine.run(config).agrees_with(simulator.simulate(config))

    def test_poisoning_agrees(self):
        config = AnnouncementConfig(
            announced=frozenset(["l1", "l2"]), poisoned={"l1": frozenset([T1])}
        )
        engine, simulator = mini_engine()
        assert engine.run(config).agrees_with(simulator.simulate(config))

    def test_communities_agree(self):
        config = AnnouncementConfig(
            announced=frozenset(["l1", "l2"]), no_export={"l1": frozenset([T1])}
        )
        engine, simulator = mini_engine()
        assert engine.run(config).agrees_with(simulator.simulate(config))

    def test_agreement_on_generated_topology(self, small_testbed):
        engine = ConvergenceEngine(
            small_testbed.graph, small_testbed.origin, small_testbed.policy
        )
        for announced in (
            small_testbed.origin.link_ids,
            small_testbed.origin.link_ids[1:],
        ):
            config = anycast_all(announced)
            result = engine.run(config)
            assert result.agrees_with(small_testbed.simulator.simulate(config))


class TestDynamics:
    def test_convergence_time_positive_and_bounded(self):
        engine, _ = mini_engine()
        result = engine.run(BOTH)
        assert 0.0 < result.convergence_time < 600.0

    def test_mrai_slows_convergence(self):
        fast_engine, simulator = mini_engine(mrai_seconds=0.0)
        slow_engine, _ = mini_engine(mrai_seconds=30.0)
        fast = fast_engine.run(BOTH)
        slow = slow_engine.run(BOTH)
        assert fast.convergence_time <= slow.convergence_time
        # Timing never changes the destination, only the journey.
        fixpoint = simulator.simulate(BOTH)
        assert fast.agrees_with(fixpoint)
        assert slow.agrees_with(fixpoint)

    def test_messages_counted(self):
        engine, _ = mini_engine()
        result = engine.run(BOTH)
        assert result.messages_sent >= len(result.routes)
        assert result.events_processed == result.messages_sent

    def test_last_change_times_recorded(self):
        engine, _ = mini_engine()
        result = engine.run(BOTH)
        assert set(result.last_change_by_as) >= set(result.routes)
        assert max(result.last_change_by_as.values()) == pytest.approx(
            result.convergence_time
        )

    def test_catchments_accessor(self):
        engine, simulator = mini_engine()
        result = engine.run(BOTH)
        assert result.catchments() == dict(simulator.simulate(BOTH).catchments)

    def test_far_ases_converge_later(self):
        engine, _ = mini_engine()
        result = engine.run(BOTH)
        # C (3 AS-hops out) cannot settle before P1 (direct provider).
        assert result.last_change_by_as[C] >= result.last_change_by_as[P1]

    def test_link_delay_deterministic_and_in_range(self):
        engine, _ = mini_engine(
            min_link_delay_seconds=0.1, max_link_delay_seconds=0.2
        )
        delay = engine.link_delay(P1, T1)
        assert delay == engine.link_delay(T1, P1)
        assert 0.1 <= delay <= 0.2


class TestValidation:
    def test_bad_params_rejected(self):
        with pytest.raises(ConvergenceError):
            ConvergenceParams(mrai_seconds=-1)
        with pytest.raises(ConvergenceError):
            ConvergenceParams(
                min_link_delay_seconds=0.5, max_link_delay_seconds=0.1
            )
        with pytest.raises(ConvergenceError):
            ConvergenceParams(processing_seconds=-0.1)

    def test_event_bound_enforced(self):
        mini = build_mini_internet()
        policy = PolicyModel(mini.graph, policy_noise=0.0)
        engine = ConvergenceEngine(mini.graph, mini.origin, policy, max_events=3)
        with pytest.raises(ConvergenceError, match="events"):
            engine.run(BOTH)
