"""Tests for the policy model: LocalPref, deviants, import filters."""

import pytest

from repro.bgp.policy import PolicyModel
from repro.topology.relationships import Relationship
from tests.conftest import ORIGIN, P1, P2, T1, T2, build_mini_internet


@pytest.fixture()
def graph():
    return build_mini_internet().graph


class TestLocalPref:
    def test_clean_model_is_gao_rexford(self, graph):
        policy = PolicyModel(graph, policy_noise=0.0)
        for asn in graph.ases:
            assert policy.follows_gao_rexford(asn)
            assert policy.local_pref(asn, Relationship.CUSTOMER) == 300
            assert policy.local_pref(asn, Relationship.PEER) == 200
            assert policy.local_pref(asn, Relationship.PROVIDER) == 100

    def test_full_noise_makes_everyone_deviant(self, graph):
        policy = PolicyModel(graph, policy_noise=1.0)
        assert not any(policy.follows_gao_rexford(asn) for asn in graph.ases)

    def test_noise_fraction_roughly_respected(self):
        from repro.topology.generator import TopologyParams, generate_topology

        topo = generate_topology(TopologyParams(num_stub=400, seed=2))
        policy = PolicyModel(topo.graph, seed=3, policy_noise=0.2)
        deviants = sum(
            1 for asn in topo.graph.ases if not policy.follows_gao_rexford(asn)
        )
        fraction = deviants / len(topo.graph)
        assert 0.1 < fraction < 0.3

    def test_deterministic_per_seed(self, graph):
        a = PolicyModel(graph, seed=7, policy_noise=0.5)
        b = PolicyModel(graph, seed=7, policy_noise=0.5)
        for asn in graph.ases:
            assert a.follows_gao_rexford(asn) == b.follows_gao_rexford(asn)

    def test_rejects_bad_fractions(self, graph):
        with pytest.raises(ValueError):
            PolicyModel(graph, policy_noise=1.5)
        with pytest.raises(ValueError):
            PolicyModel(graph, loop_prevention_disabled_fraction=-0.1)


class TestImportFilters:
    def test_loop_in_transit_always_rejected(self, graph):
        policy = PolicyModel(graph, loop_prevention_disabled_fraction=1.0)
        # Even with loop prevention "disabled", a genuine forwarding loop
        # (holder in the transited portion) is rejected.
        assert not policy.accepts(
            T1, (T1, P1), (ORIGIN,), Relationship.CUSTOMER
        )

    def test_poison_stuffing_rejected_by_default(self, graph):
        policy = PolicyModel(graph, loop_prevention_disabled_fraction=0.0)
        assert not policy.accepts(
            T1, (P1,), (ORIGIN, T1, ORIGIN), Relationship.CUSTOMER
        )

    def test_poison_stuffing_accepted_when_disabled(self, graph):
        policy = PolicyModel(graph, loop_prevention_disabled_fraction=1.0)
        assert policy.accepts(
            T1, (P1,), (ORIGIN, T1, ORIGIN), Relationship.CUSTOMER
        )

    def test_clean_path_accepted(self, graph):
        policy = PolicyModel(graph)
        assert policy.accepts(T1, (P1,), (ORIGIN,), Relationship.CUSTOMER)

    def test_tier1_filters_customer_route_with_other_tier1(self, graph):
        policy = PolicyModel(graph, tier1_leak_filtering=True)
        assert T1 in policy.tier1_ases and T2 in policy.tier1_ases
        # T1 hears a customer route whose path contains T2: looks like a
        # route leak (or a poisoned path) — filtered.
        assert not policy.accepts(
            T1, (P1,), (ORIGIN, T2, ORIGIN), Relationship.CUSTOMER
        )

    def test_tier1_filter_spares_peer_routes(self, graph):
        policy = PolicyModel(graph, tier1_leak_filtering=True)
        assert policy.accepts(T1, (T2, P2), (ORIGIN,), Relationship.PEER)

    def test_tier1_filter_can_be_disabled(self, graph):
        policy = PolicyModel(graph, tier1_leak_filtering=False)
        assert policy.accepts(
            T1, (P1,), (ORIGIN, T2, ORIGIN), Relationship.CUSTOMER
        )

    def test_non_tier1_not_subject_to_leak_filter(self, graph):
        policy = PolicyModel(graph, tier1_leak_filtering=True)
        assert policy.accepts(
            P1, (), (ORIGIN, T2, ORIGIN), Relationship.CUSTOMER
        )


class TestExportFilter:
    def test_exports_delegate_to_valley_free_rule(self, graph):
        policy = PolicyModel(graph)
        assert policy.exports(Relationship.CUSTOMER, Relationship.PROVIDER)
        assert not policy.exports(Relationship.PROVIDER, Relationship.PEER)
