"""Timeline forensics tests: merge, order, filter, digest, serve (ISSUE 10).

The timeline is the post-mortem view: trace spans, bus events, flight
bundles, and checkpoint documents merged into one deterministic sequence
aligned on simulated minutes.  Its digest is a replay invariant, so most
tests here assert *exact* ordering and byte-stable digests.
"""

import json
import time
import urllib.request

import pytest

from repro.cli import main
from repro.faults.resilience import content_checksum
from repro.live.checkpoint import shard_checkpoint_path
from repro.obs import (
    EventBus,
    FlightRecorder,
    Logbook,
    Observability,
    ObsServer,
    Timeline,
    TimelineEntry,
    Tracer,
    build_timeline,
    timeline_from_obs,
)
from repro.obs.timeline import (
    entries_from_bus,
    entries_from_checkpoint_dir,
    entries_from_flight_payload,
    entry_from_bus_event,
)

from tests.test_obs_server import _get


def write_checkpoint(directory, tenant, prefix, clock=60.0, version=3,
                     generation=0, damaged=False):
    """A checksummed shard-checkpoint document like the live layer writes."""
    path = shard_checkpoint_path(str(directory), tenant, prefix)
    if generation:
        path = f"{path}.{generation}"
    if damaged:
        text = "{ not json"
    else:
        payload = {"clock": clock, "version": version}
        text = json.dumps(
            {
                "checksum": content_checksum(
                    json.dumps(payload, indent=2, sort_keys=True)
                ),
                "payload": payload,
            }
        )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


def make_flight_dir(tmp_path, events=(), context=None, name="shard"):
    """A directory holding one real flight bundle over ``events``."""
    bus = EventBus()
    recorder = FlightRecorder(
        name=name, directory=str(tmp_path), context=dict(context or {})
    ).attach(bus=bus)
    for kind, payload in events:
        bus.publish(kind, **payload)
    recorder.dump("kill")
    recorder.detach()
    return str(tmp_path)


class TestOrdering:
    def test_unaligned_rows_sort_before_minute_zero(self):
        timeline = Timeline(
            [
                TimelineEntry(minute=0.0, seq=0, source="bus", kind="window"),
                TimelineEntry(minute=None, seq=0, source="trace", kind="span"),
            ]
        )
        assert [entry.source for entry in timeline] == ["trace", "bus"]

    def test_unsequenced_rows_land_after_sequenced_in_their_minute(self):
        timeline = Timeline(
            [
                TimelineEntry(
                    minute=120.0, seq=None, source="flight", kind="dump"
                ),
                TimelineEntry(minute=120.0, seq=7, source="bus", kind="fleet"),
                TimelineEntry(minute=60.0, seq=9, source="bus", kind="window"),
            ]
        )
        assert [entry.kind for entry in timeline] == [
            "window", "fleet", "dump"
        ]

    def test_construction_order_is_irrelevant(self):
        entries = [
            TimelineEntry(minute=float(minute), seq=minute, source="bus",
                          kind="window")
            for minute in range(5)
        ]
        assert (
            Timeline(entries).digest()
            == Timeline(reversed(entries)).digest()
        )


class TestDigest:
    def test_digest_is_stable_and_content_sensitive(self):
        entry = TimelineEntry(
            minute=1.0, seq=0, source="bus", kind="window",
            detail={"window_index": 0},
        )
        assert Timeline([entry]).digest() == Timeline([entry]).digest()
        changed = TimelineEntry(
            minute=1.0, seq=0, source="bus", kind="window",
            detail={"window_index": 1},
        )
        assert Timeline([entry]).digest() != Timeline([changed]).digest()

    def test_as_dict_carries_count_and_digest(self):
        timeline = Timeline(
            [TimelineEntry(minute=None, seq=None, source="flight",
                           kind="dump")]
        )
        payload = timeline.as_dict()
        assert payload["count"] == 1
        assert payload["digest"] == timeline.digest()
        assert payload["entries"][0]["source"] == "flight"

    def test_render_shows_totals_and_digest_prefix(self):
        timeline = Timeline(
            [
                TimelineEntry(minute=float(minute), seq=minute, source="bus",
                              kind="window", label=f"window {minute}")
                for minute in range(4)
            ]
        )
        rendered = timeline.render(limit=2)
        assert "timeline: 4 entries (showing last 2)" in rendered
        assert timeline.digest()[:16] in rendered
        assert "window 3" in rendered and "window 0" not in rendered


class TestFiltering:
    ENTRIES = [
        TimelineEntry(minute=None, seq=0, source="trace", kind="span"),
        TimelineEntry(minute=10.0, seq=1, source="bus", kind="window",
                      tenant="tenant-00", shard="tenant-00/10.0.0.0/24"),
        TimelineEntry(minute=50.0, seq=2, source="bus", kind="window",
                      tenant="tenant-01", shard="tenant-01/198.18.2.8/29"),
    ]

    def test_tenant_filter_is_exact(self):
        kept = Timeline(self.ENTRIES).filtered(tenant="tenant-00")
        assert [entry.tenant for entry in kept] == ["tenant-00"]

    def test_shard_filter_matches_substring(self):
        kept = Timeline(self.ENTRIES).filtered(shard="198.18.2.8")
        assert [entry.tenant for entry in kept] == ["tenant-01"]

    def test_since_drops_unaligned_prologue(self):
        kept = Timeline(self.ENTRIES).filtered(since=0.0)
        assert [entry.minute for entry in kept] == [10.0, 50.0]
        assert len(Timeline(self.ENTRIES).filtered(since=20.0)) == 1


class TestBusEntries:
    def test_entry_strips_measured_and_lifts_identity(self):
        entry = entry_from_bus_event(
            {
                "seq": 4, "kind": "window", "tenant": "tenant-00",
                "attack": "10.0.0.0/24", "clock_minutes": 90.0,
                "window_index": 3, "queue_depth": 1,
                "duration_seconds": 0.5,
            }
        )
        assert entry.minute == 90.0
        assert entry.seq == 4
        assert entry.kind == "window"
        assert entry.tenant == "tenant-00"
        assert entry.shard == "10.0.0.0/24"
        assert entry.label == "window 3 (queue 1)"
        assert "duration_seconds" not in entry.detail
        assert "seq" not in entry.detail and "kind" not in entry.detail

    def test_untagged_event_is_unaligned(self):
        entry = entry_from_bus_event({"seq": 0, "kind": "phase", "name": "x"})
        assert entry.minute is None
        assert entry.label == "x"


class TestFlightEntries:
    def payload(self):
        return {
            "version": 1,
            "flight": "tenant-00/10.0.0.0-24",
            "reason": "kill",
            "ordinal": 2,
            "context": {
                "tenant": "tenant-00",
                "shard": "tenant-00/10.0.0.0/24",
                "clock_minutes": 120.0,
            },
            "entries_seen": 3,
            "entries": [
                {"n": 0, "kind": "bus",
                 "event": {"seq": 9, "kind": "window", "window_index": 1}},
                {"n": 1, "kind": "log", "level": "warning",
                 "msg": "shard killed", "event": "shard_kill",
                 "span": "", "fields": {}},
                {"n": 2, "kind": "fault", "fault": "worker_crash", "count": 1},
            ],
        }

    def test_dump_summary_plus_ring_rows(self):
        entries = entries_from_flight_payload(self.payload())
        dump = entries[0]
        assert dump.kind == "dump" and dump.source == "flight"
        assert dump.minute == 120.0 and dump.seq is None
        assert dump.label == "kill #2 (3 entries)"
        assert dump.tenant == "tenant-00"
        # Ring-captured bus events re-enter as bus rows with their
        # original sequence numbers; other ring kinds stay flight-source.
        bus_row = entries[1]
        assert bus_row.source == "bus" and bus_row.seq == 9
        log_row, fault_row = entries[2], entries[3]
        assert log_row.label == "[warning] shard killed"
        assert fault_row.label == "worker_crash x1"
        assert {log_row.shard, fault_row.shard} == {"tenant-00/10.0.0.0/24"}

    def test_merge_dedupes_flight_bus_rows_against_live_history(self):
        live = [{"seq": 9, "kind": "window", "window_index": 1}]
        timeline = Timeline(
            entries_from_bus(live)
            + entries_from_flight_payload(self.payload())
        )
        # Both copies survive a bare Timeline; the dedup lives in the
        # merge builders.
        assert sum(1 for e in timeline if e.source == "bus") == 2

        from repro.obs.timeline import _merge

        merged = _merge(
            [entries_from_bus(live), entries_from_flight_payload(self.payload())]
        )
        assert sum(1 for e in merged if e.source == "bus" and e.seq == 9) == 1

    def test_damaged_bundle_becomes_damaged_row(self, tmp_path):
        with open(tmp_path / "flight-run-crash-000.json", "w") as handle:
            handle.write("{ torn")
        timeline = build_timeline(flight_dir=str(tmp_path))
        (entry,) = timeline.entries
        assert entry.source == "flight" and entry.kind == "damaged"
        assert "flight-run-crash-000.json" in entry.label


class TestCheckpointEntries:
    def test_checkpoint_rows_carry_clock_and_generation(self, tmp_path):
        write_checkpoint(tmp_path, "tenant-00", "10.0.0.0/24", clock=60.0)
        write_checkpoint(
            tmp_path, "tenant-00", "10.0.0.0/24", clock=30.0, generation=1
        )
        entries = entries_from_checkpoint_dir(str(tmp_path))
        assert len(entries) == 2
        by_generation = {e.detail["generation"]: e for e in entries}
        assert by_generation[0].minute == 60.0
        assert by_generation[1].minute == 30.0
        assert by_generation[0].tenant == "tenant-00"
        assert by_generation[0].shard == "tenant-00/10.0.0.0-24"
        assert "schema v3" in by_generation[0].label

    def test_damaged_checkpoint_becomes_damaged_row(self, tmp_path):
        write_checkpoint(tmp_path, "tenant-00", "10.0.0.0/24", damaged=True)
        (entry,) = entries_from_checkpoint_dir(str(tmp_path))
        assert entry.kind == "damaged"
        assert entry.label == "generation 0: unreadable"

    def test_foreign_files_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hello")
        assert entries_from_checkpoint_dir(str(tmp_path)) == []


class TestBuildTimeline:
    def test_merges_every_source(self, tmp_path):
        tracer = Tracer("track")
        with tracer.span("simulate"):
            pass
        trace_path = str(tmp_path / "trace.jsonl")
        tracer.write_jsonl(trace_path)
        flight_dir = make_flight_dir(
            tmp_path / "flight",
            events=[("window", {"clock_minutes": 30.0, "window_index": 0})],
            context={"tenant": "tenant-00", "clock_minutes": 45.0},
        )
        ckpt_dir = tmp_path / "ckpt"
        ckpt_dir.mkdir()
        write_checkpoint(ckpt_dir, "tenant-00", "10.0.0.0/24", clock=60.0)
        timeline = build_timeline(
            trace_path=trace_path,
            flight_dir=flight_dir,
            checkpoint_dir=str(ckpt_dir),
        )
        sources = [entry.source for entry in timeline]
        assert sources.count("trace") == 2  # simulate + root span
        assert "bus" in sources  # via the flight bundle's ring
        assert "flight" in sources and "checkpoint" in sources
        # Minute-aligned rows come after the unaligned trace prologue.
        minutes = [entry.minute for entry in timeline]
        assert minutes == sorted(
            minutes, key=lambda m: -1.0 if m is None else m
        )

    def test_missing_sources_contribute_nothing(self, tmp_path):
        timeline = build_timeline(
            trace_path=str(tmp_path / "absent.jsonl"),
            flight_dir=str(tmp_path / "absent"),
            checkpoint_dir="",
        )
        assert len(timeline) == 0

    def test_offline_rebuild_matches_live_view(self, tmp_path):
        """build_timeline over artifacts == timeline_from_obs digest."""
        obs = Observability.for_run("track")
        with obs.tracer.span("simulate"):
            pass
        obs.tracer.finish()
        obs.bus.publish("window", window_index=0, duration_seconds=0.5)
        live = timeline_from_obs(obs)
        trace_path = str(tmp_path / "trace.jsonl")
        obs.tracer.write_jsonl(trace_path)
        offline = build_timeline(
            trace_path=trace_path, bus_events=obs.bus.history()
        )
        assert offline.digest() == live.digest()


class TestTimelineCli:
    def test_no_sources_is_usage_error(self, capsys):
        assert main(["timeline"]) == 2
        assert "at least one source" in capsys.readouterr().err

    def test_renders_flight_dir(self, tmp_path, capsys):
        flight_dir = make_flight_dir(
            tmp_path,
            events=[("window", {"clock_minutes": 30.0, "window_index": 0})],
            context={"tenant": "tenant-00", "clock_minutes": 45.0},
        )
        assert main(["timeline", "--flight-dir", flight_dir]) == 0
        out = capsys.readouterr().out
        expected = build_timeline(flight_dir=flight_dir)
        assert f"timeline: {len(expected)} entries" in out
        assert expected.digest()[:16] in out

    def test_json_output_matches_library(self, tmp_path, capsys):
        flight_dir = make_flight_dir(
            tmp_path, events=[("window", {"window_index": 0})]
        )
        assert main(["timeline", "--flight-dir", flight_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == build_timeline(flight_dir=flight_dir).as_dict()

    def test_filters_apply(self, tmp_path, capsys):
        flight_dir = make_flight_dir(
            tmp_path,
            events=[
                ("window", {"tenant": "tenant-00", "clock_minutes": 10.0}),
                ("window", {"tenant": "tenant-01", "clock_minutes": 50.0}),
            ],
            context={"tenant": "tenant-00"},
        )
        assert main(
            ["timeline", "--flight-dir", flight_dir,
             "--tenant", "tenant-01", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {e["tenant"] for e in payload["entries"]} == {"tenant-01"}
        assert main(
            ["timeline", "--flight-dir", flight_dir,
             "--since", "40", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(e["minute"] >= 40 for e in payload["entries"])


class TestTimelineEndpoint:
    def test_serves_merged_view_with_filters(self, tmp_path):
        obs = Observability.for_run("serve")
        obs.bus.publish(
            "window", tenant="tenant-00", clock_minutes=10.0, window_index=0
        )
        obs.bus.publish(
            "window", tenant="tenant-01", clock_minutes=50.0, window_index=1
        )
        flight_dir = make_flight_dir(
            tmp_path, context={"tenant": "tenant-00", "clock_minutes": 20.0}
        )
        server = ObsServer(obs=obs, flight_dir=flight_dir, port=0).start()
        try:
            status, body = _get(server.url + "/timeline")
            assert status == 200
            payload = json.loads(body)
            assert payload["count"] == len(payload["entries"]) > 2
            assert {e["source"] for e in payload["entries"]} >= {
                "bus", "flight"
            }
            status, body = _get(server.url + "/timeline?tenant=tenant-01")
            assert status == 200
            filtered = json.loads(body)
            assert {e["tenant"] for e in filtered["entries"]} == {"tenant-01"}
            status, body = _get(server.url + "/timeline?since=40")
            assert all(
                e["minute"] >= 40 for e in json.loads(body)["entries"]
            )
        finally:
            server.stop()
            obs.bus.close()

    def test_404_when_nothing_armed(self):
        server = ObsServer().start()
        try:
            status, body = _get(server.url + "/timeline")
        finally:
            server.stop()
        assert status == 404
        assert "no timeline sources" in json.loads(body)["error"]

    def test_timeline_route_listed(self):
        assert "/timeline" in ObsServer.ROUTES

    def test_explicit_source_wins(self):
        canned = Timeline(
            [TimelineEntry(minute=None, seq=None, source="flight",
                           kind="dump", label="canned")]
        )
        server = ObsServer(timeline_source=lambda: canned).start()
        try:
            status, body = _get(server.url + "/timeline")
        finally:
            server.stop()
        assert status == 200
        assert json.loads(body)["entries"][0]["label"] == "canned"


class TestSseKeepAlive:
    def test_idle_bus_emits_keepalive_frames(self):
        """A silent bus must still produce bytes (ISSUE 10 satellite):
        comment frames let clients tell a quiet run from a dead one."""
        bus = EventBus()
        server = ObsServer(bus=bus, keepalive_seconds=0.3).start()
        seen = b""
        try:
            response = urllib.request.urlopen(
                server.url + "/events?replay=0", timeout=10
            )
            deadline = time.monotonic() + 8.0
            while b": keep-alive" not in seen:
                if time.monotonic() > deadline:  # pragma: no cover
                    break
                seen += response.readline()
            response.close()
        finally:
            server.stop()
            bus.close()
        assert b": keep-alive" in seen

    def test_events_still_delivered_between_keepalives(self):
        bus = EventBus()
        server = ObsServer(bus=bus, keepalive_seconds=0.2).start()
        frames = b""
        try:
            response = urllib.request.urlopen(
                server.url + "/events?replay=0", timeout=10
            )
            deadline = time.monotonic() + 8.0
            # The first keep-alive frame proves the subscription is live;
            # only then can a replay=0 stream see a fresh publish.
            while b": keep-alive" not in frames:
                if time.monotonic() > deadline:  # pragma: no cover
                    break
                frames += response.readline()
            bus.publish("window", window_index=7)
            while b"window_index" not in frames:
                if time.monotonic() > deadline:  # pragma: no cover
                    break
                frames += response.readline()
            response.close()
        finally:
            server.stop()
            bus.close()
        assert b'"window_index": 7' in frames
