"""Tests for live-service checkpointing: kill, restore, resume, equivalence."""

import dataclasses
import json
import os
import shutil

import pytest

from repro.errors import CheckpointCorruptionError, LiveServiceError
from repro.live import (
    LiveTracebackService,
    ReplayScenario,
    load_checkpoint,
    save_checkpoint,
)
from repro.live.checkpoint import (
    CHECKPOINT_VERSION,
    _canonical_json,
    backup_path,
    generation_path,
    register_downgrade,
    register_migration,
    rotate_generations,
    shard_checkpoint_path,
    writing_version,
)

FIXTURE_V1 = os.path.join(
    os.path.dirname(__file__), "fixtures", "checkpoint_v1.json"
)


def _small_scenario(path: str, **overrides) -> ReplayScenario:
    """The small deterministic replay the migration tests checkpoint."""
    base = dict(
        seed=5,
        max_configs=3,
        min_configs=1,
        adaptive=False,
        checkpoint_every=5,
        checkpoint_path=path,
    )
    base.update(overrides)
    return ReplayScenario(**base)


@pytest.fixture(scope="module")
def checkpointed(small_testbed, tmp_path_factory):
    """An uninterrupted run that left periodic checkpoints behind.

    The checkpoint file holds the *last* periodic snapshot (window 21 of
    24), so loading it simulates a run killed three windows before the
    end.
    """
    path = str(tmp_path_factory.mktemp("live") / "checkpoint.json")
    scenario = ReplayScenario(
        seed=5,
        max_configs=6,
        adaptive=True,
        checkpoint_every=7,
        checkpoint_path=path,
    )
    service = LiveTracebackService(scenario=scenario, testbed=small_testbed)
    report = service.run()
    yield service, report, path
    service.close()


class TestRoundTrip:
    def test_restored_state_matches_killed_state(self, checkpointed):
        service, _, path = checkpointed
        restored = load_checkpoint(path)
        assert restored.universe == service.universe
        assert restored.scenario == service.scenario
        assert restored.spec == service.spec
        assert [c.key() for c in restored.schedule] == [
            c.key() for c in service.schedule
        ]
        # The snapshot was taken at window 21; the restored run hasn't
        # replayed the last windows yet.
        assert restored.window_index == 21
        assert not restored._finished
        restored.close()

    def test_killed_then_restored_equals_uninterrupted(self, checkpointed):
        _, uninterrupted, path = checkpointed
        restored = load_checkpoint(path)
        resumed = restored.run()
        restored.close()
        assert resumed.windows == uninterrupted.windows
        assert resumed.run_stats == uninterrupted.run_stats
        assert resumed.clusters == uninterrupted.clusters
        before = {
            frozenset(c.members): c.estimated_volume
            for c in uninterrupted.localization.ranked
        }
        after = {
            frozenset(c.members): c.estimated_volume
            for c in resumed.localization.ranked
        }
        assert before.keys() == after.keys()
        for members, volume in before.items():
            assert after[members] == pytest.approx(volume, abs=1e-12)

    def test_finished_run_round_trips_idempotently(
        self, checkpointed, tmp_path
    ):
        service, report, _ = checkpointed
        path = str(tmp_path / "final.json")
        save_checkpoint(service, path)
        restored = load_checkpoint(path)
        assert restored._finished
        again = restored.run()  # idempotent: nothing left to do
        restored.close()
        assert again.windows == report.windows
        assert again.run_stats == report.run_stats

    def test_packet_mode_resume_is_deterministic(
        self, small_testbed, tmp_path
    ):
        path = str(tmp_path / "packets.json")
        scenario = ReplayScenario(
            seed=5,
            max_configs=3,
            min_configs=1,
            adaptive=False,
            packets_per_window=200,
            checkpoint_every=5,
            checkpoint_path=path,
        )
        service = LiveTracebackService(scenario=scenario, testbed=small_testbed)
        full = service.run()
        service.close()
        restored = load_checkpoint(path)
        resumed = restored.run()
        restored.close()
        # Stateless per-window traffic seeding: the resumed run replays
        # the exact packet batches the killed run would have generated.
        assert resumed.windows == full.windows
        assert resumed.run_stats == full.run_stats

    def test_churn_state_survives_restore(self, small_testbed, tmp_path):
        path = str(tmp_path / "churn.json")
        scenario = ReplayScenario(
            seed=5,
            max_configs=3,
            min_configs=1,
            adaptive=False,
            churn_events=((2, 0.5),),
            checkpoint_every=5,
            checkpoint_path=path,
        )
        service = LiveTracebackService(scenario=scenario, testbed=small_testbed)
        full = service.run()
        service.close()
        restored = load_checkpoint(path)
        assert restored.churn_log == service.churn_log
        resumed = restored.run()
        restored.close()
        assert resumed.windows == full.windows
        assert resumed.run_stats == full.run_stats


class TestShardNamespacing:
    """Many shards persisting under one checkpoint directory (fleet mode)."""

    def test_paths_are_keyed_by_tenant_and_prefix(self):
        a = shard_checkpoint_path("/ckpt", "tenant-00", "198.18.0.0/29")
        assert a == shard_checkpoint_path("/ckpt", "tenant-00", "198.18.0.0/29")
        assert a != shard_checkpoint_path("/ckpt", "tenant-00", "198.18.0.8/29")
        assert a != shard_checkpoint_path("/ckpt", "tenant-01", "198.18.0.0/29")
        assert a.startswith("/ckpt/shard-tenant-00__198.18.0.0-29-")
        assert "/" not in a[len("/ckpt/"):]

    def test_colliding_slugs_stay_distinct(self):
        # "a/b" and "a-b" sanitize to the same slug; the raw-key digest
        # keeps the files apart.
        a = shard_checkpoint_path("/ckpt", "t", "a/b")
        b = shard_checkpoint_path("/ckpt", "t", "a-b")
        assert a != b

    def test_empty_key_is_an_error(self):
        with pytest.raises(LiveServiceError):
            shard_checkpoint_path("/ckpt", "", "198.18.0.0/29")
        with pytest.raises(LiveServiceError):
            shard_checkpoint_path("/ckpt", "tenant-00", "")

    @pytest.fixture()
    def two_shards(self, small_testbed, tmp_path):
        """Two shard services checkpointing into one shared directory."""
        directory = str(tmp_path)
        paths = {}
        for seed, prefix in ((5, "198.18.0.0/29"), (6, "198.18.0.8/29")):
            path = shard_checkpoint_path(directory, "tenant-00", prefix)
            scenario = ReplayScenario(
                seed=seed,
                max_configs=3,
                min_configs=1,
                adaptive=False,
                checkpoint_every=5,
                checkpoint_path=path,
            )
            service = LiveTracebackService(
                scenario=scenario, testbed=small_testbed
            )
            service.run()
            service.close()
            paths[prefix] = path
        return paths

    def test_sibling_shards_write_independent_documents(self, two_shards):
        paths = list(two_shards.values())
        assert len(set(paths)) == 2
        for path in paths:
            assert json.load(open(path))  # intact primary
            assert json.load(open(backup_path(path)))  # rotated previous
        # The two shards saw different traffic: distinct state documents.
        bodies = [open(path).read() for path in paths]
        assert bodies[0] != bodies[1]

    def test_corrupting_one_shard_leaves_the_other_intact(self, two_shards):
        victim, bystander = two_shards.values()
        with open(victim, "w") as handle:
            handle.write('{"torn":')  # torn write on the primary
        restored = load_checkpoint(victim)
        assert restored.restored_via_rollback  # recovered from .bak
        restored.close()
        untouched = load_checkpoint(bystander)
        assert not untouched.restored_via_rollback
        untouched.close()

    def test_checkpoint_bytes_are_location_independent(
        self, small_testbed, tmp_path
    ):
        bodies = []
        for directory in ("one", "two"):
            path = shard_checkpoint_path(
                str(tmp_path / directory), "tenant-00", "198.18.0.0/29"
            )
            scenario = ReplayScenario(
                seed=5,
                max_configs=3,
                min_configs=1,
                adaptive=False,
                checkpoint_every=5,
                checkpoint_path=path,
            )
            service = LiveTracebackService(
                scenario=scenario, testbed=small_testbed
            )
            service.run()
            service.close()
            bodies.append(open(path).read())
        assert bodies[0] == bodies[1]

    def test_relocated_checkpoint_rebinds_future_writes(
        self, two_shards, tmp_path
    ):
        import shutil

        source = next(iter(two_shards.values()))
        moved = str(tmp_path / "elsewhere" / "moved.json")
        import os

        os.makedirs(os.path.dirname(moved))
        shutil.copy(source, moved)
        restored = load_checkpoint(moved)
        assert restored.scenario.checkpoint_path == moved
        restored.close()


class TestSchemaVersioning:
    """The migration registry: v1 documents keep loading forever."""

    def test_current_documents_carry_a_written_by_envelope(
        self, small_testbed, tmp_path
    ):
        path = str(tmp_path / "v2.json")
        service = LiveTracebackService(
            scenario=_small_scenario(path), testbed=small_testbed
        )
        service.run()
        service.close()
        payload = json.load(open(path))["payload"]
        assert payload["version"] == CHECKPOINT_VERSION == 2
        assert payload["written_by"]["library"] == "repro"
        assert payload["written_by"]["schema"] == CHECKPOINT_VERSION

    def test_writing_version_emits_v1_and_load_migrates(
        self, small_testbed, tmp_path
    ):
        path = str(tmp_path / "v1.json")
        service = LiveTracebackService(
            scenario=_small_scenario(path), testbed=small_testbed
        )
        with writing_version(1):
            full = service.run()
        service.close()
        payload = json.load(open(path))["payload"]
        assert payload["version"] == 1
        assert "written_by" not in payload
        restored = load_checkpoint(path)
        assert restored.checkpoint_migrated_from == 1
        # The restored service saves *current*-schema documents again.
        save_checkpoint(restored, path)
        assert json.load(open(path))["payload"]["version"] == (
            CHECKPOINT_VERSION
        )
        resumed = restored.run()
        restored.close()
        assert resumed.run_stats == full.run_stats

    def test_golden_v1_fixture_matches_native_v2_run(
        self, small_testbed, tmp_path
    ):
        """The committed v1 fixture must restore — and attribute
        identically to a from-scratch run — on every future build."""
        from repro.fleet.shard import attribution_digest

        path = str(tmp_path / "checkpoint_v1.json")
        shutil.copy(FIXTURE_V1, path)
        restored = load_checkpoint(path)
        assert restored.checkpoint_migrated_from == 1
        resumed = restored.run()
        restored.close()
        native = LiveTracebackService(
            scenario=_small_scenario(str(tmp_path / "native.json")),
            testbed=small_testbed,
        )
        full = native.run()
        native.close()
        assert attribution_digest(resumed) == attribution_digest(full)

    def test_version_mismatched_primary_falls_back_to_generation(
        self, small_testbed, tmp_path
    ):
        """Satellite bugfix: a bad version routes through the same
        fallback walk as corruption instead of raising immediately."""
        path = str(tmp_path / "mixed.json")
        service = LiveTracebackService(
            scenario=_small_scenario(path), testbed=small_testbed
        )
        full = service.run()
        service.close()
        document = json.load(open(path))
        document["payload"]["version"] = 999  # future schema, intact bytes
        from repro.faults.resilience import content_checksum

        document["checksum"] = content_checksum(
            _canonical_json(document["payload"])
        )
        with open(path, "w") as handle:
            handle.write(_canonical_json(document))
        restored = load_checkpoint(path)
        assert restored.restored_via_rollback
        resumed = restored.run()
        restored.close()
        assert resumed.run_stats == full.run_stats

    def test_version_only_failure_is_not_corruption(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(LiveServiceError) as excinfo:
            load_checkpoint(str(path), allow_rollback=False)
        assert not isinstance(excinfo.value, CheckpointCorruptionError)
        assert "newer than this build" in str(excinfo.value)

    def test_registry_validates_direction(self):
        with pytest.raises(LiveServiceError):
            register_migration(2, 1, lambda payload: payload)
        with pytest.raises(LiveServiceError):
            register_downgrade(1, 2, lambda payload: payload)

    def test_writing_version_rejects_unreachable_targets(self):
        with pytest.raises(LiveServiceError):
            with writing_version(-3):
                pass


class TestGenerationRotation:
    """Satellite bugfix: retention-aware rotation instead of one
    immortal ``.bak``."""

    def test_keep_bounds_the_generations(self, small_testbed, tmp_path):
        path = str(tmp_path / "rotated.json")
        service = LiveTracebackService(
            scenario=_small_scenario(path, checkpoint_every=3),
            testbed=small_testbed,
        )
        service.checkpoint_keep = 2
        service.run()  # 12 windows / cadence 3: four rotations
        service.close()
        assert os.path.exists(path)
        assert os.path.exists(generation_path(path, 1))
        assert os.path.exists(generation_path(path, 2))
        assert not os.path.exists(generation_path(path, 3))

    def test_default_keep_retains_exactly_one_generation(
        self, checkpointed
    ):
        _, _, path = checkpointed
        assert os.path.exists(backup_path(path))
        assert not os.path.exists(generation_path(path, 2))

    def test_shrinking_keep_prunes_stale_generations(self, tmp_path):
        path = str(tmp_path / "shrink.json")
        for name in (path, f"{path}.1", f"{path}.2", f"{path}.3"):
            with open(name, "w") as handle:
                handle.write("{}")
        rotate_generations(path, keep=1)
        assert os.path.exists(generation_path(path, 1))
        assert not os.path.exists(generation_path(path, 2))
        assert not os.path.exists(generation_path(path, 3))

    def test_rollback_walks_generations_newest_first(
        self, small_testbed, tmp_path
    ):
        path = str(tmp_path / "walk.json")
        service = LiveTracebackService(
            scenario=_small_scenario(path, checkpoint_every=3),
            testbed=small_testbed,
        )
        service.checkpoint_keep = 3
        full = service.run()
        service.close()
        # Damage the primary AND the newest generation: recovery must
        # keep walking to ``.2``.
        for victim in (path, generation_path(path, 1)):
            with open(victim, "w") as handle:
                handle.write('{"torn":')
        restored = load_checkpoint(path)
        assert restored.restored_via_rollback
        resumed = restored.run()
        restored.close()
        assert resumed.run_stats == full.run_stats

    def test_legacy_bak_still_loads(self, small_testbed, tmp_path):
        path = str(tmp_path / "legacy.json")
        service = LiveTracebackService(
            scenario=_small_scenario(path), testbed=small_testbed
        )
        service.run()
        service.close()
        # Simulate a directory written by the pre-generation release:
        # only a primary and a ``.bak``.
        shutil.copy(path, f"{path}.bak")
        os.remove(generation_path(path, 1))
        with open(path, "w") as handle:
            handle.write("damaged")
        restored = load_checkpoint(path)
        assert restored.restored_via_rollback
        restored.close()

    def test_rotation_prunes_superseded_legacy_bak(
        self, small_testbed, tmp_path
    ):
        path = str(tmp_path / "prune.json")
        service = LiveTracebackService(
            scenario=_small_scenario(path), testbed=small_testbed
        )
        service.run()
        service.close()
        shutil.copy(path, f"{path}.bak")
        rotate_generations(path, keep=1)
        assert not os.path.exists(f"{path}.bak")
        assert os.path.exists(generation_path(path, 1))

    def test_rotation_rejects_zero_retention(self, tmp_path):
        with pytest.raises(LiveServiceError):
            rotate_generations(str(tmp_path / "x.json"), keep=0)

    def test_generation_numbers_start_at_one(self):
        with pytest.raises(LiveServiceError):
            generation_path("x.json", 0)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(LiveServiceError):
            load_checkpoint(str(tmp_path / "absent.json"))

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(LiveServiceError):
            load_checkpoint(str(path))

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        with pytest.raises(LiveServiceError):
            load_checkpoint(str(path))

    def test_spec_less_testbed_cannot_checkpoint(self, small_testbed):
        bare = dataclasses.replace(small_testbed, spec=None)
        service = LiveTracebackService(
            scenario=ReplayScenario(seed=5, max_configs=2, min_configs=1),
            testbed=bare,
        )
        with pytest.raises(LiveServiceError):
            service.as_serializable()
        service.close()
