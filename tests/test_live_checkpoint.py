"""Tests for live-service checkpointing: kill, restore, resume, equivalence."""

import dataclasses
import json

import pytest

from repro.errors import LiveServiceError
from repro.live import (
    LiveTracebackService,
    ReplayScenario,
    load_checkpoint,
    save_checkpoint,
)
from repro.live.checkpoint import backup_path, shard_checkpoint_path


@pytest.fixture(scope="module")
def checkpointed(small_testbed, tmp_path_factory):
    """An uninterrupted run that left periodic checkpoints behind.

    The checkpoint file holds the *last* periodic snapshot (window 21 of
    24), so loading it simulates a run killed three windows before the
    end.
    """
    path = str(tmp_path_factory.mktemp("live") / "checkpoint.json")
    scenario = ReplayScenario(
        seed=5,
        max_configs=6,
        adaptive=True,
        checkpoint_every=7,
        checkpoint_path=path,
    )
    service = LiveTracebackService(scenario=scenario, testbed=small_testbed)
    report = service.run()
    yield service, report, path
    service.close()


class TestRoundTrip:
    def test_restored_state_matches_killed_state(self, checkpointed):
        service, _, path = checkpointed
        restored = load_checkpoint(path)
        assert restored.universe == service.universe
        assert restored.scenario == service.scenario
        assert restored.spec == service.spec
        assert [c.key() for c in restored.schedule] == [
            c.key() for c in service.schedule
        ]
        # The snapshot was taken at window 21; the restored run hasn't
        # replayed the last windows yet.
        assert restored.window_index == 21
        assert not restored._finished
        restored.close()

    def test_killed_then_restored_equals_uninterrupted(self, checkpointed):
        _, uninterrupted, path = checkpointed
        restored = load_checkpoint(path)
        resumed = restored.run()
        restored.close()
        assert resumed.windows == uninterrupted.windows
        assert resumed.run_stats == uninterrupted.run_stats
        assert resumed.clusters == uninterrupted.clusters
        before = {
            frozenset(c.members): c.estimated_volume
            for c in uninterrupted.localization.ranked
        }
        after = {
            frozenset(c.members): c.estimated_volume
            for c in resumed.localization.ranked
        }
        assert before.keys() == after.keys()
        for members, volume in before.items():
            assert after[members] == pytest.approx(volume, abs=1e-12)

    def test_finished_run_round_trips_idempotently(
        self, checkpointed, tmp_path
    ):
        service, report, _ = checkpointed
        path = str(tmp_path / "final.json")
        save_checkpoint(service, path)
        restored = load_checkpoint(path)
        assert restored._finished
        again = restored.run()  # idempotent: nothing left to do
        restored.close()
        assert again.windows == report.windows
        assert again.run_stats == report.run_stats

    def test_packet_mode_resume_is_deterministic(
        self, small_testbed, tmp_path
    ):
        path = str(tmp_path / "packets.json")
        scenario = ReplayScenario(
            seed=5,
            max_configs=3,
            min_configs=1,
            adaptive=False,
            packets_per_window=200,
            checkpoint_every=5,
            checkpoint_path=path,
        )
        service = LiveTracebackService(scenario=scenario, testbed=small_testbed)
        full = service.run()
        service.close()
        restored = load_checkpoint(path)
        resumed = restored.run()
        restored.close()
        # Stateless per-window traffic seeding: the resumed run replays
        # the exact packet batches the killed run would have generated.
        assert resumed.windows == full.windows
        assert resumed.run_stats == full.run_stats

    def test_churn_state_survives_restore(self, small_testbed, tmp_path):
        path = str(tmp_path / "churn.json")
        scenario = ReplayScenario(
            seed=5,
            max_configs=3,
            min_configs=1,
            adaptive=False,
            churn_events=((2, 0.5),),
            checkpoint_every=5,
            checkpoint_path=path,
        )
        service = LiveTracebackService(scenario=scenario, testbed=small_testbed)
        full = service.run()
        service.close()
        restored = load_checkpoint(path)
        assert restored.churn_log == service.churn_log
        resumed = restored.run()
        restored.close()
        assert resumed.windows == full.windows
        assert resumed.run_stats == full.run_stats


class TestShardNamespacing:
    """Many shards persisting under one checkpoint directory (fleet mode)."""

    def test_paths_are_keyed_by_tenant_and_prefix(self):
        a = shard_checkpoint_path("/ckpt", "tenant-00", "198.18.0.0/29")
        assert a == shard_checkpoint_path("/ckpt", "tenant-00", "198.18.0.0/29")
        assert a != shard_checkpoint_path("/ckpt", "tenant-00", "198.18.0.8/29")
        assert a != shard_checkpoint_path("/ckpt", "tenant-01", "198.18.0.0/29")
        assert a.startswith("/ckpt/shard-tenant-00__198.18.0.0-29-")
        assert "/" not in a[len("/ckpt/"):]

    def test_colliding_slugs_stay_distinct(self):
        # "a/b" and "a-b" sanitize to the same slug; the raw-key digest
        # keeps the files apart.
        a = shard_checkpoint_path("/ckpt", "t", "a/b")
        b = shard_checkpoint_path("/ckpt", "t", "a-b")
        assert a != b

    def test_empty_key_is_an_error(self):
        with pytest.raises(LiveServiceError):
            shard_checkpoint_path("/ckpt", "", "198.18.0.0/29")
        with pytest.raises(LiveServiceError):
            shard_checkpoint_path("/ckpt", "tenant-00", "")

    @pytest.fixture()
    def two_shards(self, small_testbed, tmp_path):
        """Two shard services checkpointing into one shared directory."""
        directory = str(tmp_path)
        paths = {}
        for seed, prefix in ((5, "198.18.0.0/29"), (6, "198.18.0.8/29")):
            path = shard_checkpoint_path(directory, "tenant-00", prefix)
            scenario = ReplayScenario(
                seed=seed,
                max_configs=3,
                min_configs=1,
                adaptive=False,
                checkpoint_every=5,
                checkpoint_path=path,
            )
            service = LiveTracebackService(
                scenario=scenario, testbed=small_testbed
            )
            service.run()
            service.close()
            paths[prefix] = path
        return paths

    def test_sibling_shards_write_independent_documents(self, two_shards):
        paths = list(two_shards.values())
        assert len(set(paths)) == 2
        for path in paths:
            assert json.load(open(path))  # intact primary
            assert json.load(open(backup_path(path)))  # rotated previous
        # The two shards saw different traffic: distinct state documents.
        bodies = [open(path).read() for path in paths]
        assert bodies[0] != bodies[1]

    def test_corrupting_one_shard_leaves_the_other_intact(self, two_shards):
        victim, bystander = two_shards.values()
        with open(victim, "w") as handle:
            handle.write('{"torn":')  # torn write on the primary
        restored = load_checkpoint(victim)
        assert restored.restored_via_rollback  # recovered from .bak
        restored.close()
        untouched = load_checkpoint(bystander)
        assert not untouched.restored_via_rollback
        untouched.close()

    def test_checkpoint_bytes_are_location_independent(
        self, small_testbed, tmp_path
    ):
        bodies = []
        for directory in ("one", "two"):
            path = shard_checkpoint_path(
                str(tmp_path / directory), "tenant-00", "198.18.0.0/29"
            )
            scenario = ReplayScenario(
                seed=5,
                max_configs=3,
                min_configs=1,
                adaptive=False,
                checkpoint_every=5,
                checkpoint_path=path,
            )
            service = LiveTracebackService(
                scenario=scenario, testbed=small_testbed
            )
            service.run()
            service.close()
            bodies.append(open(path).read())
        assert bodies[0] == bodies[1]

    def test_relocated_checkpoint_rebinds_future_writes(
        self, two_shards, tmp_path
    ):
        import shutil

        source = next(iter(two_shards.values()))
        moved = str(tmp_path / "elsewhere" / "moved.json")
        import os

        os.makedirs(os.path.dirname(moved))
        shutil.copy(source, moved)
        restored = load_checkpoint(moved)
        assert restored.scenario.checkpoint_path == moved
        restored.close()


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(LiveServiceError):
            load_checkpoint(str(tmp_path / "absent.json"))

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(LiveServiceError):
            load_checkpoint(str(path))

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        with pytest.raises(LiveServiceError):
            load_checkpoint(str(path))

    def test_spec_less_testbed_cannot_checkpoint(self, small_testbed):
        bare = dataclasses.replace(small_testbed, spec=None)
        service = LiveTracebackService(
            scenario=ReplayScenario(seed=5, max_configs=2, min_configs=1),
            testbed=bare,
        )
        with pytest.raises(LiveServiceError):
            service.as_serializable()
        service.close()
