"""Tests for announcement-schedule generation (§III-A, §IV-a)."""

import pytest

from repro.core.configgen import (
    PHASE_LOCATIONS,
    PHASE_POISONING,
    PHASE_PREPENDING,
    ScheduleParams,
    distant_poison_configs,
    expected_location_count,
    expected_prepend_count,
    generate_schedule,
    location_configs,
    poison_configs,
    prepend_configs,
    provider_neighbor_targets,
)
from repro.errors import SchedulingError

SEVEN = [f"l{i}" for i in range(7)]


class TestLocationConfigs:
    def test_paper_count_for_seven_links(self):
        """Paper: Σₓ C(7, 7−x) for x in 0..3 = 64 configurations."""
        configs = location_configs(SEVEN, max_removed=3)
        assert len(configs) == 64
        assert expected_location_count(7, 3) == 64

    def test_first_config_is_anycast_all(self):
        configs = location_configs(SEVEN, max_removed=3)
        assert configs[0].announced == frozenset(SEVEN)

    def test_decreasing_size_order(self):
        configs = location_configs(SEVEN, max_removed=3)
        sizes = [len(config.announced) for config in configs]
        assert sizes == sorted(sizes, reverse=True)
        assert min(sizes) == 4

    def test_all_configs_unique(self):
        configs = location_configs(SEVEN, max_removed=3)
        assert len({config.key() for config in configs}) == len(configs)

    def test_phase_tag(self):
        for config in location_configs(SEVEN, max_removed=1):
            assert config.phase == PHASE_LOCATIONS

    def test_never_removes_all_links(self):
        configs = location_configs(["a", "b"], max_removed=5)
        assert all(config.announced for config in configs)
        assert len(configs) == 3  # {a,b}, {a}, {b}

    def test_rejects_empty_links(self):
        with pytest.raises(SchedulingError):
            location_configs([])

    def test_rejects_duplicates(self):
        with pytest.raises(SchedulingError):
            location_configs(["a", "a"])


class TestPrependConfigs:
    def test_paper_count_for_seven_links(self):
        """Paper: Σₓ (7−x)·C(7, 7−x) = 294 configurations."""
        bases = location_configs(SEVEN, max_removed=3)
        prepends = prepend_configs(bases, max_prepend_size=1)
        assert len(prepends) == 294
        assert expected_prepend_count(7, 3) == 294

    def test_single_prepend_per_config(self):
        bases = location_configs(SEVEN, max_removed=1)
        for config in prepend_configs(bases, max_prepend_size=1):
            assert len(config.prepended) == 1
            assert config.prepended <= config.announced
            assert config.phase == PHASE_PREPENDING

    def test_increasing_prepend_size_order(self):
        bases = location_configs(["a", "b", "c"], max_removed=0)
        configs = prepend_configs(bases, max_prepend_size=2)
        sizes = [len(config.prepended) for config in configs]
        assert sizes == sorted(sizes)
        assert sizes == [1, 1, 1, 2, 2, 2]

    def test_prepend_count_propagates(self):
        bases = location_configs(["a"], max_removed=0)
        configs = prepend_configs(bases, prepend_count=6)
        assert configs[0].prepend_count == 6


class TestPoisonConfigs:
    def test_targets_are_provider_neighbors(self, small_testbed):
        origin = small_testbed.origin
        graph = small_testbed.graph
        targets = provider_neighbor_targets(origin, graph)
        providers = {link.provider for link in origin.links}
        for link in origin.links:
            neighbors = set(graph.neighbors(link.provider))
            for target in targets[link.link_id]:
                assert target in neighbors
                assert target != origin.asn
                assert target not in providers

    def test_one_config_per_target(self, small_testbed):
        origin, graph = small_testbed.origin, small_testbed.graph
        targets = provider_neighbor_targets(origin, graph)
        configs = poison_configs(origin, graph)
        assert len(configs) == sum(len(t) for t in targets.values())

    def test_poison_configs_announce_everywhere(self, small_testbed):
        origin, graph = small_testbed.origin, small_testbed.graph
        for config in poison_configs(origin, graph, max_per_provider=2):
            assert config.announced == frozenset(origin.link_ids)
            assert config.phase == PHASE_POISONING
            assert len(config.poisoned) == 1
            (poisons,) = config.poisoned.values()
            assert len(poisons) == 1

    def test_max_per_provider_cap(self, small_testbed):
        origin, graph = small_testbed.origin, small_testbed.graph
        targets = provider_neighbor_targets(origin, graph, max_per_provider=3)
        assert all(len(t) <= 3 for t in targets.values())


class TestDistantPoisonConfigs:
    def test_poisons_target_on_all_links(self, small_testbed):
        origin, graph = small_testbed.origin, small_testbed.graph
        target = sorted(small_testbed.topology.stubs)[0]
        configs = distant_poison_configs(origin, graph, [target])
        assert len(configs) == 1
        config = configs[0]
        for link in origin.link_ids:
            assert config.poisons_for_link(link) == frozenset([target])

    def test_skips_providers_and_unknown(self, small_testbed):
        origin, graph = small_testbed.origin, small_testbed.graph
        provider = origin.links[0].provider
        configs = distant_poison_configs(origin, graph, [provider, 999999999])
        assert configs == []


class TestFullSchedule:
    def test_phases_in_order(self, small_testbed):
        schedule = generate_schedule(small_testbed.origin, small_testbed.graph)
        phases = [config.phase for config in schedule]
        first_prep = phases.index(PHASE_PREPENDING)
        first_poison = phases.index(PHASE_POISONING)
        assert all(p == PHASE_LOCATIONS for p in phases[:first_prep])
        assert all(p == PHASE_PREPENDING for p in phases[first_prep:first_poison])
        assert all(p == PHASE_POISONING for p in phases[first_poison:])

    def test_no_poisoning_when_disabled(self, small_testbed):
        schedule = generate_schedule(
            small_testbed.origin,
            small_testbed.graph,
            ScheduleParams(include_poisoning=False),
        )
        assert all(config.phase != PHASE_POISONING for config in schedule)

    def test_paper_location_prepend_structure(self, small_testbed):
        # The small testbed has 5 links; with max_removed=3:
        # locations = C(5,5)+C(5,4)+C(5,3)+C(5,2) = 1+5+10+10 = 26
        # prepending = 5·1+4·5+3·10+2·10 = 75
        schedule = generate_schedule(
            small_testbed.origin,
            small_testbed.graph,
            ScheduleParams(include_poisoning=False),
        )
        locations = [c for c in schedule if c.phase == PHASE_LOCATIONS]
        prepends = [c for c in schedule if c.phase == PHASE_PREPENDING]
        assert len(locations) == 26 == expected_location_count(5, 3)
        assert len(prepends) == 75 == expected_prepend_count(5, 3)

    def test_rejects_bad_params(self):
        with pytest.raises(SchedulingError):
            ScheduleParams(max_removed=-1)
        with pytest.raises(SchedulingError):
            ScheduleParams(prepend_count=0)
        with pytest.raises(SchedulingError):
            ScheduleParams(max_poison_targets=-2)
