"""Cross-module integration scenarios exercising the full stack."""

import random

import pytest

from repro.analysis.figures import EvaluationRun, figure3, figure8
from repro.bgp.announcement import anycast_all
from repro.core.clustering import ClusterState
from repro.core.configgen import ScheduleParams
from repro.core.pipeline import SpoofTracker, build_testbed
from repro.core.scheduler import GreedyScheduler
from repro.spoof.honeypot import AmplificationHoneypot
from repro.spoof.inference import ValidSourceInference
from repro.spoof.sources import single_source_placement, uniform_placement
from repro.spoof.traffic import SpoofedTrafficGenerator, link_volumes
from repro.topology.generator import TopologyParams
from repro.topology.serialization import dumps_as_rel, loads_as_rel


class TestGroundTruthVsMeasured:
    """The measured pipeline should roughly agree with ground truth."""

    def test_measured_catchments_track_ground_truth(self, small_testbed):
        outcome = small_testbed.simulator.simulate(
            anycast_all(small_testbed.origin.link_ids)
        )
        measurement = small_testbed.campaign.measure(outcome)
        matches = sum(
            1
            for source, link in measurement.assignment.items()
            if outcome.catchment_of(source) == link
        )
        assert matches / len(measurement.assignment) > 0.9

    def test_measured_clusters_coarser_but_consistent(self, small_testbed):
        """Measured catchments cover fewer sources, but for the sources
        they do cover, refinement should separate the same pairs the
        ground truth separates (mostly)."""
        tracker = SpoofTracker(small_testbed)
        truth = tracker.run(max_configs=8)
        measured = tracker.run(max_configs=8, measured=True)
        shared = measured.universe & truth.universe
        assert len(shared) > 20
        truth_state = ClusterState(truth.universe)
        for catchments in truth.catchment_history:
            truth_state.refine_with_catchments(catchments)
        same_pair_checked = 0
        agreements = 0
        shared_list = sorted(shared)[:30]
        measured_state = ClusterState(measured.universe)
        for catchments in measured.catchment_history:
            measured_state.refine_with_catchments(catchments)
        for i, a in enumerate(shared_list):
            for b in shared_list[i + 1 :]:
                truth_same = b in truth_state.cluster_of(a)
                measured_same = b in measured_state.cluster_of(a)
                same_pair_checked += 1
                if truth_same == measured_same:
                    agreements += 1
        assert agreements / same_pair_checked > 0.6


class TestHoneypotLocalizationLoop:
    """Honeypot observations feed localization end to end."""

    def test_honeypot_volumes_localize_single_source(self):
        testbed = build_testbed(
            seed=13,
            topology_params=TopologyParams(
                num_tier1=4, num_transit=25, num_stub=100, seed=13
            ),
            num_links=4,
            num_vantages=8,
            num_probes=20,
        )
        tracker = SpoofTracker(testbed, ScheduleParams(include_poisoning=False))
        placement = single_source_placement(
            sorted(testbed.topology.stubs), random.Random(2)
        )
        # Observe honeypot volumes per configuration instead of using
        # the noiseless link_volumes path.
        configs = tracker.schedule[:30]
        outcomes = [testbed.simulator.simulate(config) for config in configs]
        universe = outcomes[0].covered_ases
        history = [
            {
                link: frozenset(members & universe)
                for link, members in outcome.catchments.items()
            }
            for outcome in outcomes
        ]
        honeypot = AmplificationHoneypot(service="dns")
        volume_history = []
        for index, outcome in enumerate(outcomes):
            generator = SpoofedTrafficGenerator(
                placement, outcome.catchments, rng=random.Random(index)
            )
            report = honeypot.observe(generator.packets(400))
            volumes = {link: 0.0 for link in outcome.catchments}
            volumes.update(report.bytes_by_link)
            volume_history.append(volumes)
        state = ClusterState(universe)
        for catchments in history:
            state.refine_with_catchments(catchments)
        from repro.core.localization import SpoofLocalizer

        localizer = SpoofLocalizer(state.clusters(), history)
        result = localizer.localize(volume_history)
        top = result.ranked[0]
        assert placement.spoofing_ases <= top.members

    def test_inference_volumes_approximate_honeypot(self, small_testbed):
        outcome = small_testbed.simulator.simulate(
            anycast_all(small_testbed.origin.link_ids)
        )
        placement = uniform_placement(
            sorted(small_testbed.topology.stubs), 5, random.Random(4)
        )
        expected = link_volumes(placement, outcome.catchments, total_volume=5.0)
        inference = ValidSourceInference(
            outcome.catchments, rng=random.Random(5)
        )
        spoofed_flows = []
        for asn, count in placement.sources_by_as.items():
            link = outcome.catchment_of(asn)
            if link is None:
                continue
            # Spoofers forge random addresses: claimed AS is effectively
            # arbitrary; use an unallocated AS number.
            spoofed_flows.extend((link, 10**7) for _ in range(count))
        volumes, quality = inference.simulate_flows(
            sorted(outcome.covered_ases), spoofed_flows
        )
        assert quality.recall == 1.0
        for link, volume in expected.items():
            assert volumes[link] == pytest.approx(volume)


class TestScheduleReuse:
    def test_greedy_on_evaluation_run_matches_direct(self, small_testbed):
        run = EvaluationRun(testbed=small_testbed, max_configs=20)
        scheduler = GreedyScheduler(sorted(run.universe), run.catchment_history)
        order, curve = scheduler.run(max_steps=5)
        assert len(order) == len(curve) <= 5
        assert curve == sorted(curve, reverse=True)

    def test_figures_reuse_one_run(self, small_testbed):
        run = EvaluationRun(testbed=small_testbed, max_configs=30)
        fig3 = figure3(run)
        fig8 = figure8(run, num_random_sequences=10, max_steps=8)
        assert fig3.series and fig8.series


class TestSerializationRoundtripThroughPipeline:
    def test_topology_survives_as_rel_roundtrip(self, small_testbed):
        graph = small_testbed.graph
        restored = loads_as_rel(dumps_as_rel(graph))
        assert restored.ases == graph.ases
        assert list(restored.links()) == list(graph.links())
