"""Tests for targeted large-cluster splitting (§V-B future work)."""

import pytest

from repro.core.clustering import ClusterState
from repro.core.configgen import ScheduleParams, generate_schedule
from repro.core.pipeline import build_testbed
from repro.core.refinement import LargeClusterSplitter, SplitReport
from repro.topology import TopologyParams


@pytest.fixture(scope="module")
def prepared():
    """Testbed plus a cluster state refined with the base schedule."""
    testbed = build_testbed(
        seed=3,
        topology_params=TopologyParams(
            num_tier1=6, num_transit=60, num_stub=300, seed=3
        ),
    )
    schedule = generate_schedule(
        testbed.origin, testbed.graph, ScheduleParams(include_poisoning=False)
    )
    outcomes = [testbed.simulator.simulate(config) for config in schedule[:64]]
    universe = outcomes[0].covered_ases
    state = ClusterState(universe)
    for outcome in outcomes:
        state.refine_with_catchments(
            {link: m & universe for link, m in outcome.catchments.items()}
        )
    return testbed, state, outcomes[0]


class TestTargetSelection:
    def test_targets_exclude_origin_and_providers(self, prepared):
        testbed, state, baseline = prepared
        splitter = LargeClusterSplitter(testbed.simulator, testbed.origin)
        providers = {link.provider for link in testbed.origin.links}
        for cluster in state.clusters():
            if len(cluster) <= splitter.threshold:
                continue
            targets = splitter.poison_targets_for_cluster(cluster, baseline)
            assert testbed.origin.asn not in targets
            assert not set(targets) & providers

    def test_target_budget_respected(self, prepared):
        testbed, state, baseline = prepared
        splitter = LargeClusterSplitter(
            testbed.simulator, testbed.origin, max_targets_per_cluster=2
        )
        for cluster in state.clusters():
            if len(cluster) > splitter.threshold:
                targets = splitter.poison_targets_for_cluster(cluster, baseline)
                assert len(targets) <= 2

    def test_invalid_params(self, prepared):
        testbed, _, _ = prepared
        with pytest.raises(ValueError):
            LargeClusterSplitter(testbed.simulator, testbed.origin, threshold=0)
        with pytest.raises(ValueError):
            LargeClusterSplitter(
                testbed.simulator, testbed.origin, max_targets_per_cluster=0
            )


class TestSplitting:
    def test_reduces_large_clusters(self, prepared):
        testbed, state, _ = prepared
        working = state.copy()
        before_max = max(working.sizes())
        splitter = LargeClusterSplitter(
            testbed.simulator, testbed.origin, threshold=5,
            max_targets_per_cluster=4,
        )
        report = splitter.split(working, max_rounds=4, max_configs=40)
        assert report.rounds >= 1
        assert report.configs_deployed
        assert report.initial_max == before_max
        assert report.final_max < report.initial_max
        assert max(working.sizes()) == report.final_max

    def test_refinement_never_merges(self, prepared):
        testbed, state, _ = prepared
        working = state.copy()
        clusters_before = {min(c): c for c in working.clusters()}
        splitter = LargeClusterSplitter(testbed.simulator, testbed.origin)
        splitter.split(working, max_rounds=2, max_configs=10)
        for cluster in working.clusters():
            parent = next(
                old for old in clusters_before.values() if cluster & old
            )
            assert cluster <= parent

    def test_config_budget_respected(self, prepared):
        testbed, state, _ = prepared
        working = state.copy()
        splitter = LargeClusterSplitter(testbed.simulator, testbed.origin)
        report = splitter.split(working, max_rounds=10, max_configs=5)
        assert len(report.configs_deployed) <= 5

    def test_noop_when_no_large_clusters(self, prepared):
        testbed, state, _ = prepared
        working = state.copy()
        huge_threshold = max(working.sizes()) + 1
        splitter = LargeClusterSplitter(
            testbed.simulator, testbed.origin, threshold=huge_threshold
        )
        report = splitter.split(working)
        assert report.rounds == 0
        assert report.configs_deployed == []
        assert report.initial_max == 0

    def test_catchment_history_usable_for_localization(self, prepared):
        testbed, state, _ = prepared
        working = state.copy()
        splitter = LargeClusterSplitter(testbed.simulator, testbed.origin)
        report = splitter.split(working, max_rounds=1, max_configs=5)
        assert len(report.catchment_history) == len(report.configs_deployed)
        for catchments in report.catchment_history:
            assert set(catchments) <= set(testbed.origin.link_ids)

    def test_absence_signal_helps(self, prepared):
        """With the absence signal the splitter separates single-homed
        cones; without it, it can only do as well or worse."""
        testbed, state, _ = prepared
        with_signal = state.copy()
        without_signal = state.copy()
        LargeClusterSplitter(
            testbed.simulator, testbed.origin, max_targets_per_cluster=4,
            use_absence_signal=True,
        ).split(with_signal, max_rounds=4, max_configs=40)
        LargeClusterSplitter(
            testbed.simulator, testbed.origin, max_targets_per_cluster=4,
            use_absence_signal=False,
        ).split(without_signal, max_rounds=4, max_configs=40)
        assert with_signal.mean_size() <= without_signal.mean_size() + 1e-9


class TestSplitReport:
    def test_empty_report_properties(self):
        report = SplitReport()
        assert report.initial_max == 0
        assert report.final_max == 0
