"""Tests for BGP collector emulation."""

import pytest

from repro.bgp.announcement import AnnouncementConfig, anycast_all
from repro.errors import MeasurementError
from repro.measurement.collectors import (
    BGPCollectorSet,
    link_of_bgp_path,
    select_vantages,
)
from tests.conftest import A, B, C, ORIGIN, P1, P2, T1, build_mini_internet


def mini_outcome(config=None, **policy_kwargs):
    from repro.bgp.policy import PolicyModel
    from repro.bgp.simulator import RoutingSimulator

    mini = build_mini_internet()
    defaults = dict(policy_noise=0.0, loop_prevention_disabled_fraction=0.0)
    defaults.update(policy_kwargs)
    policy = PolicyModel(mini.graph, **defaults)
    simulator = RoutingSimulator(mini.graph, mini.origin, policy)
    return mini, simulator.simulate(config or anycast_all(["l1", "l2"]))


class TestSelectVantages:
    def test_count_and_exclusion(self, small_testbed):
        graph = small_testbed.graph
        vantages = select_vantages(
            graph, 10, seed=1, exclude=[small_testbed.origin.asn]
        )
        assert len(vantages) == 10
        assert small_testbed.origin.asn not in vantages

    def test_degree_bias_selects_big_ases(self, small_testbed):
        graph = small_testbed.graph
        vantages = select_vantages(graph, 10, seed=1, degree_bias=1.0)
        degrees = sorted((graph.degree(asn) for asn in graph.ases), reverse=True)
        vantage_degrees = [graph.degree(asn) for asn in vantages]
        assert min(vantage_degrees) >= degrees[9]

    def test_deterministic(self, small_testbed):
        graph = small_testbed.graph
        assert select_vantages(graph, 8, seed=3) == select_vantages(
            graph, 8, seed=3
        )

    def test_too_many_raises(self, small_testbed):
        with pytest.raises(MeasurementError):
            select_vantages(small_testbed.graph, 10**6)

    def test_bad_bias_raises(self, small_testbed):
        with pytest.raises(MeasurementError):
            select_vantages(small_testbed.graph, 5, degree_bias=2.0)


class TestCollectorSet:
    def test_observes_vantage_paths(self):
        mini, outcome = mini_outcome()
        collectors = BGPCollectorSet([A, B], mini.origin)
        observations = collectors.observe(outcome)
        assert observations[A] == (A,) + outcome.route(A).as_path
        assert observations[A][-1] == ORIGIN

    def test_vantage_without_route_absent(self):
        config = AnnouncementConfig(
            announced=frozenset(["l1"]), poisoned={"l1": frozenset([T1])}
        )
        mini, outcome = mini_outcome(config, tier1_leak_filtering=False)
        collectors = BGPCollectorSet([C, A], mini.origin)
        observations = collectors.observe(outcome)
        assert C not in observations  # C lost reachability
        assert A in observations

    def test_rejects_empty_or_duplicate_vantages(self):
        mini, _ = mini_outcome()
        with pytest.raises(MeasurementError):
            BGPCollectorSet([], mini.origin)
        with pytest.raises(MeasurementError):
            BGPCollectorSet([A, A], mini.origin)


class TestLinkOfPath:
    def test_identifies_link_from_provider(self):
        mini, outcome = mini_outcome()
        assert link_of_bgp_path(mini.origin, (A, P1, ORIGIN)) == "l1"
        assert link_of_bgp_path(mini.origin, (B, P2, ORIGIN)) == "l2"

    def test_prepending_does_not_confuse(self):
        mini, _ = mini_outcome()
        path = (A, P1, ORIGIN, ORIGIN, ORIGIN)
        assert link_of_bgp_path(mini.origin, path) == "l1"

    def test_poison_stuffing_does_not_confuse(self):
        mini, _ = mini_outcome()
        path = (A, P1, ORIGIN, 666, ORIGIN)
        assert link_of_bgp_path(mini.origin, path) == "l1"

    def test_path_without_origin_unattributable(self):
        mini, _ = mini_outcome()
        assert link_of_bgp_path(mini.origin, (A, P1)) is None

    def test_path_not_via_provider_unattributable(self):
        mini, _ = mini_outcome()
        assert link_of_bgp_path(mini.origin, (A, 12345, ORIGIN)) is None

    def test_origin_first_unattributable(self):
        mini, _ = mini_outcome()
        assert link_of_bgp_path(mini.origin, (ORIGIN, P1)) is None

    def test_observations_attribute_to_true_catchment(self):
        """Collector-derived links must agree with simulator catchments."""
        mini, outcome = mini_outcome()
        collectors = BGPCollectorSet([A, B, C], mini.origin)
        for vantage, path in collectors.observe(outcome).items():
            assert link_of_bgp_path(mini.origin, path) == outcome.catchment_of(
                vantage
            )
