"""Tests for headline-metrics computation."""

import pytest

from repro.analysis.figures import EvaluationRun
from repro.analysis.headline import HeadlineMetric, headline_metrics, render_headline


@pytest.fixture(scope="module")
def metrics(request):
    small_testbed = request.getfixturevalue("small_testbed")
    run = EvaluationRun(testbed=small_testbed, compute_compliance=False)
    return headline_metrics(run, num_random_sequences=10, schedule_horizon=8)


class TestHeadlineMetrics:
    def test_core_metrics_present(self, metrics):
        names = {metric.name for metric in metrics}
        assert "final mean cluster size" in names
        assert "singleton clusters" in names
        assert "configurations deployed" in names

    def test_paper_references_present(self, metrics):
        by_name = {metric.name: metric for metric in metrics}
        assert by_name["final mean cluster size"].paper == "1.40 ASes"
        assert by_name["singleton clusters"].paper == "92%"

    def test_measured_values_parse(self, metrics):
        by_name = {metric.name: metric for metric in metrics}
        mean_value = float(
            by_name["final mean cluster size"].measured.split()[0]
        )
        assert 1.0 <= mean_value < 50.0
        singleton = by_name["singleton clusters"].measured
        assert singleton.endswith("%")

    def test_schedule_comparison_included(self, metrics):
        names = {metric.name for metric in metrics}
        assert any("random vs greedy" in name for name in names)

    def test_distance_comparison_included(self, metrics):
        names = {metric.name for metric in metrics}
        assert "mean cluster size, 1–2 vs 3+ hops" in names


class TestRendering:
    def test_render_alignment(self, metrics):
        text = render_headline(metrics)
        lines = text.splitlines()
        assert lines[0].startswith("result")
        assert "paper" in lines[0] and "reproduction" in lines[0]
        assert len(lines) == len(metrics) + 2

    def test_render_single_metric(self):
        text = render_headline(
            [HeadlineMetric(name="x", paper="1", measured="2")]
        )
        assert "x" in text and "1" in text and "2" in text
