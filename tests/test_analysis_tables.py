"""Tests for table renderers."""

from repro.analysis.tables import TABLE2_ROWS, Table, table1, table2


class TestTableRendering:
    def test_render_aligns_columns(self):
        table = Table(
            table_id="t",
            title="Title",
            headers=("A", "BBBB"),
            rows=[("xxxxx", "y")],
        )
        lines = table.render().splitlines()
        assert lines[0] == "Title"
        assert "A" in lines[1] and "BBBB" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "xxxxx" in lines[3]


class TestTable1:
    def test_one_row_per_link(self, small_testbed):
        table = table1(small_testbed)
        assert len(table.rows) == len(small_testbed.origin.links)

    def test_rows_mention_provider_asns(self, small_testbed):
        table = table1(small_testbed)
        for link, row in zip(small_testbed.origin.links, table.rows):
            assert row[0] == link.link_id
            assert f"AS{link.provider}" in row[1]

    def test_renders(self, small_testbed):
        text = table1(small_testbed).render()
        assert "Mux" in text and "Transit Provider" in text


class TestTable2:
    def test_matches_paper_rows(self):
        table = table2()
        assert len(table.rows) == 6
        approaches = [row[0] for row in table.rows]
        assert approaches[0] == "Manual"
        assert approaches[-1] == "Routing (this paper)"

    def test_this_papers_row_claims(self):
        this_paper = TABLE2_ROWS[-1]
        # No cooperation, no router updates, no overhead, AS precision.
        assert this_paper[2] == "No"
        assert this_paper[3] == "No"
        assert this_paper[4] == "No"
        assert this_paper[5] == "AS"

    def test_renders_all_columns(self):
        text = table2().render()
        assert "Identification precision" in text
        assert "Digest-Based" in text
