"""Tests for valid-source inference (spoofed labeling)."""

import random

import pytest

from repro.spoof.inference import InferenceQuality, ValidSourceInference

CATCHMENTS = {
    "l1": frozenset(range(1, 21)),
    "l2": frozenset(range(21, 41)),
}


class TestLearning:
    def test_perfect_coverage_learns_catchments(self):
        inference = ValidSourceInference(CATCHMENTS, learning_coverage=1.0)
        assert inference.expected_sources("l1") == CATCHMENTS["l1"]
        assert inference.expected_sources("l2") == CATCHMENTS["l2"]

    def test_partial_coverage_learns_subset(self):
        inference = ValidSourceInference(
            CATCHMENTS, learning_coverage=0.5, rng=random.Random(1)
        )
        learned = inference.expected_sources("l1")
        assert learned < CATCHMENTS["l1"]
        assert len(learned) == 10

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ValidSourceInference(CATCHMENTS, learning_coverage=0.0)
        with pytest.raises(ValueError):
            ValidSourceInference(CATCHMENTS, asymmetry_rate=1.0)


class TestLabeling:
    def test_expected_source_is_legitimate(self):
        inference = ValidSourceInference(CATCHMENTS)
        assert not inference.label("l1", 5)

    def test_wrong_link_is_spoofed(self):
        inference = ValidSourceInference(CATCHMENTS)
        assert inference.label("l2", 5)

    def test_unknown_source_is_spoofed(self):
        inference = ValidSourceInference(CATCHMENTS)
        assert inference.label("l1", 999)


class TestSimulateFlows:
    def test_perfect_conditions_perfect_quality(self):
        inference = ValidSourceInference(CATCHMENTS, rng=random.Random(2))
        spoofed = [("l1", 999), ("l2", 1234)]
        volumes, quality = inference.simulate_flows(range(1, 41), spoofed)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert sum(volumes.values()) == pytest.approx(2.0)

    def test_partial_learning_causes_false_positives(self):
        inference = ValidSourceInference(
            CATCHMENTS, learning_coverage=0.5, rng=random.Random(3)
        )
        volumes, quality = inference.simulate_flows(range(1, 41), [])
        assert quality.false_positives > 0
        assert quality.precision < 1.0

    def test_spoofed_claiming_expected_source_evades(self):
        """A spoofer forging an address that legitimately maps to the
        ingress link's catchment evades labeling (a false negative)."""
        inference = ValidSourceInference(CATCHMENTS, rng=random.Random(4))
        _, quality = inference.simulate_flows([], [("l1", 5)])
        assert quality.false_negatives == 1
        assert quality.recall == 0.0

    def test_asymmetry_causes_false_positives(self):
        inference = ValidSourceInference(
            CATCHMENTS, asymmetry_rate=0.5, rng=random.Random(5)
        )
        _, quality = inference.simulate_flows(list(range(1, 41)) * 5, [])
        assert quality.false_positives > 0

    def test_sources_outside_catchments_skipped(self):
        inference = ValidSourceInference(CATCHMENTS, rng=random.Random(6))
        _, quality = inference.simulate_flows([12345], [])
        assert quality.true_negatives == 0
        assert quality.false_positives == 0


class TestQualityMetrics:
    def test_precision_recall_formulas(self):
        quality = InferenceQuality(
            true_positives=8, false_positives=2, true_negatives=5, false_negatives=2
        )
        assert quality.precision == pytest.approx(0.8)
        assert quality.recall == pytest.approx(0.8)

    def test_degenerate_cases(self):
        empty = InferenceQuality(0, 0, 0, 0)
        assert empty.precision == 1.0
        assert empty.recall == 1.0
