"""Tests for the origin network model and attachment."""

import pytest

from repro.errors import TopologyError
from repro.topology.generator import TopologyParams, generate_topology
from repro.topology.peering import (
    PAPER_MUXES,
    PEERING_ASN,
    OriginNetwork,
    PeeringLink,
    attach_origin,
)
from repro.topology.relationships import Relationship


def two_links():
    return [
        PeeringLink("l1", provider=100, provider_name="P-One"),
        PeeringLink("l2", provider=200, provider_name="P-Two"),
    ]


class TestOriginNetwork:
    def test_link_lookup(self):
        origin = OriginNetwork(PEERING_ASN, two_links())
        assert origin.link("l1").provider == 100
        assert origin.provider_of("l2") == 200

    def test_link_ids_sorted(self):
        origin = OriginNetwork(PEERING_ASN, list(reversed(two_links())))
        assert origin.link_ids == ["l1", "l2"]

    def test_len(self):
        assert len(OriginNetwork(PEERING_ASN, two_links())) == 2

    def test_link_toward_provider(self):
        origin = OriginNetwork(PEERING_ASN, two_links())
        assert origin.link_toward_provider(200).link_id == "l2"

    def test_link_toward_unknown_provider_raises(self):
        origin = OriginNetwork(PEERING_ASN, two_links())
        with pytest.raises(TopologyError):
            origin.link_toward_provider(999)

    def test_unknown_link_raises(self):
        origin = OriginNetwork(PEERING_ASN, two_links())
        with pytest.raises(TopologyError):
            origin.link("nope")

    def test_rejects_no_links(self):
        with pytest.raises(TopologyError):
            OriginNetwork(PEERING_ASN, [])

    def test_rejects_duplicate_link_ids(self):
        links = [
            PeeringLink("l1", provider=100),
            PeeringLink("l1", provider=200),
        ]
        with pytest.raises(TopologyError, match="duplicate"):
            OriginNetwork(PEERING_ASN, links)

    def test_rejects_shared_provider(self):
        links = [
            PeeringLink("l1", provider=100),
            PeeringLink("l2", provider=100),
        ]
        with pytest.raises(TopologyError, match="distinct provider"):
            OriginNetwork(PEERING_ASN, links)


class TestAttachOrigin:
    def test_attaches_requested_links(self):
        topo = generate_topology(TopologyParams(seed=1))
        origin = attach_origin(topo, num_links=7, seed=1)
        assert len(origin) == 7
        for link in origin.links:
            assert topo.graph.relationship(origin.asn, link.provider) is (
                Relationship.PROVIDER
            )

    def test_uses_paper_mux_names(self):
        topo = generate_topology(TopologyParams(seed=1))
        origin = attach_origin(topo, num_links=7, seed=1)
        assert set(origin.link_ids) == {name for name, _, _ in PAPER_MUXES}

    def test_generates_names_beyond_seven(self):
        topo = generate_topology(TopologyParams(num_transit=40, seed=2))
        origin = attach_origin(topo, num_links=9, seed=2)
        assert len(origin.link_ids) == 9

    def test_providers_are_transit_ases(self):
        topo = generate_topology(TopologyParams(seed=3))
        origin = attach_origin(topo, num_links=5, seed=3)
        for link in origin.links:
            assert link.provider in set(topo.transit)

    def test_deterministic(self):
        providers = []
        for _ in range(2):
            topo = generate_topology(TopologyParams(seed=4))
            origin = attach_origin(topo, num_links=7, seed=4)
            providers.append([link.provider for link in origin.links])
        assert providers[0] == providers[1]

    def test_rejects_existing_origin_asn(self):
        topo = generate_topology(TopologyParams(seed=5))
        attach_origin(topo, num_links=3, seed=5)
        with pytest.raises(TopologyError, match="already present"):
            attach_origin(topo, num_links=3, seed=5)

    def test_rejects_too_many_links(self):
        topo = generate_topology(TopologyParams(num_transit=4, seed=6))
        with pytest.raises(TopologyError, match="candidate providers"):
            attach_origin(topo, num_links=10, seed=6)

    def test_providers_spread_across_degrees(self):
        topo = generate_topology(
            TopologyParams(num_transit=100, num_stub=300, seed=7)
        )
        origin = attach_origin(topo, num_links=7, seed=7)
        degrees = sorted(
            topo.graph.degree(link.provider) - 1  # minus the origin link
            for link in origin.links
        )
        # The spread sampler must not pick only top-degree providers.
        assert degrees[0] < degrees[-1]
