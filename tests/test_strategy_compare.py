"""Tests for the ``spooftrack compare`` harness (repro.strategy.compare)."""

import json
import os
import subprocess
import sys

import pytest

from repro.core.engine import SimulationEngine
from repro.core.pipeline import build_testbed
from repro.errors import StrategyError
from repro.obs import Observability
from repro.strategy import (
    available_strategies,
    compare_strategies,
    configs_to_convergence,
)

MAX_CONFIGS = 12


class TestConfigsToConvergence:
    def test_empty_curve(self):
        assert configs_to_convergence([]) == 0

    def test_flat_curve_converged_at_first_step(self):
        assert configs_to_convergence([4.0, 4.0, 4.0]) == 1

    def test_strictly_decreasing_converges_last(self):
        assert configs_to_convergence([8.0, 4.0, 2.0]) == 3

    def test_plateau_tail(self):
        assert configs_to_convergence([8.0, 2.0, 2.0, 2.0]) == 2


class TestCompare:
    @pytest.fixture(scope="class")
    def report(self):
        testbed = build_testbed(seed=0)
        return compare_strategies(testbed, max_configs=MAX_CONFIGS)

    def test_races_every_registered_strategy(self, report):
        assert len(report.outcomes) == len(available_strategies())
        assert {o.strategy for o in report.outcomes} == set(
            available_strategies()
        )

    def test_ranked_by_final_mean_then_convergence(self, report):
        keys = [
            (o.final_mean_cluster_size, o.configs_to_convergence,
             o.dwell_minutes, o.strategy)
            for o in report.outcomes
        ]
        assert keys == sorted(keys)

    def test_outcomes_are_internally_consistent(self, report):
        for outcome in report.outcomes:
            assert outcome.configs_deployed == len(outcome.order)
            assert len(outcome.curve) == outcome.configs_deployed
            assert outcome.configs_to_convergence <= outcome.configs_deployed
            assert outcome.dwell_minutes >= 0.0
            assert outcome.final_max_cluster_size >= 1
            assert outcome.stop_reason

    def test_greedy_beats_schedule_order(self, report):
        by_name = {o.strategy: o for o in report.outcomes}
        greedy = by_name["greedy"]
        schedule = by_name["schedule"]
        assert greedy.final_mean_cluster_size <= (
            schedule.final_mean_cluster_size
        )
        assert greedy.configs_deployed <= schedule.configs_deployed

    def test_deterministic_across_runs(self, report):
        again = compare_strategies(build_testbed(seed=0),
                                   max_configs=MAX_CONFIGS)
        first, second = report.as_dict(), again.as_dict()
        first.pop("engine"), second.pop("engine")  # summary has wall time
        assert first == second

    def test_table_lists_all_strategies(self, report):
        table = report.table()
        for name in available_strategies():
            assert name in table
        assert "rank" in table and "dwell(min)" in table

    def test_subset_and_order_dedup(self):
        testbed = build_testbed(seed=0)
        report = compare_strategies(
            testbed,
            strategies=["random", "greedy", "random"],
            max_configs=MAX_CONFIGS,
        )
        assert {o.strategy for o in report.outcomes} == {"random", "greedy"}

    def test_rejects_empty_strategy_list(self):
        with pytest.raises(StrategyError):
            compare_strategies(build_testbed(seed=0), strategies=[])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(StrategyError):
            compare_strategies(
                build_testbed(seed=0),
                strategies=["nope"],
                max_configs=MAX_CONFIGS,
            )

    def test_json_artifact_roundtrip(self, report, tmp_path):
        path = str(tmp_path / "nested" / "compare.json")
        assert report.write_json(path) == path
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["seed"] == 0
        assert len(payload["strategies"]) == len(report.outcomes)
        assert payload["strategies"][0]["strategy"] == (
            report.outcomes[0].strategy
        )

    def test_shared_engine_is_borrowed_not_closed(self):
        testbed = build_testbed(seed=0)
        engine = SimulationEngine(testbed.simulator)
        try:
            before = engine.stats.configs_simulated
            compare_strategies(
                testbed,
                strategies=["greedy"],
                max_configs=MAX_CONFIGS,
                engine=engine,
            )
            # Engine still usable: the race measured through it and the
            # cache makes a re-run free.
            report = compare_strategies(
                testbed,
                strategies=["greedy"],
                max_configs=MAX_CONFIGS,
                engine=engine,
            )
            assert engine.stats.configs_simulated > before
            assert report.engine_stats.configs_simulated == 0  # all cached
        finally:
            engine.close()

    def test_counters_and_events_emitted(self):
        obs = Observability.for_run("compare-test")
        testbed = build_testbed(seed=0)
        compare_strategies(
            testbed,
            strategies=["greedy", "random"],
            max_configs=MAX_CONFIGS,
            obs=obs,
        )
        totals = obs.registry.counter_totals()
        assert any(
            "repro_compare_configs_total" in key and "greedy" in key
            for key in totals
        )


class TestHashSeedInvariance:
    def test_identical_json_across_hash_seeds(self, tmp_path):
        """The whole race is PYTHONHASHSEED-invariant, subprocess-proven."""
        script = (
            "from repro.core.pipeline import build_testbed\n"
            "from repro.strategy import compare_strategies\n"
            "import json, sys\n"
            "report = compare_strategies(build_testbed(seed=0), "
            f"max_configs={MAX_CONFIGS})\n"
            "payload = report.as_dict()\n"
            "payload.pop('engine')  # summary embeds wall time\n"
            "print(json.dumps(payload, sort_keys=True))\n"
        )
        dumps = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = "src"
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            )
            assert result.returncode == 0, result.stderr
            dumps.append(result.stdout)
        assert dumps[0] == dumps[1]
