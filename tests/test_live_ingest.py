"""Tests for the live runtime's events, ingestion queue, and volume window."""

import pytest

from repro.errors import LiveServiceError
from repro.live import (
    BoundedIngestQueue,
    CheckpointRequest,
    ConfigApplied,
    DecayingVolumeWindow,
    PacketBatch,
    RouteChurn,
    SimClock,
)
from repro.bgp.announcement import anycast_all


def batch(volume: float, unattributed: float = 0.0) -> PacketBatch:
    return PacketBatch(
        timestamp=0.0, volumes={"l1": volume}, unattributed=unattributed
    )


class TestSimClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimClock()
        assert clock.now == 0.0
        assert clock.advance(20.0) == 20.0
        assert clock.now == 20.0

    def test_rejects_negative_advance(self):
        with pytest.raises(LiveServiceError):
            SimClock().advance(-1.0)

    def test_rejects_negative_start(self):
        with pytest.raises(LiveServiceError):
            SimClock(start=-5.0)


class TestEvents:
    def test_batch_volume_accounting(self):
        event = PacketBatch(
            timestamp=1.0, volumes={"l1": 2.0, "l2": 3.0}, unattributed=0.5
        )
        assert event.attributed_volume == pytest.approx(5.0)
        assert event.offered_volume == pytest.approx(5.5)

    def test_config_applied_requires_config(self):
        with pytest.raises(LiveServiceError):
            ConfigApplied(timestamp=0.0)
        event = ConfigApplied(
            timestamp=0.0, config=anycast_all(["l1"]), schedule_index=3
        )
        assert event.schedule_index == 3

    def test_route_churn_validates_drift(self):
        with pytest.raises(LiveServiceError):
            RouteChurn(timestamp=0.0, drift=1.5)
        assert RouteChurn(timestamp=0.0, drift=0.3).drift == 0.3

    def test_checkpoint_request_needs_path(self):
        with pytest.raises(LiveServiceError):
            CheckpointRequest(timestamp=0.0)


class TestBoundedIngestQueue:
    def test_accepts_below_capacity(self):
        queue = BoundedIngestQueue(capacity=3)
        assert all(queue.offer(batch(1.0)) for _ in range(3))
        assert queue.depth == 3
        assert queue.stats.dropped_batches == 0

    def test_newest_policy_rejects_incoming(self):
        queue = BoundedIngestQueue(capacity=2, drop_policy="newest")
        queue.offer(batch(1.0))
        queue.offer(batch(2.0))
        assert not queue.offer(batch(5.0))
        assert queue.depth == 2
        assert queue.stats.dropped_batches == 1
        assert queue.stats.dropped_volume == pytest.approx(5.0)
        # The survivors are the two oldest batches.
        drained = queue.drain()
        assert [b.volumes["l1"] for b in drained] == [1.0, 2.0]

    def test_oldest_policy_evicts_head(self):
        queue = BoundedIngestQueue(capacity=2, drop_policy="oldest")
        queue.offer(batch(1.0))
        queue.offer(batch(2.0))
        assert not queue.offer(batch(5.0))
        drained = queue.drain()
        assert [b.volumes["l1"] for b in drained] == [2.0, 5.0]
        assert queue.stats.dropped_volume == pytest.approx(1.0)

    @pytest.mark.parametrize("policy", ["newest", "oldest"])
    def test_volume_conservation_under_overload(self, policy):
        queue = BoundedIngestQueue(capacity=4, drop_policy=policy)
        offered = 0.0
        for step in range(20):
            volume = float(step + 1)
            queue.offer(batch(volume, unattributed=0.25))
            offered += volume + 0.25
        stats = queue.stats
        assert stats.offered_batches == 20
        assert stats.offered_volume == pytest.approx(offered)
        assert stats.accepted_volume + stats.dropped_volume == pytest.approx(
            offered
        )
        assert stats.accepted_batches + stats.dropped_batches == 20
        # What is still drainable is exactly the accepted volume.
        drained = queue.drain()
        assert sum(b.offered_volume for b in drained) == pytest.approx(
            stats.accepted_volume
        )

    def test_drain_respects_limit(self):
        queue = BoundedIngestQueue(capacity=8)
        for _ in range(5):
            queue.offer(batch(1.0))
        assert len(queue.drain(max_batches=2)) == 2
        assert queue.depth == 3
        with pytest.raises(LiveServiceError):
            queue.drain(max_batches=-1)

    def test_max_depth_tracked(self):
        queue = BoundedIngestQueue(capacity=8)
        for _ in range(5):
            queue.offer(batch(1.0))
        queue.drain()
        assert queue.stats.max_queue_depth == 5

    def test_restore_round_trip(self):
        queue = BoundedIngestQueue(capacity=4)
        queue.offer(batch(1.0))
        queue.offer(batch(2.0))
        pending = queue.pending()
        fresh = BoundedIngestQueue(capacity=4)
        fresh.restore(pending)
        assert [b.volumes["l1"] for b in fresh.drain()] == [1.0, 2.0]
        with pytest.raises(LiveServiceError):
            BoundedIngestQueue(capacity=1).restore(pending)

    def test_rejects_bad_parameters(self):
        with pytest.raises(LiveServiceError):
            BoundedIngestQueue(capacity=0)
        with pytest.raises(LiveServiceError):
            BoundedIngestQueue(drop_policy="random")


class TestDecayingVolumeWindow:
    def test_decays_by_half_after_half_life(self):
        window = DecayingVolumeWindow(half_life_ticks=2.0)
        window.push({"l1": 8.0})
        window.push({})
        window.push({})
        assert window.snapshot()["l1"] == pytest.approx(4.0)

    def test_concentration(self):
        window = DecayingVolumeWindow()
        assert window.concentration() == 0.0
        window.push({"l1": 3.0, "l2": 1.0})
        assert window.concentration() == pytest.approx(0.75)

    def test_restore_round_trip(self):
        window = DecayingVolumeWindow(half_life_ticks=3.0)
        window.push({"l1": 2.0, "l2": 5.0})
        fresh = DecayingVolumeWindow(half_life_ticks=3.0)
        fresh.restore(window.snapshot())
        assert fresh.snapshot() == window.snapshot()
        assert fresh.total() == pytest.approx(window.total())

    def test_rejects_bad_half_life(self):
        with pytest.raises(LiveServiceError):
            DecayingVolumeWindow(half_life_ticks=0.0)
