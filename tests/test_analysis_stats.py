"""Tests for analysis statistics helpers."""

import pytest

from repro.analysis.stats import (
    ccdf_points,
    cdf_points,
    fraction_at_least,
    mean,
    percentile,
    summarize_sizes,
)


class TestCCDF:
    def test_starts_at_one(self):
        points = ccdf_points([1, 2, 3, 4])
        assert points[0] == (1.0, 1.0)

    def test_monotone_nonincreasing(self):
        points = ccdf_points([1, 1, 2, 5, 5, 9])
        ys = [y for _, y in points]
        assert ys == sorted(ys, reverse=True)

    def test_known_values(self):
        points = dict(ccdf_points([1, 1, 2, 4]))
        assert points[1.0] == 1.0
        assert points[2.0] == pytest.approx(0.5)
        assert points[4.0] == pytest.approx(0.25)

    def test_single_value(self):
        assert ccdf_points([7]) == [(7.0, 1.0)]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ccdf_points([])


class TestCDF:
    def test_ends_at_one(self):
        points = cdf_points([0.1, 0.5, 0.9])
        assert points[-1][1] == pytest.approx(1.0)

    def test_monotone_nondecreasing(self):
        points = cdf_points([3.0, 1.0, 2.0, 1.0])
        ys = [y for _, y in points]
        assert ys == sorted(ys)

    def test_known_values(self):
        points = dict(cdf_points([1.0, 2.0, 2.0, 4.0]))
        assert points[1.0] == pytest.approx(0.25)
        assert points[2.0] == pytest.approx(0.75)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cdf_points([])


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_bounds(self):
        values = [4.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_single_value(self):
        assert percentile([42.0], 73) == 42.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)


class TestMisc:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])

    def test_fraction_at_least(self):
        assert fraction_at_least([1, 2, 3, 4], 3) == 0.5
        assert fraction_at_least([1], 5) == 0.0
        with pytest.raises(ValueError):
            fraction_at_least([], 1)

    def test_summarize_sizes(self):
        summary = summarize_sizes([1, 1, 1, 5])
        assert summary["count"] == 4.0
        assert summary["mean"] == 2.0
        assert summary["max"] == 5.0
        assert summary["singleton_fraction"] == 0.75
