"""Tests for catchment conflict resolution and smax imputation."""

import pytest

from repro.errors import MeasurementError
from repro.measurement.catchment import (
    KIND_BGP,
    KIND_TRACEROUTE,
    CatchmentHistory,
    CatchmentObservation,
    assignment_to_catchments,
    resolve_observations,
)


def obs(source, link, kind=KIND_BGP):
    return CatchmentObservation(source_as=source, link=link, kind=kind)


class TestObservation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(MeasurementError):
            CatchmentObservation(source_as=1, link="l1", kind="dns")


class TestResolution:
    def test_single_observation(self):
        assignment, stats = resolve_observations([obs(1, "l1")])
        assert assignment == {1: "l1"}
        assert stats.multi_catchment_fraction == 0.0

    def test_bgp_outranks_traceroute(self):
        """§IV-c: 'we give higher priority to BGP measurements'."""
        observations = [
            obs(1, "l1", KIND_BGP),
            obs(1, "l2", KIND_TRACEROUTE),
            obs(1, "l2", KIND_TRACEROUTE),
            obs(1, "l2", KIND_TRACEROUTE),
        ]
        assignment, stats = resolve_observations(observations)
        assert assignment[1] == "l1"
        assert stats.sources_in_multiple_catchments == 1

    def test_majority_among_same_kind(self):
        observations = [
            obs(1, "l1", KIND_TRACEROUTE),
            obs(1, "l2", KIND_TRACEROUTE),
            obs(1, "l2", KIND_TRACEROUTE),
        ]
        assignment, _ = resolve_observations(observations)
        assert assignment[1] == "l2"

    def test_tie_breaks_by_link_id(self):
        observations = [obs(1, "l2"), obs(1, "l1")]
        assignment, _ = resolve_observations(observations)
        assert assignment[1] == "l1"

    def test_multi_catchment_fraction(self):
        """Paper reports 2.28% of ASes in multiple catchments on average."""
        observations = [
            obs(1, "l1"),
            obs(1, "l2"),  # source 1: conflicted
            obs(2, "l1"),
            obs(2, "l1"),  # source 2: consistent
        ]
        _, stats = resolve_observations(observations)
        assert stats.sources_observed == 2
        assert stats.multi_catchment_fraction == pytest.approx(0.5)

    def test_empty_observations(self):
        assignment, stats = resolve_observations([])
        assert assignment == {}
        assert stats.sources_observed == 0
        assert stats.multi_catchment_fraction == 0.0


class TestAssignmentToCatchments:
    def test_inversion(self):
        catchments = assignment_to_catchments(
            {1: "l1", 2: "l1", 3: "l2"}, ["l1", "l2", "l3"]
        )
        assert catchments["l1"] == frozenset({1, 2})
        assert catchments["l2"] == frozenset({3})
        assert catchments["l3"] == frozenset()

    def test_unlisted_link_still_included(self):
        catchments = assignment_to_catchments({1: "lX"}, ["l1"])
        assert catchments["lX"] == frozenset({1})


class TestCatchmentHistory:
    def test_restricts_to_universe(self):
        history = CatchmentHistory([1, 2])
        history.add({1: "l1", 99: "l2"})
        assert history.missing_sources() == {0: frozenset({2})}

    def test_rejects_empty_universe(self):
        with pytest.raises(MeasurementError):
            CatchmentHistory([])

    def test_smax_finds_most_frequent_companion(self):
        """§IV-d: smax is the source sharing s's catchment most often."""
        history = CatchmentHistory([1, 2, 3])
        history.add({1: "l1", 2: "l1", 3: "l2"})
        history.add({1: "l1", 2: "l1", 3: "l1"})
        history.add({1: "l2", 2: "l2", 3: "l1"})
        assert history.smax_of(1) == 2

    def test_smax_none_when_always_alone(self):
        history = CatchmentHistory([1, 2])
        history.add({1: "l1", 2: "l2"})
        assert history.smax_of(1) is None

    def test_imputation_fills_missing_from_smax(self):
        history = CatchmentHistory([1, 2])
        history.add({1: "l1", 2: "l1"})   # 2 is 1's smax
        history.add({2: "l2"})            # 1 missing here
        imputed = history.imputed_assignments()
        assert imputed[1][1] == "l2"

    def test_imputation_leaves_unfillable_missing(self):
        history = CatchmentHistory([1, 2])
        history.add({1: "l1", 2: "l1"})
        history.add({})  # both missing: smax also unobserved
        imputed = history.imputed_assignments()
        assert 1 not in imputed[1]

    def test_catchment_maps_shapes(self):
        history = CatchmentHistory([1, 2, 3])
        history.add({1: "l1", 2: "l1", 3: "l2"})
        maps = history.catchment_maps(["l1", "l2"])
        assert maps[0]["l1"] == frozenset({1, 2})
        assert maps[0]["l2"] == frozenset({3})

    def test_len(self):
        history = CatchmentHistory([1])
        history.add({1: "l1"})
        history.add({1: "l2"})
        assert len(history) == 2
