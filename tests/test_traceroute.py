"""Tests for the traceroute engine."""

import pytest

from repro.bgp.announcement import anycast_all
from repro.bgp.policy import PolicyModel
from repro.bgp.simulator import RoutingSimulator
from repro.errors import MeasurementError
from repro.measurement.ip2as import AddressPlan, IPToASMapper
from repro.measurement.ixp import IXPRegistry
from repro.measurement.traceroute import TracerouteEngine, TracerouteParams
from tests.conftest import A, C, ORIGIN, build_mini_internet


def make_engine(**params):
    mini = build_mini_internet()
    policy = PolicyModel(
        mini.graph, policy_noise=0.0, loop_prevention_disabled_fraction=0.0
    )
    simulator = RoutingSimulator(mini.graph, mini.origin, policy)
    outcome = simulator.simulate(anycast_all(["l1", "l2"]))
    plan = AddressPlan(mini.graph.ases, ORIGIN)
    engine = TracerouteEngine(
        mini.graph, plan, IXPRegistry(), TracerouteParams(**params)
    )
    return engine, outcome, plan


CLEAN = dict(
    unresponsive_rate=0.0,
    border_sharing_rate=0.0,
    path_error_rate=0.0,
    truncation_rate=0.0,
    divergence_rate=0.0,
)


class TestCleanMeasurements:
    def test_reaches_target(self):
        engine, outcome, plan = make_engine(**CLEAN)
        trace = engine.measure(outcome, A)
        assert trace.reached_target
        assert trace.hops[-1] == plan.target_address()

    def test_hops_follow_forwarding_path(self):
        engine, outcome, plan = make_engine(**CLEAN, max_routers_per_as=1)
        mapper = IPToASMapper(plan)
        trace = engine.measure(outcome, C)
        hop_ases = [mapper.map_address(hop) for hop in trace.hops]
        collapsed = []
        for asn in hop_ases:
            if not collapsed or collapsed[-1] != asn:
                collapsed.append(asn)
        assert tuple(collapsed) == outcome.forwarding_path(C)

    def test_deterministic_per_round(self):
        engine, outcome, _ = make_engine(**CLEAN)
        first = engine.measure(outcome, A, round_index=0)
        second = engine.measure(outcome, A, round_index=0)
        assert first == second

    def test_no_route_returns_none(self):
        engine, outcome, _ = make_engine(**CLEAN)
        # Simulate an AS with no route by probing from the origin's
        # perspective of a nonexistent path: drop A's route artificially.
        del outcome.routes[A]
        assert engine.measure(outcome, A) is None


class TestArtifacts:
    def test_unresponsive_hops_appear(self):
        engine, outcome, _ = make_engine(
            unresponsive_rate=0.5,
            border_sharing_rate=0.0,
            path_error_rate=0.0,
            truncation_rate=0.0,
            divergence_rate=0.0,
        )
        traces = [engine.measure(outcome, C, round_index=r) for r in range(20)]
        assert any(None in trace.hops for trace in traces)

    def test_responsive_hops_property(self):
        engine, outcome, _ = make_engine(
            unresponsive_rate=0.5,
            border_sharing_rate=0.0,
            path_error_rate=0.0,
            truncation_rate=0.0,
            divergence_rate=0.0,
        )
        trace = engine.measure(outcome, C, round_index=3)
        assert None not in trace.responsive_hops

    def test_border_sharing_misattributes_entry_hop(self):
        engine, outcome, plan = make_engine(
            unresponsive_rate=0.0,
            border_sharing_rate=1.0,
            path_error_rate=0.0,
            truncation_rate=0.0,
            divergence_rate=0.0,
            max_routers_per_as=1,
        )
        mapper = IPToASMapper(plan)
        trace = engine.measure(outcome, C)
        hop_ases = [mapper.map_address(hop) for hop in trace.hops[:-1]]
        true_path = outcome.forwarding_path(C)[:-1]
        # With certain border sharing, every AS after the first reports its
        # entry interface from the previous AS's space: with one router per
        # AS, the visible ASes collapse toward the upstream.
        assert hop_ases[0] == C
        assert set(hop_ases) < set(true_path)

    def test_truncation_never_reaches_target(self):
        engine, outcome, _ = make_engine(
            unresponsive_rate=0.0,
            border_sharing_rate=0.0,
            path_error_rate=0.0,
            truncation_rate=1.0,
            divergence_rate=0.0,
        )
        trace = engine.measure(outcome, C)
        assert not trace.reached_target

    def test_divergence_forks_onto_alternate_path(self):
        engine, outcome, plan = make_engine(
            unresponsive_rate=0.0,
            border_sharing_rate=0.0,
            path_error_rate=0.0,
            truncation_rate=0.0,
            divergence_rate=1.0,
            max_routers_per_as=1,
        )
        mapper = IPToASMapper(plan)
        # C's true path is C–M–T1–P1–origin (length 5 > 3, divergable).
        diverged = False
        for round_index in range(30):
            trace = engine.measure(outcome, C, round_index=round_index)
            hop_ases = []
            for hop in trace.hops[:-1]:
                asn = mapper.map_address(hop)
                if not hop_ases or hop_ases[-1] != asn:
                    hop_ases.append(asn)
            if tuple(hop_ases) != outcome.forwarding_path(C)[:-1]:
                diverged = True
                # The diverged path is still loop-free.
                assert len(hop_ases) == len(set(hop_ases))
        assert diverged

    def test_path_error_switches_to_neighbor_path(self):
        engine, outcome, plan = make_engine(
            unresponsive_rate=0.0,
            border_sharing_rate=0.0,
            path_error_rate=1.0,
            truncation_rate=0.0,
            divergence_rate=0.0,
            max_routers_per_as=1,
        )
        mapper = IPToASMapper(plan)
        trace = engine.measure(outcome, A)
        first_as = mapper.map_address(trace.hops[0])
        assert first_as != A  # measured some neighbor's path instead


class TestParams:
    def test_rejects_bad_rates(self):
        with pytest.raises(MeasurementError):
            TracerouteParams(unresponsive_rate=1.5)
        with pytest.raises(MeasurementError):
            TracerouteParams(border_sharing_rate=-0.1)
        with pytest.raises(MeasurementError):
            TracerouteParams(max_routers_per_as=0)

    def test_router_count_stable_per_as(self):
        engine, outcome, _ = make_engine(**CLEAN, max_routers_per_as=3)
        assert engine._routers_in(C) == engine._routers_in(C)
        assert 1 <= engine._routers_in(C) <= 3
