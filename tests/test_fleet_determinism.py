"""Fleet determinism suite (ISSUE 7 satellite).

Same seed + same spec must yield byte-identical per-shard attributions
no matter how the shards interleave: serial vs asyncio driver, admission
bounds of 1 / 2 / 8 over an 8-shard campaign, and with one shard killed
and resumed from its checkpoint mid-replay.
"""

import asyncio
import os
import subprocess
import sys
import textwrap
import dataclasses

import pytest

from repro.fleet import (
    CRASH,
    DONE,
    FleetEvent,
    FleetRuntime,
    FleetSpec,
    scripted_stream,
)
from repro.topology.generator import TopologyParams

#: 4 tenants x 2 attacks = 8 shards, small enough to replay quickly.
EIGHT_SHARD_SPEC = FleetSpec(
    seed=11,
    tenants=4,
    attacks_per_tenant=2,
    max_configs=3,
    num_sources=6,
    num_links=5,
    num_vantages=12,
    num_probes=40,
    checkpoint_every=2,
    topology_params=TopologyParams(
        num_tier1=4, num_transit=24, num_stub=90, seed=1
    ),
)

#: The shard the crash scenarios kill mid-replay.
VICTIM = ("tenant-02", "198.18.2.8/29")


def run_fleet(spec, tmp_path, events=None, **kwargs):
    runtime = FleetRuntime(
        spec, events=events, checkpoint_dir=str(tmp_path), **kwargs
    )
    try:
        return runtime.run()
    finally:
        runtime.close()


def attributions(report):
    """(key -> attribution digest), asserting every shard finished."""
    for shard in report.shards:
        assert shard.state == DONE, (shard.key, shard.state, shard.error)
        assert shard.attribution_digest
    return {shard.key: shard.attribution_digest for shard in report.shards}


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The unbounded, uncrashed 8-shard campaign."""
    tmp = tmp_path_factory.mktemp("fleet-baseline")
    return run_fleet(EIGHT_SHARD_SPEC, tmp)


class TestInterleavingInvariance:
    @pytest.mark.parametrize("max_active", [1, 2, 8])
    def test_admission_bound_never_changes_attributions(
        self, baseline, tmp_path, max_active
    ):
        spec = dataclasses.replace(EIGHT_SHARD_SPEC, max_active=max_active)
        report = run_fleet(spec, tmp_path)
        assert attributions(report) == attributions(baseline)
        assert report.digest == baseline.digest

    def test_async_driver_matches_serial(self, baseline, tmp_path):
        runtime = FleetRuntime(
            EIGHT_SHARD_SPEC, checkpoint_dir=str(tmp_path)
        )
        try:
            report = asyncio.run(runtime.run_async())
        finally:
            runtime.close()
        assert report.digest == baseline.digest

    def test_quotas_change_order_not_results(self, baseline, tmp_path):
        spec = dataclasses.replace(
            EIGHT_SHARD_SPEC,
            quotas=(("tenant-00", 4.0), ("tenant-03", 0.25)),
        )
        report = run_fleet(spec, tmp_path)
        assert attributions(report) == attributions(baseline)

    def test_staggered_launches_change_order_not_results(
        self, baseline, tmp_path
    ):
        spec = dataclasses.replace(
            EIGHT_SHARD_SPEC, launch_stagger_minutes=40.0
        )
        report = run_fleet(spec, tmp_path)
        assert attributions(report) == attributions(baseline)


class TestCrashResumeInvariance:
    def crash_events(self, spec):
        return scripted_stream(
            spec,
            [
                FleetEvent(
                    minute=120.0,
                    action=CRASH,
                    tenant=VICTIM[0],
                    prefix=VICTIM[1],
                )
            ],
        )

    def test_killed_shard_resumes_to_identical_attribution(
        self, baseline, tmp_path
    ):
        report = run_fleet(
            EIGHT_SHARD_SPEC,
            tmp_path,
            events=self.crash_events(EIGHT_SHARD_SPEC),
        )
        by_key = {shard.key: shard for shard in report.shards}
        victim = by_key[VICTIM]
        assert victim.crashes == 1
        assert victim.resumes == 1
        assert victim.error == "killed by fleet event"
        # The kill + checkpoint resume is invisible in the evidence:
        # attributions AND final checkpoint bytes match the quiet run.
        assert attributions(report) == attributions(baseline)
        assert report.digest == baseline.digest
        assert report.crashes == 1 and report.resumes == 1

    def test_crash_under_admission_pressure(self, baseline, tmp_path):
        spec = dataclasses.replace(EIGHT_SHARD_SPEC, max_active=2)
        report = run_fleet(spec, tmp_path, events=self.crash_events(spec))
        assert attributions(report) == attributions(baseline)

    def test_crash_in_async_driver(self, baseline, tmp_path):
        runtime = FleetRuntime(
            EIGHT_SHARD_SPEC,
            events=self.crash_events(EIGHT_SHARD_SPEC),
            checkpoint_dir=str(tmp_path),
        )
        try:
            report = asyncio.run(runtime.run_async())
        finally:
            runtime.close()
        assert attributions(report) == attributions(baseline)
        assert report.digest == baseline.digest

    def test_crash_without_checkpoints_restarts_from_scratch(
        self, baseline, tmp_path
    ):
        # No checkpoint directory: the resumed shard replays from minute
        # zero — slower, but stateless seeding lands it on the same final
        # attribution (checkpoint digests are empty, so compare those).
        spec = dataclasses.replace(EIGHT_SHARD_SPEC, checkpoint_every=0)
        runtime = FleetRuntime(spec, events=self.crash_events(spec))
        try:
            report = runtime.run()
        finally:
            runtime.close()
        by_key = {shard.key: shard for shard in report.shards}
        assert by_key[VICTIM].resumes == 1
        assert by_key[VICTIM].checkpoint_digest == ""
        assert attributions(report) == attributions(baseline)


class TestHashSeedInvariance:
    """Digests must not depend on the interpreter's string hash seed.

    LinkIds are strings; a dict built by iterating a frozenset of them
    inherits hash-randomized insertion order, and any float sum over
    that dict then drifts at the last ulp — enough to flip NNLS ties and
    reorder zero-volume clusters between *processes*.  Same-process
    comparisons (everything else in this suite) can never catch that, so
    this test replays one scenario in two subprocesses pinned to
    different PYTHONHASHSEEDs and compares full-precision attributions.
    """

    PROBE = textwrap.dedent(
        """
        from dataclasses import replace

        from repro.cli import SCALES
        from repro.fleet import FleetSpec, attribution_digest
        from repro.live import LiveTracebackService

        spec = FleetSpec(
            seed=2,
            tenants=1,
            attacks_per_tenant=2,
            max_configs=3,
            num_sources=6,
            topology_params=replace(SCALES["small"], seed=2),
        )
        # The *second* derived scenario is the historical offender: its
        # final ranking carried zero-volume ties that hash-seed-ordered
        # catchment dicts used to break differently per process.
        attack = spec.attacks()[1]
        testbed = spec.tenant_testbed(attack.tenant).build()
        service = LiveTracebackService(
            scenario=attack.scenario, spec=attack.testbed, testbed=testbed
        )
        report = service.run()
        service.close()
        print(attribution_digest(report))
        ranked = report.localization.ranked
        for cluster in ranked:
            print(repr(cluster.estimated_volume), sorted(cluster.members))
        """
    )

    def run_probe(self, hash_seed):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = src + os.pathsep * bool(
            env.get("PYTHONPATH")
        ) + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", self.PROBE],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_attribution_identical_across_hash_seeds(self):
        assert self.run_probe("11") == self.run_probe("22")
