"""Equivalence suite: the indexed core is bit-identical to the legacy core.

The indexed frontier core (:mod:`repro.bgp.indexed`) earns the right to
be the default by reproducing the reference simulator *exactly* — same
routes (field for field), same catchments, same pass counts, same
decision-change totals, same convergence flags — over randomized
topologies, announcement configurations, warm starts, and engine worker
counts.  These are seeded property-style tests: each trial draws a fresh
configuration shape (announced subsets, prepending, poisoning, no-export
communities) and both cores must agree on everything observable.
"""

from __future__ import annotations

import random

import pytest

from repro.bgp.announcement import AnnouncementConfig, anycast_all
from repro.bgp.indexed import CompiledTopology, policy_is_compilable
from repro.bgp.policy import PolicyModel
from repro.bgp.simulator import RoutingSimulator
from repro.core.engine import SimulationEngine
from repro.core.pipeline import build_testbed
from repro.errors import SimulationError
from repro.topology.generator import TopologyParams, generate_topology
from repro.topology.peering import attach_origin


def _fresh_topology(seed):
    """A private small topology (attach_origin mutates, so no fixtures)."""
    return generate_topology(
        TopologyParams(num_tier1=4, num_transit=30, num_stub=100, seed=seed)
    )


def assert_outcomes_identical(a, b):
    """Field-for-field equality of two routing outcomes."""
    assert a.routes == b.routes
    assert a.catchments == b.catchments
    assert a.passes == b.passes
    assert a.decision_changes == b.decision_changes
    assert a.converged == b.converged
    assert a.origin_asn == b.origin_asn
    assert a.warm_started == b.warm_started


def _random_config(rng, graph, origin):
    """Draw a random configuration exercising every ⟨A;P;Q⟩ dimension."""
    links = origin.link_ids
    k = rng.randint(1, len(links))
    announced = frozenset(rng.sample(links, k))
    prepended = frozenset(rng.sample(sorted(announced), rng.randint(0, k)))
    poisoned = {}
    if rng.random() < 0.4:
        victims = rng.sample(sorted(graph.ases - {origin.asn}), rng.randint(1, 2))
        poisoned = {rng.choice(sorted(announced)): frozenset(victims)}
    no_export = {}
    if rng.random() < 0.3:
        link = rng.choice(sorted(announced))
        neighbors = sorted(
            set(graph.neighbors(origin.provider_of(link))) - {origin.asn}
        )
        if neighbors:
            no_export = {
                link: frozenset(rng.sample(neighbors, min(2, len(neighbors))))
            }
    return AnnouncementConfig(
        announced=announced,
        prepended=prepended,
        poisoned=poisoned,
        no_export=no_export,
        prepend_count=rng.choice([1, 2, 4]),
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_indexed_equals_legacy_on_random_configs(seed):
    """Cold and warm-started fixpoints agree bit-for-bit per trial."""
    testbed = build_testbed(
        seed=seed,
        topology_params=TopologyParams(
            num_tier1=4, num_transit=25, num_stub=90, seed=seed
        ),
        num_links=5,
        num_vantages=6,
        num_probes=10,
    )
    graph, origin, policy = (
        testbed.topology.graph,
        testbed.origin,
        testbed.policy,
    )
    indexed = RoutingSimulator(graph, origin, policy, core="indexed")
    legacy = RoutingSimulator(graph, origin, policy, core="legacy")
    assert indexed.effective_core == "indexed"
    assert legacy.effective_core == "legacy"

    rng = random.Random(seed * 101 + 5)
    previous = None
    for _ in range(8):
        config = _random_config(rng, graph, origin)
        outcome_i = indexed.simulate(config)
        outcome_l = legacy.simulate(config)
        assert_outcomes_identical(outcome_i, outcome_l)
        if previous is not None:
            warm_i = indexed.simulate(config, warm_start=previous.routes)
            warm_l = legacy.simulate(config, warm_start=previous.routes)
            assert_outcomes_identical(warm_i, warm_l)
            # Warm or cold, the fixpoint is the same stable state.
            assert warm_i.routes == outcome_i.routes
            assert warm_i.catchments == outcome_i.catchments
        previous = outcome_i


def test_indexed_equals_legacy_with_clean_policies(mini):
    """Exact agreement on the hand-built topology with noiseless policy."""
    policy = PolicyModel(
        mini.graph,
        seed=0,
        policy_noise=0.0,
        loop_prevention_disabled_fraction=0.0,
    )
    indexed = RoutingSimulator(mini.graph, mini.origin, policy, core="indexed")
    legacy = RoutingSimulator(mini.graph, mini.origin, policy, core="legacy")
    for config in (
        anycast_all(mini.origin.link_ids),
        AnnouncementConfig(announced=frozenset({"l1"})),
        AnnouncementConfig(
            announced=frozenset({"l1", "l2"}), prepended=frozenset({"l2"})
        ),
    ):
        assert_outcomes_identical(
            indexed.simulate(config), legacy.simulate(config)
        )


def test_engine_outcomes_identical_across_cores_and_workers():
    """The engine produces the same outcomes with any (core, workers) pair."""
    topology = _fresh_topology(seed=3)
    origin = attach_origin(topology, num_links=4, seed=3)
    policy = PolicyModel(topology.graph, seed=3)
    rng = random.Random(99)
    configs = [_random_config(rng, topology.graph, origin) for _ in range(12)]

    reference = None
    for core in ("indexed", "legacy"):
        simulator = RoutingSimulator(topology.graph, origin, policy, core=core)
        for workers in (1, 2):
            with SimulationEngine(simulator, workers=workers) as engine:
                outcomes = engine.simulate_many(configs)
            if reference is None:
                reference = outcomes
            else:
                for got, want in zip(outcomes, reference):
                    assert_outcomes_identical(got, want)


def test_engine_batched_dispatch_matches_per_task(small_testbed):
    """dispatch_batch=1 (per-task) and auto batching agree exactly."""
    from repro.core.pipeline import SpoofTracker

    configs = SpoofTracker(small_testbed).schedule[:16]
    with SimulationEngine(
        small_testbed.simulator,
        workers=2,
        spec=small_testbed.spec,
        dispatch_batch=1,
    ) as per_task:
        a = per_task.simulate_many(configs)
        stats_a = per_task.stats.copy()
    with SimulationEngine(
        small_testbed.simulator, workers=2, spec=small_testbed.spec
    ) as batched:
        b = batched.simulate_many(configs)
        stats_b = batched.stats.copy()
    for got, want in zip(b, a):
        assert_outcomes_identical(got, want)
    # Logical accounting is scheduling-independent, batch size included.
    assert stats_a.configs_simulated == stats_b.configs_simulated
    assert stats_a.cache_hits == stats_b.cache_hits
    assert stats_a.warm_starts == stats_b.warm_starts
    assert stats_a.passes_saved == stats_b.passes_saved


def test_overridden_policy_falls_back_to_legacy():
    """A policy overriding accepts() cannot compile; the flag is honored."""

    class PickyPolicy(PolicyModel):
        def accepts(self, holder, transit_path, origin_path, learned_from):
            return super().accepts(
                holder, transit_path, origin_path, learned_from
            )

    topology = _fresh_topology(seed=17)
    origin = attach_origin(topology, num_links=3, seed=17)
    policy = PickyPolicy(topology.graph, seed=1)
    assert not policy_is_compilable(policy)
    simulator = RoutingSimulator(topology.graph, origin, policy, core="indexed")
    assert simulator.effective_core == "legacy"
    outcome = simulator.simulate(anycast_all(origin.link_ids))
    assert outcome.converged
    # And the fallback still matches an explicit-legacy run exactly.
    legacy = RoutingSimulator(topology.graph, origin, policy, core="legacy")
    assert_outcomes_identical(
        outcome, legacy.simulate(anycast_all(origin.link_ids))
    )


def test_scalar_policy_overrides_are_compiled():
    """Overriding scalar hooks (salt_for etc.) keeps the indexed core —
    and the compiled answers still match the legacy sweep exactly."""

    class DriftedSalt(PolicyModel):
        def salt_for(self, asn):
            return super().salt_for(asn) + 13

    topology = _fresh_topology(seed=23)
    origin = attach_origin(topology, num_links=3, seed=23)
    policy = DriftedSalt(topology.graph, seed=2)
    assert policy_is_compilable(policy)
    indexed = RoutingSimulator(topology.graph, origin, policy, core="indexed")
    legacy = RoutingSimulator(topology.graph, origin, policy, core="legacy")
    assert indexed.effective_core == "indexed"
    config = anycast_all(origin.link_ids)
    assert_outcomes_identical(indexed.simulate(config), legacy.simulate(config))


def test_core_env_var_and_validation(mini, monkeypatch):
    policy = PolicyModel(mini.graph, seed=0)
    monkeypatch.setenv("REPRO_SIM_CORE", "legacy")
    simulator = RoutingSimulator(mini.graph, mini.origin, policy)
    assert simulator.core == "legacy"
    monkeypatch.delenv("REPRO_SIM_CORE")
    assert RoutingSimulator(mini.graph, mini.origin, policy).core == "indexed"
    with pytest.raises(SimulationError):
        RoutingSimulator(mini.graph, mini.origin, policy, core="vectorized")


def test_simulator_pickles_without_compiled_state(mini):
    import pickle

    policy = PolicyModel(mini.graph, seed=0)
    simulator = RoutingSimulator(mini.graph, mini.origin, policy)
    baseline = simulator.simulate(anycast_all(mini.origin.link_ids))
    assert simulator._compiled is not None
    clone = pickle.loads(pickle.dumps(simulator))
    assert clone._compiled is None  # caches dropped, rebuilt on demand
    assert clone._neighbors is None
    outcome = clone.simulate(anycast_all(mini.origin.link_ids))
    assert outcome.routes == baseline.routes


@pytest.mark.parametrize("core", ["indexed", "legacy"])
def test_warm_start_bit_identical_across_prepend_deltas(core):
    """Regression guard for the stale-tail warm-start bug.

    Warm-starting a prepend-only delta from the un-prepended fixpoint
    used to seed routes whose AS-paths no longer matched what the new
    configuration announces; under deviant policies that steered the
    Gauss-Seidel iteration into a *different* stable state than a cold
    start reaches.  The stale-tail seed filter discards those seeds, so
    warm and cold runs must now agree bit-for-bit.
    """
    for seed in range(6):
        testbed = build_testbed(
            seed=seed,
            topology_params=TopologyParams(
                num_tier1=4, num_transit=25, num_stub=80, seed=seed
            ),
            num_links=5,
            num_vantages=5,
            num_probes=10,
        )
        simulator = RoutingSimulator(
            testbed.topology.graph, testbed.origin, testbed.policy, core=core
        )
        links = testbed.origin.link_ids
        base = AnnouncementConfig(announced=frozenset(links))
        base_outcome = simulator.simulate(base)
        rng = random.Random(seed + 7)
        for _ in range(4):
            delta = AnnouncementConfig(
                announced=base.announced,
                prepended=frozenset(
                    rng.sample(links, rng.randint(1, len(links)))
                ),
                prepend_count=rng.choice([1, 2, 4]),
            )
            cold = simulator.simulate(delta)
            warm = simulator.simulate(delta, warm_start=base_outcome.routes)
            assert warm.warm_started and not cold.warm_started
            assert warm.routes == cold.routes
            assert warm.catchments == cold.catchments
            # Warm starts save work but never change the answer.
            assert warm.passes <= cold.passes


def test_compiled_topology_direct_use():
    """CompiledTopology.propagate is usable standalone (what workers do)."""
    topology = _fresh_topology(seed=31)
    origin = attach_origin(topology, num_links=3, seed=31)
    policy = PolicyModel(topology.graph, seed=4)
    simulator = RoutingSimulator(topology.graph, origin, policy, core="legacy")
    compiled = CompiledTopology.compile(
        topology.graph, origin, policy, simulator._visit_order
    )
    config = anycast_all(origin.link_ids)
    outcome = compiled.propagate(
        config, None, simulator.max_passes, False, topology.graph.ases
    )
    assert_outcomes_identical(outcome, simulator.simulate(config))
