"""Tests for the amplification honeypot."""

import random

import pytest

from repro.spoof.honeypot import (
    AMPLIFICATION_FACTORS,
    AmplificationHoneypot,
    HoneypotReport,
)
from repro.spoof.sources import SourcePlacement
from repro.spoof.traffic import SpoofedTrafficGenerator

CATCHMENTS = {"l1": frozenset({1}), "l2": frozenset({2})}


def packets(count=100, seed=1):
    placement = SourcePlacement({1: 3, 2: 1})
    generator = SpoofedTrafficGenerator(
        placement, CATCHMENTS, rng=random.Random(seed), packet_size_bytes=100
    )
    return list(generator.packets(count))


class TestHoneypot:
    def test_counts_queries_per_link(self):
        honeypot = AmplificationHoneypot()
        report = honeypot.observe(packets(200))
        assert report.total_queries == 200
        assert set(report.queries_by_link) == {"l1", "l2"}
        assert report.queries_by_link["l1"] > report.queries_by_link["l2"]

    def test_byte_volumes_track_queries(self):
        honeypot = AmplificationHoneypot()
        report = honeypot.observe(packets(50))
        for link in report.queries_by_link:
            assert report.bytes_by_link[link] == pytest.approx(
                100.0 * report.queries_by_link[link]
            )

    def test_volume_fractions_sum_to_one(self):
        report = AmplificationHoneypot().observe(packets(100))
        assert sum(report.volume_fractions().values()) == pytest.approx(1.0)

    def test_empty_report_fractions(self):
        report = HoneypotReport()
        assert report.volume_fractions() == {}
        assert report.total_queries == 0

    def test_rate_limit_suppresses_responses(self):
        """AmpPot's defining behaviour: observations unthrottled, responses
        capped — the honeypot never contributes meaningful attack volume."""
        honeypot = AmplificationHoneypot(
            service="ntp", response_rate_limit_bytes=1000.0
        )
        report = honeypot.observe(packets(100))
        assert report.emitted_response_bytes <= 1000.0
        would_be = 100 * 100 * AMPLIFICATION_FACTORS["ntp"]
        assert report.suppressed_response_bytes == pytest.approx(
            would_be - report.emitted_response_bytes
        )
        assert report.total_queries == 100  # observation unaffected

    def test_zero_rate_limit_suppresses_everything(self):
        honeypot = AmplificationHoneypot(response_rate_limit_bytes=0.0)
        report = honeypot.observe(packets(10))
        assert report.emitted_response_bytes == 0.0
        assert report.suppressed_response_bytes > 0.0

    def test_service_amplification_factors(self):
        for service, factor in AMPLIFICATION_FACTORS.items():
            honeypot = AmplificationHoneypot(service=service)
            assert honeypot.amplification_factor == factor

    def test_unknown_service_rejected(self):
        with pytest.raises(ValueError, match="unknown service"):
            AmplificationHoneypot(service="quic")

    def test_negative_rate_limit_rejected(self):
        with pytest.raises(ValueError):
            AmplificationHoneypot(response_rate_limit_bytes=-1.0)
