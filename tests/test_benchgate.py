"""Edge-case tests for the benchmark gate's slack floor and CPU gating.

The relative-tolerance gate alone flaps on real timers: sub-millisecond
baselines regress on scheduler noise, and zero baselines turn any
positive reading into an infinite-ratio failure.  These tests pin the
absolute-slack floor, the zero-baseline path, and the CPU-aware
parallel-vs-serial gate introduced alongside the indexed simulation
core.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.benchgate import (
    DEFAULT_ABSOLUTE_SLACK,
    Regression,
    check_benchmarks,
    write_history,
)


def _write_bench(tmp_path, name, metrics):
    (tmp_path / name).write_text(json.dumps(metrics, indent=2))


def _baseline_then_fresh(tmp_path, baseline, fresh):
    _write_bench(tmp_path, "BENCH_a.json", baseline)
    write_history(str(tmp_path))
    _write_bench(tmp_path, "BENCH_a.json", fresh)


class TestAbsoluteSlack:
    def test_sub_slack_delta_passes_at_any_ratio(self, tmp_path):
        # 13x slower, but the delta is ~3.6ms — timer noise, not a regression.
        _baseline_then_fresh(
            tmp_path, {"replay_seconds": 0.0003}, {"replay_seconds": 0.004}
        )
        assert check_benchmarks(str(tmp_path)).passed

    def test_above_slack_and_tolerance_fails(self, tmp_path):
        _baseline_then_fresh(
            tmp_path, {"sim_seconds": 0.5}, {"sim_seconds": 0.7}
        )
        result = check_benchmarks(str(tmp_path))
        assert not result.passed
        assert result.regressions[0].metric == "sim_seconds"

    def test_above_slack_within_tolerance_passes(self, tmp_path):
        # 10% slower with a 100ms delta: past the slack floor but inside
        # the 15% relative tolerance.
        _baseline_then_fresh(
            tmp_path, {"sim_seconds": 1.0}, {"sim_seconds": 1.1}
        )
        assert check_benchmarks(str(tmp_path)).passed

    def test_slack_is_configurable(self, tmp_path):
        _baseline_then_fresh(
            tmp_path, {"replay_seconds": 0.0003}, {"replay_seconds": 0.004}
        )
        strict = check_benchmarks(str(tmp_path), absolute_slack=0.0)
        assert not strict.passed
        assert "slack 0ms" in strict.summary_lines()[0]

    def test_negative_slack_rejected(self, tmp_path):
        _write_bench(tmp_path, "BENCH_a.json", {"x_seconds": 1.0})
        write_history(str(tmp_path))
        with pytest.raises(ValueError):
            check_benchmarks(str(tmp_path), absolute_slack=-0.001)

    def test_zero_baseline_tiny_reading_passes(self, tmp_path):
        # A metric that used to round to 0.0 and now measures 2ms is fine.
        _baseline_then_fresh(
            tmp_path, {"replay_seconds": 0.0}, {"replay_seconds": 0.002}
        )
        assert check_benchmarks(str(tmp_path)).passed

    def test_zero_baseline_large_reading_fails_readably(self, tmp_path):
        _baseline_then_fresh(
            tmp_path, {"replay_seconds": 0.0}, {"replay_seconds": 0.25}
        )
        result = check_benchmarks(str(tmp_path))
        assert not result.passed
        described = result.regressions[0].describe()
        assert "inf" not in described
        assert "+250.00ms" in described

    def test_describe_relative_for_positive_baseline(self):
        reg = Regression("BENCH_a.json", "x_seconds", 1.0, 1.5)
        assert "(+50.0%)" in reg.describe()


class TestParallelVsSerialGate:
    RECORD = {
        "serial_cold_seconds": 0.2,
        "parallel2_cold_seconds": 0.5,
    }

    def test_skipped_on_single_core_with_reason(self, tmp_path):
        _write_bench(
            tmp_path, "BENCH_e.json", dict(self.RECORD, cpu_count=1)
        )
        write_history(str(tmp_path))
        result = check_benchmarks(str(tmp_path))
        assert result.passed  # parallel losing is expected on one core
        assert any(
            "parallel-vs-serial" in reason and "cpu_count=1" in reason
            for reason in result.skipped
        )
        assert any(
            "skipped:" in line for line in result.summary_lines()
        )

    def test_skipped_when_cpu_count_missing(self, tmp_path):
        _write_bench(tmp_path, "BENCH_e.json", dict(self.RECORD))
        write_history(str(tmp_path))
        result = check_benchmarks(str(tmp_path))
        assert result.passed
        assert any("cpu_count=None" in reason for reason in result.skipped)

    def test_slower_parallel_regresses_on_multicore(self, tmp_path):
        _write_bench(
            tmp_path, "BENCH_e.json", dict(self.RECORD, cpu_count=8)
        )
        write_history(str(tmp_path))
        result = check_benchmarks(str(tmp_path))
        assert not result.passed
        metrics = [reg.metric for reg in result.regressions]
        assert "parallel2_cold_seconds vs serial_cold_seconds" in metrics

    def test_faster_parallel_passes_on_multicore(self, tmp_path):
        _write_bench(
            tmp_path,
            "BENCH_e.json",
            {
                "serial_cold_seconds": 0.5,
                "parallel2_cold_seconds": 0.3,
                "cpu_count": 8,
            },
        )
        write_history(str(tmp_path))
        result = check_benchmarks(str(tmp_path))
        assert result.passed
        assert not result.skipped

    def test_unpaired_parallel_metric_is_ignored(self, tmp_path):
        _write_bench(
            tmp_path,
            "BENCH_e.json",
            {"parallel2_cold_seconds": 0.4, "cpu_count": 8},
        )
        write_history(str(tmp_path))
        result = check_benchmarks(str(tmp_path))
        assert result.passed
        assert not result.skipped  # nothing to pair, nothing to report


class TestCliAbsoluteSlack:
    def test_cli_slack_flag(self, tmp_path, capsys):
        _write_bench(tmp_path, "BENCH_a.json", {"replay_seconds": 0.0003})
        assert (
            main(["bench-check", "--bench-dir", str(tmp_path), "--update"])
            == 0
        )
        capsys.readouterr()
        _write_bench(tmp_path, "BENCH_a.json", {"replay_seconds": 0.004})
        # Default slack absorbs the sub-5ms delta...
        assert main(["bench-check", "--bench-dir", str(tmp_path)]) == 0
        assert "bench-check: OK" in capsys.readouterr().out
        # ...an explicit zero slack restores the strict relative gate.
        assert (
            main(
                [
                    "bench-check",
                    "--bench-dir",
                    str(tmp_path),
                    "--absolute-slack",
                    "0",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "bench-check: FAIL" in out

    def test_committed_artifacts_report_single_core_skip_or_pass(self, capsys):
        # The committed BENCH_engine.json was recorded on this repo's CI
        # container; whatever its core count, bench-check must pass and
        # must never silently drop the parallel comparison.
        assert main(["bench-check"]) == 0
        out = capsys.readouterr().out
        assert ("skipped:" in out) or ("vs serial" not in out)

    def test_default_slack_constant(self):
        assert DEFAULT_ABSOLUTE_SLACK == pytest.approx(0.005)
