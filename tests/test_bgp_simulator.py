"""Tests for BGP route propagation on the hand-built mini Internet.

Mini-Internet structure (see conftest)::

        T1 ========= T2
       /  \\          |
      P1   M         P2
     / \\   \\        / \\
    o   A    C      o   B
"""

import pytest

from repro.bgp.announcement import AnnouncementConfig, anycast_all
from repro.bgp.policy import PolicyModel
from repro.bgp.simulator import RoutingSimulator
from repro.errors import SimulationError
from repro.topology.relationships import Relationship
from tests.conftest import A, B, C, M, ORIGIN, P1, P2, T1, T2, build_mini_internet


def simulate(config, **policy_kwargs):
    mini = build_mini_internet()
    defaults = dict(policy_noise=0.0, loop_prevention_disabled_fraction=0.0)
    defaults.update(policy_kwargs)
    policy = PolicyModel(mini.graph, seed=0, **defaults)
    simulator = RoutingSimulator(mini.graph, mini.origin, policy)
    return simulator.simulate(config)


BOTH = anycast_all(["l1", "l2"])


class TestAnycastBaseline:
    def test_everyone_has_a_route(self):
        outcome = simulate(BOTH)
        assert outcome.covered_ases == frozenset(
            {P1, P2, T1, T2, A, B, C, M}
        )
        assert outcome.converged

    def test_catchments_partition_sources(self):
        outcome = simulate(BOTH)
        union = outcome.catchments["l1"] | outcome.catchments["l2"]
        assert union == outcome.covered_ases
        assert not outcome.catchments["l1"] & outcome.catchments["l2"]

    def test_near_sources_use_near_link(self):
        outcome = simulate(BOTH)
        assert outcome.catchment_of(A) == "l1"
        assert outcome.catchment_of(P1) == "l1"
        assert outcome.catchment_of(B) == "l2"
        assert outcome.catchment_of(P2) == "l2"

    def test_customer_route_beats_peer_route_at_tier1(self):
        # T1 hears origin via customer P1 (and M) and via peer T2; the
        # customer route must win.
        outcome = simulate(BOTH)
        route = outcome.route(T1)
        assert route.relationship is Relationship.CUSTOMER
        assert route.learned_from == P1
        assert outcome.catchment_of(T1) == "l1"

    def test_c_routes_through_its_transit_chain(self):
        # C's only exit is M → T1 → P1 → origin (valley-free).
        outcome = simulate(BOTH)
        assert outcome.forwarding_path(C) == (C, M, T1, P1, ORIGIN)
        assert outcome.catchment_of(C) == "l1"

    def test_as_paths_end_at_origin(self):
        outcome = simulate(BOTH)
        for asn, route in outcome.routes.items():
            assert route.as_path[-1] == ORIGIN

    def test_forwarding_paths_loop_free(self):
        outcome = simulate(BOTH)
        for asn in outcome.covered_ases:
            path = outcome.forwarding_path(asn)
            assert len(path) == len(set(path))
            assert path[-1] == ORIGIN

    def test_forwarding_path_of_origin(self):
        outcome = simulate(BOTH)
        assert outcome.forwarding_path(ORIGIN) == (ORIGIN,)

    def test_forwarding_path_unrouted_raises(self):
        outcome = simulate(AnnouncementConfig(announced=frozenset(["l2"])))
        # With only l2 announced, A still reaches via T1–T2 peering?  No:
        # peer routes are not exported to peers, so T1 gets the route from
        # T2 only if ... verify below in withdrawal tests; here just check
        # unrouted ASes raise.
        unrouted = [
            asn for asn in (A, P1, T1, M, C) if outcome.route(asn) is None
        ]
        for asn in unrouted:
            with pytest.raises(SimulationError, match="holds no route"):
                outcome.forwarding_path(asn)

    def test_forwarding_path_unknown_as_distinguished_from_unrouted(self):
        # Regression: an ASN absent from the topology used to raise the
        # same "no route" error as a real-but-unrouted AS.  The two are
        # different failures and must read differently.
        outcome = simulate(BOTH)
        with pytest.raises(SimulationError, match="not part of the simulated topology"):
            outcome.forwarding_path(999999)
        withdrawn = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1"]), poisoned={"l1": frozenset([T1])}
            ),
            tier1_leak_filtering=False,
        )
        assert withdrawn.route(C) is None
        with pytest.raises(SimulationError, match="holds no route"):
            withdrawn.forwarding_path(C)


class TestWithdrawal:
    def test_withdraw_l1_moves_everyone_reachable_to_l2(self):
        outcome = simulate(AnnouncementConfig(announced=frozenset(["l2"])))
        for asn, route in outcome.routes.items():
            assert route.link_id == "l2"
        # B and P2 are certainly covered.
        assert outcome.catchment_of(B) == "l2"
        assert outcome.catchment_of(P2) == "l2"

    def test_valley_free_limits_reachability_on_withdrawal(self):
        # Announcing only through l2: T2 learns from customer P2 and
        # exports to peer T1 (customer route → exported everywhere).
        # T1 then exports to customers P1 and M (peer route → customers
        # only), so A and C regain reachability through the valley-free
        # path, and everyone is covered.
        outcome = simulate(AnnouncementConfig(announced=frozenset(["l2"])))
        assert outcome.catchment_of(T1) == "l2"
        assert outcome.catchment_of(A) == "l2"
        assert outcome.forwarding_path(A) == (A, P1, T1, T2, P2, ORIGIN)

    def test_withdrawal_uncovers_alternate_routes(self):
        baseline = simulate(BOTH)
        withdrawn = simulate(AnnouncementConfig(announced=frozenset(["l2"])))
        moved = [
            asn
            for asn in baseline.covered_ases
            if withdrawn.catchment_of(asn) is not None
            and withdrawn.catchment_of(asn) != baseline.catchment_of(asn)
        ]
        # Everyone previously on l1 had to move.
        assert set(moved) >= {A, P1, T1, M, C}


class TestPrepending:
    def test_prepending_shifts_tiebroken_ases(self):
        """T2 hears customer route via P2 (length 2) and peer route via T1;
        customer wins regardless.  But B is firmly l2 and A firmly l1;
        the AS that can flip via length is T1/T2's peer choice — build a
        tie instead at the tier-1s using prepending on l1 and check that
        catchments change somewhere."""
        baseline = simulate(BOTH)
        prepended = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1", "l2"]),
                prepended=frozenset(["l1"]),
                prepend_count=4,
            )
        )
        # Prepending never breaks coverage.
        assert prepended.covered_ases == baseline.covered_ases
        # The prepended announcement inflates l1 paths: no AS that kept a
        # same-relationship choice should now prefer a *longer* l1 route.
        for asn in prepended.covered_ases:
            route = prepended.route(asn)
            if route.link_id == "l1":
                # Everyone still on l1 is there because LocalPref pins them
                # (customer routes at P1/T1's cone), not path length.
                assert route.relationship in (
                    Relationship.CUSTOMER,
                    Relationship.PROVIDER,
                )

    def test_prepend_increases_observed_path_length(self):
        prepended = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1"]),
                prepended=frozenset(["l1"]),
                prepend_count=4,
            )
        )
        route = prepended.route(P1)
        assert route.as_path == (ORIGIN,) * 5


class TestPoisoning:
    def test_poisoned_as_discards_route(self):
        # Poison T1 on l1; announce only l1.  T1 must reject the route and
        # everything behind T1 (M, C) loses reachability; A keeps l1 via P1.
        outcome = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1"]), poisoned={"l1": frozenset([T1])}
            ),
            tier1_leak_filtering=False,
        )
        assert outcome.route(T1) is None
        assert outcome.route(M) is None
        assert outcome.route(C) is None
        assert outcome.catchment_of(A) == "l1"

    def test_poisoning_moves_catchments_in_anycast(self):
        # Poison T1 on l1 while announcing both links: T1 and its cone
        # must switch to l2 (through T2).
        baseline = simulate(BOTH, tier1_leak_filtering=False)
        poisoned = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1", "l2"]),
                poisoned={"l1": frozenset([T1])},
            ),
            tier1_leak_filtering=False,
        )
        assert baseline.catchment_of(T1) == "l1"
        assert poisoned.catchment_of(T1) == "l2"
        assert poisoned.catchment_of(C) == "l2"
        # A is P1's customer: still l1.
        assert poisoned.catchment_of(A) == "l1"

    def test_disabled_loop_prevention_ignores_poison(self):
        outcome = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1"]), poisoned={"l1": frozenset([T1])}
            ),
            loop_prevention_disabled_fraction=1.0,
            tier1_leak_filtering=False,
        )
        assert outcome.route(T1) is not None

    def test_tier1_leak_filter_blocks_tier1_poison_propagation(self):
        # Poisoning T2 on l1: the poisoned path contains tier-1 T2, so
        # tier-1 T1 (receiving it from customer P1) filters it.
        outcome = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1"]), poisoned={"l1": frozenset([T2])}
            ),
            tier1_leak_filtering=True,
        )
        assert outcome.route(T1) is None  # filtered, not just poisoned
        assert outcome.route(A) is not None  # below the filter, unaffected

    def test_poison_stuffing_visible_in_as_path(self):
        outcome = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1"]), poisoned={"l1": frozenset([666])}
            ),
        )
        assert outcome.route(P1).as_path == (ORIGIN, 666, ORIGIN)


class TestSimulatorValidation:
    def test_unknown_link_rejected(self):
        with pytest.raises(SimulationError, match="unknown links"):
            simulate(AnnouncementConfig(announced=frozenset(["nope"])))

    def test_origin_must_be_attached(self):
        mini = build_mini_internet()
        mini.graph.remove_link(ORIGIN, P1)
        policy = PolicyModel(mini.graph, policy_noise=0.0)
        with pytest.raises(SimulationError, match="not linked"):
            RoutingSimulator(mini.graph, mini.origin, policy)

    def test_max_passes_must_be_positive(self):
        mini = build_mini_internet()
        with pytest.raises(SimulationError):
            RoutingSimulator(mini.graph, mini.origin, max_passes=0)

    def test_outcome_records_convergence_stats(self):
        outcome = simulate(BOTH)
        assert outcome.passes >= 2
        assert outcome.decision_changes >= len(outcome.covered_ases)
