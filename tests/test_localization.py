"""Tests for spoofed-volume attribution to clusters."""

import pytest

from repro.core.clustering import clusters_from_catchment_history
from repro.core.localization import (
    LocalizationQuality,
    SpoofLocalizer,
    estimate_cluster_volumes,
    traffic_fraction_by_cluster_size,
)
from repro.errors import ClusteringError
from repro.spoof.sources import SourcePlacement
from repro.spoof.traffic import link_volumes

# Two configurations whose catchments fully separate four sources into
# four singleton clusters.
HISTORY = [
    {"l1": frozenset({1, 2}), "l2": frozenset({3, 4})},
    {"l1": frozenset({1, 3}), "l2": frozenset({2, 4})},
]
UNIVERSE = [1, 2, 3, 4]


def final_clusters():
    return clusters_from_catchment_history(UNIVERSE, HISTORY).clusters()


class TestEstimateVolumes:
    def test_recovers_single_source(self):
        placement = SourcePlacement({3: 1})
        volumes = [link_volumes(placement, catchments) for catchments in HISTORY]
        clusters = final_clusters()
        estimates, residual = estimate_cluster_volumes(clusters, HISTORY, volumes)
        assert residual == pytest.approx(0.0, abs=1e-9)
        for cluster, estimate in zip(clusters, estimates):
            expected = 1.0 if cluster == frozenset({3}) else 0.0
            assert estimate == pytest.approx(expected, abs=1e-9)

    def test_recovers_multiple_sources(self):
        placement = SourcePlacement({1: 1, 4: 3})
        volumes = [link_volumes(placement, catchments) for catchments in HISTORY]
        clusters = final_clusters()
        estimates, _ = estimate_cluster_volumes(clusters, HISTORY, volumes)
        by_cluster = dict(zip(clusters, estimates))
        assert by_cluster[frozenset({1})] == pytest.approx(0.25, abs=1e-9)
        assert by_cluster[frozenset({4})] == pytest.approx(0.75, abs=1e-9)

    def test_estimates_nonnegative(self):
        placement = SourcePlacement({2: 1})
        volumes = [link_volumes(placement, catchments) for catchments in HISTORY]
        estimates, _ = estimate_cluster_volumes(final_clusters(), HISTORY, volumes)
        assert all(estimate >= 0.0 for estimate in estimates)

    def test_rejects_mismatched_histories(self):
        with pytest.raises(ClusteringError):
            estimate_cluster_volumes(final_clusters(), HISTORY, [{}])

    def test_rejects_empty_clusters(self):
        with pytest.raises(ClusteringError):
            estimate_cluster_volumes([], HISTORY, [{}, {}])


class TestSpoofLocalizer:
    def test_ranks_true_source_first(self):
        placement = SourcePlacement({4: 5})
        volumes = [link_volumes(placement, catchments) for catchments in HISTORY]
        localizer = SpoofLocalizer(final_clusters(), HISTORY)
        result = localizer.localize(volumes)
        assert result.ranked[0].members == frozenset({4})
        assert result.ranked[0].estimated_volume > 0.9

    def test_suspect_ases_cover_volume(self):
        placement = SourcePlacement({1: 1, 2: 1})
        volumes = [link_volumes(placement, catchments) for catchments in HISTORY]
        result = SpoofLocalizer(final_clusters(), HISTORY).localize(volumes)
        suspects = result.suspect_ases(volume_fraction=0.99)
        assert {1, 2} <= suspects

    def test_suspect_ases_empty_when_no_volume(self):
        volumes = [{"l1": 0.0, "l2": 0.0} for _ in HISTORY]
        result = SpoofLocalizer(final_clusters(), HISTORY).localize(volumes)
        assert result.suspect_ases() == frozenset()

    def test_suspect_fraction_validation(self):
        volumes = [{"l1": 0.0, "l2": 0.0} for _ in HISTORY]
        result = SpoofLocalizer(final_clusters(), HISTORY).localize(volumes)
        with pytest.raises(ValueError):
            result.suspect_ases(volume_fraction=0.0)

    def test_evaluate_against_placement(self):
        placement = SourcePlacement({4: 5})
        volumes = [link_volumes(placement, catchments) for catchments in HISTORY]
        result = SpoofLocalizer(final_clusters(), HISTORY).localize(volumes)
        quality = result.evaluate_against(placement)
        assert quality.recall == 1.0
        assert quality.precision == 1.0

    def test_top_limits_results(self):
        placement = SourcePlacement({4: 5})
        volumes = [link_volumes(placement, catchments) for catchments in HISTORY]
        result = SpoofLocalizer(final_clusters(), HISTORY).localize(volumes)
        assert len(result.top(2)) == 2


class TestQuality:
    def test_metrics(self):
        quality = LocalizationQuality(
            true_sources=4, sources_found=3, suspect_set_size=6
        )
        assert quality.recall == pytest.approx(0.75)
        assert quality.precision == pytest.approx(0.5)

    def test_degenerate(self):
        quality = LocalizationQuality(0, 0, 0)
        assert quality.recall == 1.0
        assert quality.precision == 1.0


class TestTrafficFractionBySize:
    def test_single_source_all_in_its_cluster_size(self):
        clusters = [frozenset({1}), frozenset({2, 3}), frozenset({4})]
        placement = SourcePlacement({2: 1})
        fractions = traffic_fraction_by_cluster_size(placement, clusters)
        assert fractions[1] == pytest.approx(0.0)
        assert fractions[2] == pytest.approx(1.0)

    def test_cumulative_and_monotonic(self):
        clusters = [frozenset({1}), frozenset({2, 3}), frozenset({4, 5, 6})]
        placement = SourcePlacement({1: 1, 2: 1, 4: 2})
        fractions = traffic_fraction_by_cluster_size(placement, clusters)
        values = [fractions[size] for size in sorted(fractions)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_max_size_truncates(self):
        clusters = [frozenset({1}), frozenset(range(2, 10))]
        placement = SourcePlacement({1: 1, 2: 1})
        fractions = traffic_fraction_by_cluster_size(placement, clusters, max_size=3)
        assert max(fractions) == 3
        assert fractions[3] == pytest.approx(0.5)
