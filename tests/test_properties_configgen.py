"""Property-based tests for schedule generation and graph invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configgen import (
    expected_location_count,
    expected_prepend_count,
    location_configs,
    prepend_configs,
)
from repro.topology.generator import TopologyParams, generate_topology


def binomial(n, k):
    return math.comb(n, k)


link_counts = st.integers(min_value=1, max_value=9)
removals = st.integers(min_value=0, max_value=6)


class TestScheduleCountFormulas:
    @given(link_counts, removals)
    def test_location_count_matches_formula(self, num_links, max_removed):
        links = [f"l{i}" for i in range(num_links)]
        configs = location_configs(links, max_removed)
        assert len(configs) == expected_location_count(num_links, max_removed)
        deepest = min(max_removed, num_links - 1)
        manual = sum(
            binomial(num_links, num_links - removed)
            for removed in range(deepest + 1)
        )
        assert len(configs) == manual

    @given(link_counts, removals)
    def test_prepend_count_matches_formula(self, num_links, max_removed):
        links = [f"l{i}" for i in range(num_links)]
        bases = location_configs(links, max_removed)
        prepends = prepend_configs(bases, max_prepend_size=1)
        assert len(prepends) == expected_prepend_count(num_links, max_removed)

    @given(link_counts, removals)
    def test_all_configs_distinct(self, num_links, max_removed):
        links = [f"l{i}" for i in range(num_links)]
        configs = location_configs(links, max_removed)
        configs += prepend_configs(configs, max_prepend_size=1)
        keys = {config.key() for config in configs}
        assert len(keys) == len(configs)

    @given(link_counts, removals)
    def test_sizes_never_below_one(self, num_links, max_removed):
        links = [f"l{i}" for i in range(num_links)]
        for config in location_configs(links, max_removed):
            assert 1 <= len(config.announced) <= num_links

    @given(link_counts)
    def test_first_config_is_full_anycast(self, num_links):
        links = [f"l{i}" for i in range(num_links)]
        configs = location_configs(links, 2)
        assert configs[0].announced == frozenset(links)


class TestGraphInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=5, max_value=25),
        st.integers(min_value=10, max_value=60),
    )
    def test_generated_topology_invariants(
        self, seed, num_tier1, num_transit, num_stub
    ):
        topo = generate_topology(
            TopologyParams(
                num_tier1=num_tier1,
                num_transit=num_transit,
                num_stub=num_stub,
                seed=seed,
            )
        )
        graph = topo.graph
        graph.validate()
        # Tier-1s are exactly the provider-free ASes.
        assert set(topo.tier1) == set(graph.tier1_ases())
        # Customer cones nest: a provider's cone contains each customer's.
        for asn in topo.transit[:5]:
            cone = graph.customer_cone(asn)
            for customer in graph.customers(asn):
                assert graph.customer_cone(customer) <= cone
        # Stubs have empty customer cones beyond themselves.
        for asn in topo.stubs[:10]:
            assert graph.customer_cone(asn) == frozenset({asn})
        # BFS distances: every neighbor differs by at most 1.
        sources = topo.tier1[:1]
        distances = graph.hop_distances(sources)
        for asn in list(graph.ases)[:50]:
            for neighbor in graph.neighbors(asn):
                assert abs(distances[asn] - distances[neighbor]) <= 1
