"""Tests for the caching / parallel simulation engine."""

import pytest

from repro.bgp.announcement import AnnouncementConfig, anycast_all
from repro.core.engine import EngineStats, SimulationEngine, warm_start_parent
from repro.core.pipeline import SpoofTracker
from repro.errors import SimulationError
from tests.conftest import T1


LINKS = ["l1", "l2"]


class TestWarmStartParent:
    def test_anycast_all_has_no_parent(self):
        assert warm_start_parent(anycast_all(LINKS), LINKS) is None

    def test_subset_locations_seeds_from_anycast_all(self):
        config = AnnouncementConfig(announced=frozenset(["l1"]))
        parent = warm_start_parent(config, LINKS)
        assert parent is not None
        assert parent.announced == frozenset(LINKS)
        assert not parent.prepended and not parent.poisoned

    def test_manipulations_seed_from_same_locations(self):
        for config in (
            AnnouncementConfig(
                announced=frozenset(["l1"]), prepended=frozenset(["l1"])
            ),
            AnnouncementConfig(
                announced=frozenset(["l1"]), poisoned={"l1": frozenset([T1])}
            ),
            AnnouncementConfig(
                announced=frozenset(["l1"]), no_export={"l1": frozenset([T1])}
            ),
        ):
            parent = warm_start_parent(config, LINKS)
            assert parent.announced == config.announced
            assert not parent.prepended
            assert not parent.poisoned and not parent.no_export

    def test_parent_ignores_label_metadata(self):
        a = AnnouncementConfig(announced=frozenset(["l1"]), label="x")
        b = AnnouncementConfig(announced=frozenset(["l1"]), label="y")
        assert warm_start_parent(a, LINKS).key() == warm_start_parent(b, LINKS).key()


class TestCaching:
    def test_repeat_runs_zero_new_fixpoints(self, mini_simulator):
        engine = SimulationEngine(mini_simulator)
        configs = [
            anycast_all(LINKS),
            AnnouncementConfig(announced=frozenset(["l1"])),
            AnnouncementConfig(
                announced=frozenset(["l1", "l2"]), prepended=frozenset(["l1"])
            ),
        ]
        first = engine.simulate_many(configs)
        simulated = engine.stats.configs_simulated
        assert simulated >= len(configs)
        second = engine.simulate_many(configs)
        assert engine.stats.configs_simulated == simulated  # all cache hits
        assert engine.stats.cache_hits >= len(configs)
        for a, b in zip(first, second):
            assert a is b

    def test_cache_key_ignores_label_and_phase(self, mini_simulator):
        engine = SimulationEngine(mini_simulator)
        a = engine.simulate(anycast_all(LINKS, label="first"))
        before = engine.stats.configs_simulated
        b = engine.simulate(
            AnnouncementConfig(
                announced=frozenset(LINKS), label="second", phase="locations"
            )
        )
        assert engine.stats.configs_simulated == before
        assert a is b

    def test_duplicates_within_batch_counted_as_hits(self, mini_simulator):
        engine = SimulationEngine(mini_simulator)
        config = anycast_all(LINKS)
        outcomes = engine.simulate_many([config, config, config])
        assert outcomes[0] is outcomes[1] is outcomes[2]
        assert engine.stats.cache_hits == 2
        assert engine.stats.configs_requested == 3

    def test_cached_outcome_never_simulates(self, mini_simulator):
        engine = SimulationEngine(mini_simulator)
        config = anycast_all(LINKS)
        assert engine.cached_outcome(config) is None
        outcome = engine.simulate(config)
        assert engine.cached_outcome(config) is outcome
        engine.clear_cache()
        assert engine.cached_outcome(config) is None

    def test_lru_eviction_bounds_cache(self, mini_simulator):
        engine = SimulationEngine(mini_simulator, warm_start=False, cache_size=1)
        first = anycast_all(LINKS)
        second = AnnouncementConfig(announced=frozenset(["l1"]))
        engine.simulate(first)
        engine.simulate(second)  # evicts first
        assert engine.cached_outcome(first) is None
        assert engine.cached_outcome(second) is not None

    def test_on_demand_parent_is_cached(self, mini_simulator):
        engine = SimulationEngine(mini_simulator)
        child = AnnouncementConfig(
            announced=frozenset(["l1"]), prepended=frozenset(["l1"])
        )
        engine.simulate(child)
        # Both the locations parent and the anycast-all grandparent were
        # simulated en route and must now be hits.
        before = engine.stats.configs_simulated
        engine.simulate(AnnouncementConfig(announced=frozenset(["l1"])))
        engine.simulate(anycast_all(LINKS))
        assert engine.stats.configs_simulated == before

    def test_validation(self, mini_simulator):
        with pytest.raises(SimulationError):
            SimulationEngine(mini_simulator, workers=0)
        with pytest.raises(SimulationError):
            SimulationEngine(mini_simulator, cache_size=0)


class TestWarmStartCorrectness:
    def test_warm_equals_cold_on_mini(self, mini_simulator):
        configs = [
            anycast_all(LINKS),
            AnnouncementConfig(announced=frozenset(["l1"])),
            AnnouncementConfig(announced=frozenset(["l2"])),
            AnnouncementConfig(
                announced=frozenset(LINKS), prepended=frozenset(["l1"])
            ),
            AnnouncementConfig(
                announced=frozenset(LINKS), poisoned={"l1": frozenset([T1])}
            ),
        ]
        warm = SimulationEngine(mini_simulator, warm_start=True)
        cold = SimulationEngine(mini_simulator, warm_start=False)
        for a, b in zip(warm.simulate_many(configs), cold.simulate_many(configs)):
            assert a.routes == b.routes
            assert a.catchments == b.catchments
        assert warm.stats.warm_starts > 0
        assert cold.stats.warm_starts == 0

    def test_warm_equals_cold_on_generated_schedule(self, small_testbed):
        tracker = SpoofTracker(small_testbed)
        configs = tracker.schedule[:25]
        warm = SimulationEngine(small_testbed.simulator, warm_start=True)
        cold = SimulationEngine(small_testbed.simulator, warm_start=False)
        for a, b in zip(warm.simulate_many(configs), cold.simulate_many(configs)):
            assert a.routes == b.routes

    def test_direct_warm_start_api(self, mini_simulator):
        base = mini_simulator.simulate(anycast_all(LINKS))
        config = AnnouncementConfig(announced=frozenset(["l2"]))
        warm = mini_simulator.simulate(config, warm_start=base.routes)
        cold = mini_simulator.simulate(config)
        assert warm.warm_started and not cold.warm_started
        assert warm.routes == cold.routes
        assert warm.catchments == cold.catchments


class TestStats:
    def test_since_reports_deltas(self, mini_simulator):
        engine = SimulationEngine(mini_simulator)
        engine.simulate(anycast_all(LINKS))
        snapshot = engine.stats.copy()
        engine.simulate(anycast_all(LINKS))  # hit
        delta = engine.stats.since(snapshot)
        assert delta.configs_requested == 1
        assert delta.configs_simulated == 0
        assert delta.cache_hits == 1

    def test_summary_renders(self):
        text = EngineStats(configs_simulated=3, configs_requested=5).summary()
        assert "3 simulated / 5 requested" in text


class TestSerialParallelEquivalence:
    def test_parallel_run_is_bit_identical(self, small_testbed):
        serial = SpoofTracker(small_testbed, workers=1)
        parallel = SpoofTracker(small_testbed, workers=2)
        try:
            a = serial.run(max_configs=12, split_threshold=5, split_budget=8)
            b = parallel.run(max_configs=12, split_threshold=5, split_budget=8)
        finally:
            parallel.engine.close()
        assert a.universe == b.universe
        assert a.catchment_history == b.catchment_history
        assert a.clusters == b.clusters
        assert a.steps == b.steps
        assert b.engine_stats.configs_simulated > 0

    def test_parallel_engine_matches_serial_routes(self, small_testbed):
        tracker = SpoofTracker(small_testbed)
        configs = tracker.schedule[:10]
        serial = SimulationEngine(small_testbed.simulator, workers=1)
        with SimulationEngine(
            small_testbed.simulator, workers=2, spec=small_testbed.spec
        ) as parallel:
            fanned = parallel.simulate_many(configs)
        plain = serial.simulate_many(configs)
        for a, b in zip(plain, fanned):
            assert a.routes == b.routes
            assert a.catchments == b.catchments
