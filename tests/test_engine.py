"""Tests for the caching / parallel simulation engine."""

import pytest

from repro.bgp.announcement import AnnouncementConfig, anycast_all
from repro.core.engine import EngineStats, SimulationEngine, warm_start_parent
from repro.core.pipeline import SpoofTracker
from repro.errors import SimulationError
from tests.conftest import T1


LINKS = ["l1", "l2"]


class TestWarmStartParent:
    def test_anycast_all_has_no_parent(self):
        assert warm_start_parent(anycast_all(LINKS), LINKS) is None

    def test_subset_locations_seeds_from_anycast_all(self):
        config = AnnouncementConfig(announced=frozenset(["l1"]))
        parent = warm_start_parent(config, LINKS)
        assert parent is not None
        assert parent.announced == frozenset(LINKS)
        assert not parent.prepended and not parent.poisoned

    def test_manipulations_seed_from_same_locations(self):
        for config in (
            AnnouncementConfig(
                announced=frozenset(["l1"]), prepended=frozenset(["l1"])
            ),
            AnnouncementConfig(
                announced=frozenset(["l1"]), poisoned={"l1": frozenset([T1])}
            ),
            AnnouncementConfig(
                announced=frozenset(["l1"]), no_export={"l1": frozenset([T1])}
            ),
        ):
            parent = warm_start_parent(config, LINKS)
            assert parent.announced == config.announced
            assert not parent.prepended
            assert not parent.poisoned and not parent.no_export

    def test_parent_ignores_label_metadata(self):
        a = AnnouncementConfig(announced=frozenset(["l1"]), label="x")
        b = AnnouncementConfig(announced=frozenset(["l1"]), label="y")
        assert warm_start_parent(a, LINKS).key() == warm_start_parent(b, LINKS).key()


class TestCaching:
    def test_repeat_runs_zero_new_fixpoints(self, mini_simulator):
        engine = SimulationEngine(mini_simulator)
        configs = [
            anycast_all(LINKS),
            AnnouncementConfig(announced=frozenset(["l1"])),
            AnnouncementConfig(
                announced=frozenset(["l1", "l2"]), prepended=frozenset(["l1"])
            ),
        ]
        first = engine.simulate_many(configs)
        simulated = engine.stats.configs_simulated
        assert simulated >= len(configs)
        second = engine.simulate_many(configs)
        assert engine.stats.configs_simulated == simulated  # all cache hits
        assert engine.stats.cache_hits >= len(configs)
        for a, b in zip(first, second):
            assert a is b

    def test_cache_key_ignores_label_and_phase(self, mini_simulator):
        engine = SimulationEngine(mini_simulator)
        a = engine.simulate(anycast_all(LINKS, label="first"))
        before = engine.stats.configs_simulated
        b = engine.simulate(
            AnnouncementConfig(
                announced=frozenset(LINKS), label="second", phase="locations"
            )
        )
        assert engine.stats.configs_simulated == before
        assert a is b

    def test_duplicates_within_batch_counted_as_hits(self, mini_simulator):
        engine = SimulationEngine(mini_simulator)
        config = anycast_all(LINKS)
        outcomes = engine.simulate_many([config, config, config])
        assert outcomes[0] is outcomes[1] is outcomes[2]
        assert engine.stats.cache_hits == 2
        assert engine.stats.configs_requested == 3

    def test_cached_outcome_never_simulates(self, mini_simulator):
        engine = SimulationEngine(mini_simulator)
        config = anycast_all(LINKS)
        assert engine.cached_outcome(config) is None
        outcome = engine.simulate(config)
        assert engine.cached_outcome(config) is outcome
        engine.clear_cache()
        assert engine.cached_outcome(config) is None

    def test_lru_eviction_bounds_cache(self, mini_simulator):
        engine = SimulationEngine(mini_simulator, warm_start=False, cache_size=1)
        first = anycast_all(LINKS)
        second = AnnouncementConfig(announced=frozenset(["l1"]))
        engine.simulate(first)
        engine.simulate(second)  # evicts first
        assert engine.cached_outcome(first) is None
        assert engine.cached_outcome(second) is not None

    def test_on_demand_parent_is_cached(self, mini_simulator):
        engine = SimulationEngine(mini_simulator)
        child = AnnouncementConfig(
            announced=frozenset(["l1"]), prepended=frozenset(["l1"])
        )
        engine.simulate(child)
        # Both the locations parent and the anycast-all grandparent were
        # simulated en route and must now be hits.
        before = engine.stats.configs_simulated
        engine.simulate(AnnouncementConfig(announced=frozenset(["l1"])))
        engine.simulate(anycast_all(LINKS))
        assert engine.stats.configs_simulated == before

    def test_validation(self, mini_simulator):
        with pytest.raises(SimulationError):
            SimulationEngine(mini_simulator, workers=0)
        with pytest.raises(SimulationError):
            SimulationEngine(mini_simulator, cache_size=0)


class TestWarmStartCorrectness:
    def test_warm_equals_cold_on_mini(self, mini_simulator):
        configs = [
            anycast_all(LINKS),
            AnnouncementConfig(announced=frozenset(["l1"])),
            AnnouncementConfig(announced=frozenset(["l2"])),
            AnnouncementConfig(
                announced=frozenset(LINKS), prepended=frozenset(["l1"])
            ),
            AnnouncementConfig(
                announced=frozenset(LINKS), poisoned={"l1": frozenset([T1])}
            ),
        ]
        warm = SimulationEngine(mini_simulator, warm_start=True)
        cold = SimulationEngine(mini_simulator, warm_start=False)
        for a, b in zip(warm.simulate_many(configs), cold.simulate_many(configs)):
            assert a.routes == b.routes
            assert a.catchments == b.catchments
        assert warm.stats.warm_starts > 0
        assert cold.stats.warm_starts == 0

    def test_warm_equals_cold_on_generated_schedule(self, small_testbed):
        tracker = SpoofTracker(small_testbed)
        configs = tracker.schedule[:25]
        warm = SimulationEngine(small_testbed.simulator, warm_start=True)
        cold = SimulationEngine(small_testbed.simulator, warm_start=False)
        for a, b in zip(warm.simulate_many(configs), cold.simulate_many(configs)):
            assert a.routes == b.routes

    def test_direct_warm_start_api(self, mini_simulator):
        base = mini_simulator.simulate(anycast_all(LINKS))
        config = AnnouncementConfig(announced=frozenset(["l2"]))
        warm = mini_simulator.simulate(config, warm_start=base.routes)
        cold = mini_simulator.simulate(config)
        assert warm.warm_started and not cold.warm_started
        assert warm.routes == cold.routes
        assert warm.catchments == cold.catchments


class TestStats:
    def test_since_reports_deltas(self, mini_simulator):
        engine = SimulationEngine(mini_simulator)
        engine.simulate(anycast_all(LINKS))
        snapshot = engine.stats.copy()
        engine.simulate(anycast_all(LINKS))  # hit
        delta = engine.stats.since(snapshot)
        assert delta.configs_requested == 1
        assert delta.configs_simulated == 0
        assert delta.cache_hits == 1

    def test_summary_renders(self):
        text = EngineStats(configs_simulated=3, configs_requested=5).summary()
        assert "3 simulated / 5 requested" in text


class TestSerialParallelEquivalence:
    def test_parallel_run_is_bit_identical(self, small_testbed):
        serial = SpoofTracker(small_testbed, workers=1)
        parallel = SpoofTracker(small_testbed, workers=2)
        try:
            a = serial.run(max_configs=12, split_threshold=5, split_budget=8)
            b = parallel.run(max_configs=12, split_threshold=5, split_budget=8)
        finally:
            parallel.engine.close()
        assert a.universe == b.universe
        assert a.catchment_history == b.catchment_history
        assert a.clusters == b.clusters
        assert a.steps == b.steps
        assert b.engine_stats.configs_simulated > 0

    def test_parallel_engine_matches_serial_routes(self, small_testbed):
        tracker = SpoofTracker(small_testbed)
        configs = tracker.schedule[:10]
        serial = SimulationEngine(small_testbed.simulator, workers=1)
        with SimulationEngine(
            small_testbed.simulator, workers=2, spec=small_testbed.spec
        ) as parallel:
            fanned = parallel.simulate_many(configs)
        plain = serial.simulate_many(configs)
        for a, b in zip(plain, fanned):
            assert a.routes == b.routes
            assert a.catchments == b.catchments

    def test_explicit_dispatch_batch_is_bit_identical(self, small_testbed):
        configs = SpoofTracker(small_testbed).schedule[:10]
        plain = SimulationEngine(
            small_testbed.simulator, workers=1
        ).simulate_many(configs)
        for batch in (1, 3, 64):  # per-task, mid, one-batch-takes-all
            with SimulationEngine(
                small_testbed.simulator,
                workers=2,
                spec=small_testbed.spec,
                dispatch_batch=batch,
            ) as engine:
                fanned = engine.simulate_many(configs)
                assert engine.stats.configs_simulated == len(configs)
            for a, b in zip(plain, fanned):
                assert a.routes == b.routes
                assert a.catchments == b.catchments

    def test_invalid_dispatch_batch_rejected(self, small_testbed):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            SimulationEngine(
                small_testbed.simulator, workers=2, dispatch_batch=0
            )


class TestWallTimeAccounting:
    """``wall_time`` measures engine work, not consumer dawdling.

    ``iter_simulate`` opens a timing window per result; a consumer that
    sleeps between ``next()`` calls must not inflate ``wall_time`` (the
    windows are disjoint and close before each yield).
    """

    SLEEP = 0.05

    def _consume_slowly(self, engine, configs):
        import time as _time

        start = _time.perf_counter()
        outcomes = []
        for outcome in engine.iter_simulate(configs):
            outcomes.append(outcome)
            _time.sleep(self.SLEEP)
        elapsed = _time.perf_counter() - start
        return outcomes, elapsed

    def test_serial_slow_consumer_not_charged(self, small_testbed):
        configs = SpoofTracker(small_testbed).schedule[:8]
        engine = SimulationEngine(small_testbed.simulator, spec=small_testbed.spec)
        outcomes, elapsed = self._consume_slowly(engine, configs)
        assert len(outcomes) == len(configs)
        sleep_total = self.SLEEP * len(configs)
        assert elapsed >= sleep_total
        assert engine.stats.wall_time <= elapsed - 0.5 * sleep_total

    def test_parallel_slow_consumer_not_charged(self, small_testbed):
        configs = SpoofTracker(small_testbed).schedule[:8]
        with SimulationEngine(
            small_testbed.simulator, workers=2, spec=small_testbed.spec
        ) as engine:
            outcomes, elapsed = self._consume_slowly(engine, configs)
            stats = engine.stats.copy()
        assert len(outcomes) == len(configs)
        sleep_total = self.SLEEP * len(configs)
        assert elapsed >= sleep_total
        assert stats.wall_time <= elapsed - 0.5 * sleep_total
        # Queue waits are a subset of the wall windows by construction.
        assert stats.queue_wait <= stats.wall_time + 1e-6


class TestFaultContainment:
    """Injected faults never abort a batch and never change results."""

    @staticmethod
    def _crashy(rate=1.0, **kwargs):
        from repro.faults import FaultInjector, FaultPlan, FaultSpec

        return FaultInjector(
            FaultPlan(
                specs=(FaultSpec(kind="worker-crash", rate=rate, **kwargs),)
            )
        )

    def test_serial_retries_past_sub_certain_crashes(self, mini_simulator):
        from repro.faults.resilience import RetryPolicy

        engine = SimulationEngine(
            mini_simulator,
            injector=self._crashy(rate=0.5),
            retry_policy=RetryPolicy(max_retries=8, backoff_base=0.0),
        )
        clean = SimulationEngine(mini_simulator)
        configs = [
            anycast_all(LINKS),
            AnnouncementConfig(announced=frozenset(["l1"])),
            AnnouncementConfig(announced=frozenset(["l2"])),
        ]
        for a, b in zip(engine.simulate_many(configs), clean.simulate_many(configs)):
            assert a.routes == b.routes
            assert a.catchments == b.catchments

    def test_serial_bypass_after_retry_budget(self, mini_simulator):
        from repro.faults.resilience import RetryPolicy

        engine = SimulationEngine(
            mini_simulator,
            injector=self._crashy(rate=1.0),  # never clears by retrying
            retry_policy=RetryPolicy(max_retries=2, backoff_base=0.0),
        )
        outcome = engine.simulate(anycast_all(LINKS))
        assert outcome.catchments  # completed despite the certain fault
        assert engine.stats.faults_bypassed == 1
        assert engine.stats.retries == 2

    def test_parallel_worker_crash_contained(self, small_testbed):
        from repro.faults.resilience import RetryPolicy

        tracker = SpoofTracker(small_testbed)
        configs = tracker.schedule[:8]
        clean = SimulationEngine(small_testbed.simulator)
        expected = clean.simulate_many(configs)
        with SimulationEngine(
            small_testbed.simulator,
            workers=2,
            spec=small_testbed.spec,
            injector=self._crashy(rate=0.4),
            retry_policy=RetryPolicy(max_retries=6, backoff_base=0.0),
        ) as engine:
            outcomes = engine.simulate_many(configs)
            assert engine.stats.worker_failures >= 1
            assert engine.stats.pool_rebuilds >= 1
        for a, b in zip(expected, outcomes):
            assert a.routes == b.routes
            assert a.catchments == b.catchments

    def test_iter_simulate_survives_worker_crash(self, small_testbed):
        from repro.faults.resilience import RetryPolicy

        tracker = SpoofTracker(small_testbed)
        configs = tracker.schedule[:8]
        clean = SimulationEngine(small_testbed.simulator)
        expected = clean.simulate_many(configs)
        with SimulationEngine(
            small_testbed.simulator,
            workers=2,
            spec=small_testbed.spec,
            injector=self._crashy(rate=0.4),
            retry_policy=RetryPolicy(max_retries=6, backoff_base=0.0),
        ) as engine:
            streamed = list(engine.iter_simulate(configs))
        assert len(streamed) == len(expected)
        for a, b in zip(expected, streamed):
            assert a.routes == b.routes

    def test_hang_timeout_falls_back_to_serial(self, small_testbed):
        from repro.faults import FaultInjector, FaultPlan, FaultSpec
        from repro.faults.resilience import RetryPolicy

        injector = FaultInjector(
            FaultPlan(
                specs=(
                    FaultSpec(
                        kind="worker-hang", rate=1.0, delay_seconds=30.0
                    ),
                )
            )
        )
        tracker = SpoofTracker(small_testbed)
        configs = tracker.schedule[:4]
        clean = SimulationEngine(small_testbed.simulator)
        expected = clean.simulate_many(configs)
        with SimulationEngine(
            small_testbed.simulator,
            workers=2,
            spec=small_testbed.spec,
            injector=injector,
            retry_policy=RetryPolicy(task_timeout=0.5, backoff_base=0.0),
        ) as engine:
            outcomes = engine.simulate_many(configs)
            assert engine.stats.worker_failures >= 1
        for a, b in zip(expected, outcomes):
            assert a.routes == b.routes

    def test_breaker_opens_and_stays_serial(self, small_testbed):
        from repro.faults.resilience import RetryPolicy

        tracker = SpoofTracker(small_testbed)
        with SimulationEngine(
            small_testbed.simulator,
            workers=2,
            spec=small_testbed.spec,
            injector=self._crashy(rate=0.6),
            retry_policy=RetryPolicy(max_retries=8, backoff_base=0.0),
            breaker_threshold=1,
        ) as engine:
            engine.simulate_many(tracker.schedule[:6])
            assert engine.breaker.open
            rebuilds = engine.stats.pool_rebuilds
            # Further batches run serially: no new pool, no new failures.
            engine.simulate_many(tracker.schedule[6:10])
            assert engine.stats.pool_rebuilds == rebuilds
            assert engine._pool is None

    def test_close_after_in_flight_failure_releases_pool(self, small_testbed):
        from repro.faults.resilience import RetryPolicy

        tracker = SpoofTracker(small_testbed)
        engine = SimulationEngine(
            small_testbed.simulator,
            workers=2,
            spec=small_testbed.spec,
            injector=self._crashy(rate=0.4),
            retry_policy=RetryPolicy(max_retries=6, backoff_base=0.0),
        )
        try:
            engine.simulate_many(tracker.schedule[:8])
            assert engine.stats.worker_failures >= 1
        finally:
            engine.close()
        assert engine._pool is None
        # The engine stays usable after close (serial path + cache).
        outcome = engine.simulate(tracker.schedule[0])
        assert outcome.catchments

    def test_context_manager_releases_pool_on_exit(self, small_testbed):
        tracker = SpoofTracker(small_testbed)
        with SimulationEngine(
            small_testbed.simulator, workers=2, spec=small_testbed.spec
        ) as engine:
            engine.simulate_many(tracker.schedule[:4])
            assert engine._pool is not None
        assert engine._pool is None

    def test_fault_stats_render_in_summary(self):
        stats = EngineStats(
            configs_simulated=3,
            configs_requested=5,
            worker_failures=1,
            retries=2,
        )
        text = stats.summary()
        assert "3 simulated / 5 requested" in text
        assert "1 worker failures" in text

    def test_clean_summary_omits_fault_counters(self):
        text = EngineStats(configs_simulated=3, configs_requested=5).summary()
        assert "worker failures" not in text
