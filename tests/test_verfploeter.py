"""Tests for Verfploeter-style active catchment measurement."""

import pytest

from repro.bgp.announcement import AnnouncementConfig, anycast_all
from repro.errors import MeasurementError
from repro.measurement.verfploeter import VerfploeterParams, VerfploeterProber


def prober_for(testbed, responsiveness=0.7, seed=0):
    return VerfploeterProber(
        testbed.graph,
        testbed.origin.asn,
        VerfploeterParams(responsiveness=responsiveness, seed=seed),
    )


class TestParams:
    def test_rejects_bad_responsiveness(self):
        with pytest.raises(MeasurementError):
            VerfploeterParams(responsiveness=1.5)


class TestMeasurement:
    def test_observed_links_exact(self, small_testbed):
        outcome = small_testbed.simulator.simulate(
            anycast_all(small_testbed.origin.link_ids)
        )
        assignment = prober_for(small_testbed).measure(outcome)
        for source, link in assignment.items():
            assert outcome.catchment_of(source) == link

    def test_full_responsiveness_full_coverage(self, small_testbed):
        outcome = small_testbed.simulator.simulate(
            anycast_all(small_testbed.origin.link_ids)
        )
        prober = prober_for(small_testbed, responsiveness=1.0)
        assignment = prober.measure(outcome)
        assert set(assignment) == set(outcome.routes) - {small_testbed.origin.asn}
        assert prober.coverage(outcome) == 1.0

    def test_partial_responsiveness_partial_coverage(self, small_testbed):
        outcome = small_testbed.simulator.simulate(
            anycast_all(small_testbed.origin.link_ids)
        )
        prober = prober_for(small_testbed, responsiveness=0.5, seed=2)
        coverage = prober.coverage(outcome)
        assert 0.35 < coverage < 0.65

    def test_responsiveness_stable_across_configs(self, small_testbed):
        """The same AS is responsive (or not) in every configuration —
        responsiveness is a property of the AS, not the route."""
        prober = prober_for(small_testbed, responsiveness=0.5, seed=3)
        full = small_testbed.simulator.simulate(
            anycast_all(small_testbed.origin.link_ids)
        )
        partial = small_testbed.simulator.simulate(
            AnnouncementConfig(
                announced=frozenset(small_testbed.origin.link_ids[1:])
            )
        )
        first = prober.measure(full)
        second = prober.measure(partial)
        routed_in_both = (set(full.routes) & set(partial.routes)) - {
            small_testbed.origin.asn
        }
        assert routed_in_both
        for asn in routed_in_both:
            assert (asn in first) == (asn in second) == prober.is_responsive(asn)

    def test_unrouted_ases_unobserved(self, small_testbed):
        partial = small_testbed.simulator.simulate(
            AnnouncementConfig(
                announced=frozenset(small_testbed.origin.link_ids[:1])
            )
        )
        prober = prober_for(small_testbed, responsiveness=1.0)
        assignment = prober.measure(partial)
        assert set(assignment) == set(partial.routes) - {small_testbed.origin.asn}

    def test_higher_coverage_than_passive_pipeline(self, small_testbed):
        """Verfploeter's selling point: coverage beats feed+probe inference."""
        outcome = small_testbed.simulator.simulate(
            anycast_all(small_testbed.origin.link_ids)
        )
        active = prober_for(small_testbed, responsiveness=0.7).measure(outcome)
        passive = small_testbed.campaign.measure(outcome).assignment
        assert len(active) > len(passive)
