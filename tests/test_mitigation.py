"""Tests for localization-driven mitigation rules."""

import random

import pytest

from repro.core.clustering import clusters_from_catchment_history
from repro.core.localization import SpoofLocalizer
from repro.mitigation import (
    BlackholeRule,
    FlowspecRule,
    MitigationReport,
    evaluate_mitigation,
    rules_from_localization,
)
from repro.spoof.sources import SourcePlacement
from repro.spoof.traffic import link_volumes

HISTORY = [
    {"l1": frozenset({1, 2}), "l2": frozenset({3, 4})},
    {"l1": frozenset({1, 3}), "l2": frozenset({2, 4})},
]
CATCHMENTS = HISTORY[0]


def localization_for(placement):
    clusters = clusters_from_catchment_history([1, 2, 3, 4], HISTORY).clusters()
    volumes = [link_volumes(placement, catchments) for catchments in HISTORY]
    return SpoofLocalizer(clusters, HISTORY).localize(volumes)


class TestRuleMatching:
    def test_flowspec_matches_source(self):
        rule = FlowspecRule(source_ases=frozenset({7}))
        assert rule.matches(7, "l1")
        assert not rule.matches(8, "l1")

    def test_flowspec_scope_links(self):
        rule = FlowspecRule(
            source_ases=frozenset({7}), scope_links=frozenset({"l2"})
        )
        assert rule.matches(7, "l2")
        assert not rule.matches(7, "l1")

    def test_flowspec_requires_sources(self):
        with pytest.raises(ValueError):
            FlowspecRule(source_ases=frozenset())

    def test_blackhole_matches_everything(self):
        rule = BlackholeRule()
        assert rule.matches(1, "l1")
        assert rule.matches(99, "l2")

    def test_blackhole_scope(self):
        rule = BlackholeRule(scope_links=frozenset({"l1"}))
        assert rule.matches(1, "l1")
        assert not rule.matches(1, "l2")


class TestRuleGeneration:
    def test_rules_cover_true_source(self):
        placement = SourcePlacement({3: 5})
        rules = rules_from_localization(localization_for(placement))
        assert rules
        assert any(3 in rule.source_ases for rule in rules)

    def test_rules_ranked_by_volume(self):
        placement = SourcePlacement({3: 9, 1: 1})
        rules = rules_from_localization(
            localization_for(placement), volume_fraction=1.0
        )
        assert 3 in rules[0].source_ases

    def test_volume_fraction_limits_rules(self):
        placement = SourcePlacement({3: 9, 1: 1})
        nearly_all = rules_from_localization(
            localization_for(placement), volume_fraction=0.8
        )
        assert len(nearly_all) == 1  # the 90% cluster suffices

    def test_max_rules_cap(self):
        placement = SourcePlacement({1: 1, 2: 1, 3: 1, 4: 1})
        rules = rules_from_localization(
            localization_for(placement), volume_fraction=1.0, max_rules=2
        )
        assert len(rules) <= 2

    def test_scoping_to_catchment_link(self):
        placement = SourcePlacement({3: 5})
        rules = rules_from_localization(
            localization_for(placement), catchments=CATCHMENTS
        )
        top = rules[0]
        assert top.scope_links == frozenset({"l2"})  # AS3 arrives on l2

    def test_bad_fraction_rejected(self):
        placement = SourcePlacement({3: 1})
        with pytest.raises(ValueError):
            rules_from_localization(localization_for(placement), volume_fraction=0.0)


class TestEvaluation:
    def test_perfect_localization_zero_collateral(self):
        placement = SourcePlacement({3: 5})
        rules = rules_from_localization(localization_for(placement))
        report = evaluate_mitigation(rules, placement, CATCHMENTS)
        assert report.attack_volume_dropped == pytest.approx(1.0)
        # Only AS3 is filtered; 1 of 4 legitimate sources caught (AS3
        # itself also sends legitimate traffic in this model).
        assert report.legitimate_volume_dropped == pytest.approx(0.25)
        assert report.selectivity > 0.7

    def test_blackhole_is_total_collateral(self):
        placement = SourcePlacement({3: 5})
        report = evaluate_mitigation([BlackholeRule()], placement, CATCHMENTS)
        assert report.attack_volume_dropped == pytest.approx(1.0)
        assert report.legitimate_volume_dropped == pytest.approx(1.0)
        assert report.selectivity == pytest.approx(0.0)

    def test_no_rules_drop_nothing(self):
        placement = SourcePlacement({3: 5})
        report = evaluate_mitigation([], placement, CATCHMENTS)
        assert report.attack_volume_dropped == 0.0
        assert report.legitimate_volume_dropped == 0.0

    def test_unrouted_attack_sources_ignored(self):
        placement = SourcePlacement({99: 5, 3: 5})
        rules = [FlowspecRule(source_ases=frozenset({3}))]
        report = evaluate_mitigation(rules, placement, CATCHMENTS)
        # AS99 has no catchment: its volume never arrives, so the rule
        # drops all of the *arriving* attack.
        assert report.attack_volume_dropped == pytest.approx(1.0)

    def test_custom_legitimate_sources(self):
        placement = SourcePlacement({3: 5})
        rules = [FlowspecRule(source_ases=frozenset({3}))]
        report = evaluate_mitigation(
            rules, placement, CATCHMENTS, legitimate_sources=[1, 2]
        )
        assert report.legitimate_volume_dropped == 0.0

    def test_report_counts(self):
        placement = SourcePlacement({3: 5})
        rules = rules_from_localization(localization_for(placement))
        report = evaluate_mitigation(rules, placement, CATCHMENTS)
        assert report.rules_installed == len(rules)
        assert report.ases_filtered >= 1


class TestEndToEnd:
    def test_better_localization_less_collateral(self, small_testbed):
        """More configurations ⇒ smaller clusters ⇒ sharper filters."""
        from repro.core.pipeline import SpoofTracker
        from repro.spoof.sources import single_source_placement

        tracker = SpoofTracker(small_testbed)
        placement = single_source_placement(
            sorted(small_testbed.topology.stubs), random.Random(5)
        )
        collateral = {}
        for budget in (4, 40):
            report = tracker.run(max_configs=budget, placement=placement)
            rules = rules_from_localization(report.localization)
            evaluation = evaluate_mitigation(
                rules, placement, report.catchment_history[0]
            )
            assert evaluation.attack_volume_dropped == pytest.approx(1.0)
            collateral[budget] = evaluation.legitimate_volume_dropped
        assert collateral[40] <= collateral[4]
