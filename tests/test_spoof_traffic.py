"""Tests for spoofed traffic generation and per-link volumes."""

import random

import pytest

from repro.bgp.announcement import anycast_all
from repro.spoof.sources import SourcePlacement
from repro.spoof.traffic import (
    LinkVolumeMap,
    SpoofedTrafficGenerator,
    link_volumes,
    link_volumes_from_outcome,
    volumes_from_packets,
)

CATCHMENTS = {
    "l1": frozenset({1, 2, 3}),
    "l2": frozenset({4, 5}),
}


class TestLinkVolumes:
    def test_volume_follows_catchment(self):
        placement = SourcePlacement({1: 1, 4: 3})
        volumes = link_volumes(placement, CATCHMENTS, total_volume=4.0)
        assert volumes["l1"] == pytest.approx(1.0)
        assert volumes["l2"] == pytest.approx(3.0)

    def test_unrouted_sources_contribute_nothing(self):
        placement = SourcePlacement({99: 5, 1: 5})
        volumes = link_volumes(placement, CATCHMENTS)
        assert volumes["l1"] == pytest.approx(0.5)
        assert volumes["l2"] == pytest.approx(0.0)

    def test_all_links_present_even_when_zero(self):
        placement = SourcePlacement({1: 1})
        volumes = link_volumes(placement, CATCHMENTS)
        assert set(volumes) == {"l1", "l2"}

    def test_unrouted_volume_lands_in_unattributed(self):
        placement = SourcePlacement({99: 5, 1: 5})
        volumes = link_volumes(placement, CATCHMENTS, total_volume=2.0)
        assert volumes.unattributed == pytest.approx(1.0)
        assert volumes.attributed == pytest.approx(1.0)

    def test_volume_conservation(self):
        placement = SourcePlacement({1: 2, 4: 3, 99: 5})
        total = 7.5
        volumes = link_volumes(placement, CATCHMENTS, total_volume=total)
        assert volumes.offered == pytest.approx(total)
        assert sum(volumes.values()) + volumes.unattributed == pytest.approx(total)

    def test_fully_attributed_map_has_zero_unattributed(self):
        placement = SourcePlacement({1: 1, 4: 1})
        volumes = link_volumes(placement, CATCHMENTS)
        assert volumes.unattributed == 0.0
        assert volumes.offered == pytest.approx(1.0)

    def test_map_still_behaves_like_dict(self):
        placement = SourcePlacement({1: 1, 99: 1})
        volumes = link_volumes(placement, CATCHMENTS)
        assert isinstance(volumes, dict)
        assert isinstance(volumes, LinkVolumeMap)
        assert volumes["l1"] == pytest.approx(0.5)
        assert dict(volumes) == {"l1": 0.5, "l2": 0.0}

    def test_from_outcome_matches_catchments(self, mini_simulator):
        from tests.conftest import A, B

        outcome = mini_simulator.simulate(anycast_all(["l1", "l2"]))
        placement = SourcePlacement({A: 1, B: 1})
        volumes = link_volumes_from_outcome(placement, outcome)
        assert volumes["l1"] == pytest.approx(0.5)
        assert volumes["l2"] == pytest.approx(0.5)


class TestGenerator:
    def test_packets_routed_by_catchment(self):
        placement = SourcePlacement({1: 1, 4: 1})
        generator = SpoofedTrafficGenerator(
            placement, CATCHMENTS, rng=random.Random(1)
        )
        packets = list(generator.packets(200))
        assert len(packets) == 200
        for packet in packets:
            expected = "l1" if packet.true_source_as == 1 else "l2"
            assert packet.ingress_link == expected

    def test_packet_mix_proportional_to_sources(self):
        placement = SourcePlacement({1: 9, 4: 1})
        generator = SpoofedTrafficGenerator(
            placement, CATCHMENTS, rng=random.Random(2)
        )
        packets = list(generator.packets(1000))
        from_one = sum(1 for p in packets if p.true_source_as == 1)
        assert 0.8 < from_one / 1000 < 0.98

    def test_spoofed_addresses_look_random(self):
        placement = SourcePlacement({1: 1})
        generator = SpoofedTrafficGenerator(
            placement, CATCHMENTS, rng=random.Random(3)
        )
        addresses = {p.spoofed_source for p in generator.packets(100)}
        assert len(addresses) > 90  # essentially all distinct

    def test_inactive_sources_yield_nothing(self):
        placement = SourcePlacement({999: 1})  # not in any catchment
        generator = SpoofedTrafficGenerator(placement, CATCHMENTS)
        assert list(generator.packets(10)) == []
        assert generator.active_source_ases == []

    def test_rejects_negative_count(self):
        generator = SpoofedTrafficGenerator(SourcePlacement({1: 1}), CATCHMENTS)
        with pytest.raises(ValueError):
            list(generator.packets(-1))

    def test_rejects_bad_packet_size(self):
        with pytest.raises(ValueError):
            SpoofedTrafficGenerator(
                SourcePlacement({1: 1}), CATCHMENTS, packet_size_bytes=0
            )


class TestVolumesFromPackets:
    def test_aggregates_bytes_per_link(self):
        placement = SourcePlacement({1: 1, 4: 1})
        generator = SpoofedTrafficGenerator(
            placement, CATCHMENTS, rng=random.Random(4), packet_size_bytes=10
        )
        packets = list(generator.packets(100))
        volumes = volumes_from_packets(packets)
        assert sum(volumes.values()) == pytest.approx(1000.0)
