"""Tests for the spooftrack CLI."""

import pytest

from repro.cli import SCALES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.scale == "small"
        assert args.ids == []

    def test_track_options(self):
        args = build_parser().parse_args(
            ["--seed", "3", "track", "--distribution", "pareto", "--sources", "4"]
        )
        assert args.seed == 3
        assert args.distribution == "pareto"
        assert args.sources == 4

    def test_scales_registered(self):
        assert {"small", "medium", "paper"} <= set(SCALES)


class TestCommands:
    def test_tables_command(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out
        assert "Routing (this paper)" in out

    def test_track_command(self, capsys):
        code = main(
            ["--seed", "2", "track", "--max-configs", "12", "--sources", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "configurations deployed : 12" in out
        assert "ground-truth source ASes:" in out

    def test_figures_command_single(self, capsys):
        code = main(
            ["--seed", "2", "figures", "figure9", "--max-configs", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "figure9" in out
        assert "Best Relationship" in out

    def test_figures_rejects_unknown_id(self, capsys):
        assert main(["figures", "figure99"]) == 2
        assert "unknown figure ids" in capsys.readouterr().out

    def test_experiments_to_file(self, tmp_path, capsys):
        output = tmp_path / "exp.md"
        code = main(
            [
                "--seed",
                "2",
                "experiments",
                "--max-configs",
                "8",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        text = output.read_text()
        assert "### figure3" in text
        assert "### figure10" in text
