"""Tests for the spooftrack CLI."""

import json

import pytest

from repro.cli import SCALES, build_parser, main
from repro.errors import StrategyError


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.scale == "small"
        assert args.ids == []

    def test_track_options(self):
        args = build_parser().parse_args(
            ["--seed", "3", "track", "--distribution", "pareto", "--sources", "4"]
        )
        assert args.seed == 3
        assert args.distribution == "pareto"
        assert args.sources == 4

    def test_scales_registered(self):
        assert {"small", "medium", "paper"} <= set(SCALES)

    def test_workers_registered_per_subcommand(self):
        for command in ["figures", "track", "live", "headline", "dataset", "experiments"]:
            args = build_parser().parse_args([command, "--workers", "3"])
            assert args.workers == 3

    def test_live_defaults(self):
        args = build_parser().parse_args(["live"])
        assert args.distribution == "pareto"
        assert args.max_configs == 12
        assert args.churn == []
        assert not args.in_order

    def test_live_churn_parsing(self):
        args = build_parser().parse_args(
            ["live", "--churn", "4:0.3", "--churn", "9:0.5"]
        )
        assert args.churn == [(4, 0.3), (9, 0.5)]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["live", "--churn", "bogus"])

    def test_compare_options(self):
        args = build_parser().parse_args(["compare"])
        assert args.strategies is None
        assert args.max_configs is None
        assert args.json is None
        args = build_parser().parse_args(
            [
                "--seed",
                "7",
                "compare",
                "--strategies",
                "greedy,random",
                "--max-configs",
                "10",
                "--json",
                "out.json",
                "--workers",
                "2",
            ]
        )
        assert args.seed == 7
        assert args.strategies == "greedy,random"
        assert args.max_configs == 10
        assert args.json == "out.json"
        assert args.workers == 2

    def test_strategy_flags_registered(self):
        args = build_parser().parse_args(["track", "--strategy", "bisect"])
        assert args.strategy == "bisect"
        assert build_parser().parse_args(["track"]).strategy is None
        args = build_parser().parse_args(["live", "--strategy", "bgpeek"])
        assert args.strategy == "bgpeek"
        assert build_parser().parse_args(["live"]).strategy == "greedy"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["track", "--strategy", "nope"])


class TestCommands:
    def test_tables_command(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out
        assert "Routing (this paper)" in out

    def test_track_command(self, capsys):
        code = main(
            ["--seed", "2", "track", "--max-configs", "12", "--sources", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "configurations deployed : 12" in out
        assert "ground-truth source ASes:" in out

    def test_compare_command(self, tmp_path, capsys):
        artifact = str(tmp_path / "compare.json")
        code = main(
            [
                "--seed",
                "2",
                "compare",
                "--strategies",
                "greedy,schedule,random",
                "--max-configs",
                "10",
                "--json",
                artifact,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "racing 3 strategies" in out
        assert "rank" in out
        with open(artifact, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert {entry["strategy"] for entry in payload["strategies"]} == {
            "greedy",
            "schedule",
            "random",
        }

    def test_compare_rejects_unknown_strategy(self, capsys):
        with pytest.raises(StrategyError):
            main(["compare", "--strategies", "nope"])

    def test_track_with_strategy_flag(self, capsys):
        code = main(
            [
                "--seed",
                "2",
                "track",
                "--max-configs",
                "10",
                "--sources",
                "2",
                "--strategy",
                "greedy",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "configurations deployed : 10" in out

    def test_live_command(self, capsys):
        code = main(
            [
                "--seed",
                "2",
                "live",
                "--max-configs",
                "3",
                "--sources",
                "3",
                "--min-configs",
                "1",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "live runtime" in out
        assert "ground-truth source ASes:" in out

    def test_live_checkpoint_then_resume(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "live.json")
        base = [
            "--seed",
            "2",
            "live",
            "--max-configs",
            "2",
            "--sources",
            "2",
            "--min-configs",
            "1",
            "--quiet",
        ]
        assert main(base + ["--checkpoint", checkpoint]) == 0
        first = capsys.readouterr().out
        assert main(base + ["--resume", checkpoint]) == 0
        second = capsys.readouterr().out
        assert "live runtime" in second

        def stable(text):
            # Drop the engine-stats line: it reports wall-clock seconds.
            return [
                line
                for line in text.splitlines()
                if not line.startswith("simulation engine")
            ]

        # The checkpointed run had finished, so the resumed report matches.
        assert stable(first) == stable(second)

    def test_live_checkpoint_every_needs_path(self, capsys):
        assert main(["live", "--checkpoint-every", "3"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_figures_command_single(self, capsys):
        code = main(
            ["--seed", "2", "figures", "figure9", "--max-configs", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "figure9" in out
        assert "Best Relationship" in out

    def test_figures_rejects_unknown_id(self, capsys):
        assert main(["figures", "figure99"]) == 2
        assert "unknown figure ids" in capsys.readouterr().out

    def test_experiments_to_file(self, tmp_path, capsys):
        output = tmp_path / "exp.md"
        code = main(
            [
                "--seed",
                "2",
                "experiments",
                "--max-configs",
                "8",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        text = output.read_text()
        assert "### figure3" in text
        assert "### figure10" in text


class TestFaultOptions:
    def test_fault_plan_registered_on_track_live_and_fleet(self):
        for command in ["track", "live", "fleet"]:
            args = build_parser().parse_args(
                [command, "--fault-plan", "mixed"]
            )
            assert args.fault_plan == "mixed"
            args = build_parser().parse_args([command])
            assert args.fault_plan is None

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.plan == "mixed"
        assert args.levels == [0.0, 0.25, 0.5, 1.0]
        assert args.distribution == "single"
        assert args.sources == 1

    def test_chaos_levels_parsing(self):
        args = build_parser().parse_args(["chaos", "--levels", "0,0.5,2"])
        assert args.levels == [0.0, 0.5, 2.0]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--levels", "0,-1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--levels", "abc"])

    def test_track_with_fault_plan(self, capsys):
        code = main(
            [
                "--seed",
                "2",
                "track",
                "--max-configs",
                "8",
                "--sources",
                "1",
                "--fault-plan",
                "worker-crash",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resilience" in out

    def test_chaos_command_sweeps_levels(self, capsys):
        code = main(
            [
                "--seed",
                "3",
                "chaos",
                "--max-configs",
                "4",
                "--levels",
                "0,1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "level" in out
        assert "all invariants held at every fault level" in out

    def test_chaos_rejects_unknown_plan(self, capsys):
        assert main(["chaos", "--plan", "nonsense"]) == 2
        assert "fault plan" in capsys.readouterr().err


class TestObservabilityOptions:
    def test_trace_metrics_registered(self):
        for command in ["track", "live", "chaos", "profile", "fleet"]:
            args = build_parser().parse_args(
                [command, "--trace", "t.jsonl", "--metrics", "m.prom"]
            )
            assert args.trace == "t.jsonl"
            assert args.metrics == "m.prom"
            args = build_parser().parse_args([command])
            assert args.trace is None and args.metrics is None

    def test_track_writes_trace_and_metrics(self, tmp_path, capsys):
        from repro.obs import build_tree, load_spans, parse_prometheus

        trace = str(tmp_path / "t.jsonl")
        metrics = str(tmp_path / "m.prom")
        code = main(
            [
                "--seed", "2", "track", "--max-configs", "10",
                "--trace", trace, "--metrics", metrics,
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert f"wrote trace {trace}" in captured.err
        assert f"wrote metrics {metrics}" in captured.err
        spans = load_spans(trace)
        tree = build_tree(spans)
        root = tree[""][0]
        assert root["name"] == "track"
        phases = {span["name"] for span in tree[root["span_id"]]}
        assert phases == {
            "schedule", "simulate", "measure", "cluster", "attribute",
        }
        # The metrics dump reconciles with the report the run printed.
        parsed = parse_prometheus(open(metrics).read())
        assert parsed["repro_pipeline_configs_deployed_total"] == 10
        assert parsed["repro_engine_configs_requested_total"] >= 10

    def test_profile_command(self, capsys):
        code = main(
            ["--seed", "2", "profile", "--max-configs", "6", "--top", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-phase wall time" in out
        assert "top 3 hotspots" in out
        assert "simulate" in out
        assert "configurations deployed : 6" in out

    def test_live_writes_metrics(self, tmp_path, capsys):
        from repro.obs import parse_prometheus

        metrics = str(tmp_path / "m.prom")
        code = main(
            [
                "--seed", "2", "live", "--max-configs", "3", "--sources", "3",
                "--min-configs", "1", "--quiet", "--metrics", metrics,
            ]
        )
        assert code == 0
        parsed = parse_prometheus(open(metrics).read())
        assert parsed["repro_live_windows_total"] >= 1

    def test_outputs_create_parent_dirs(self, tmp_path, capsys):
        trace = str(tmp_path / "deep" / "dirs" / "t.jsonl")
        metrics = str(tmp_path / "other" / "m.prom")
        code = main(
            [
                "--seed", "2", "track", "--max-configs", "8",
                "--trace", trace, "--metrics", metrics,
            ]
        )
        assert code == 0
        import os

        assert os.path.exists(trace) and os.path.exists(metrics)


class TestServingOptions:
    def test_serve_and_log_json_registered(self):
        for command in ["track", "live", "chaos", "profile", "fleet"]:
            args = build_parser().parse_args(
                [command, "--serve", "0", "--log-json"]
            )
            assert args.serve == 0
            assert args.log_json
            args = build_parser().parse_args([command])
            assert args.serve is None and not args.log_json

    def test_track_serve_smoke(self, capsys):
        code = main(
            [
                "--seed", "2", "track", "--max-configs", "8",
                "--sources", "1", "--serve", "0",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "serving observability on http://127.0.0.1:" in captured.err
        assert "configurations deployed : 8" in captured.out

    def test_live_serve_smoke(self, capsys):
        code = main(
            [
                "--seed", "2", "live", "--max-configs", "3", "--sources", "3",
                "--min-configs", "1", "--quiet", "--serve", "0",
            ]
        )
        assert code == 0
        assert "serving observability on" in capsys.readouterr().err

    def test_log_json_structures_stderr(self, tmp_path, capsys):
        import json

        metrics = str(tmp_path / "m.prom")
        code = main(
            [
                "--seed", "2", "track", "--max-configs", "8",
                "--log-json", "--metrics", metrics,
            ]
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in capsys.readouterr().err.splitlines()
            if line.strip()
        ]
        exports = [r for r in records if r.get("event") == "export"]
        assert any(r["path"] == metrics for r in exports)
        assert all(r["level"] == "info" for r in exports)
        assert all(r["msg"].startswith("wrote ") for r in exports)


class TestFleetCommand:
    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.tenants == 2
        assert args.attacks == 2
        assert args.distribution == "pareto"
        assert args.max_active == 0
        assert args.quota == []
        assert args.crash == [] and args.drain == [] and args.evict == []
        assert not args.serial
        assert args.table_every == 8

    def test_event_and_quota_parsing(self):
        args = build_parser().parse_args(
            [
                "fleet",
                "--crash", "1:240",
                "--drain", "0:100.5",
                "--quota", "tenant-00:2.0",
            ]
        )
        assert args.crash == [(1, 240.0)]
        assert args.drain == [(0, 100.5)]
        assert args.quota == [("tenant-00", 2.0)]
        for bad in (
            ["fleet", "--crash", "nonsense"],
            ["fleet", "--crash", "1:x"],
            ["fleet", "--quota", "tenant-00"],
            ["fleet", "--quota", "tenant-00:0"],
            ["fleet", "--quota", ":2.0"],
        ):
            with pytest.raises(SystemExit):
                build_parser().parse_args(bad)

    def test_checkpoint_every_needs_dir(self, capsys):
        assert main(["fleet", "--checkpoint-every", "2"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_event_index_out_of_range(self, capsys):
        code = main(
            ["fleet", "--tenants", "1", "--attacks", "1", "--crash", "5:100"]
        )
        assert code == 2
        assert "out of range" in capsys.readouterr().err

    def test_fleet_command_runs(self, capsys):
        code = main(
            [
                "--seed", "2", "fleet", "--tenants", "2", "--attacks", "1",
                "--max-configs", "3", "--sources", "6", "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet: 2 shards (2 done)" in out
        assert "tenant-00" in out and "tenant-01" in out
        assert "fleet digest: " in out

    def test_fleet_crash_resume_command(self, tmp_path, capsys):
        base = [
            "--seed", "2", "fleet", "--tenants", "1", "--attacks", "2",
            "--max-configs", "3", "--sources", "6", "--quiet", "--serial",
            "--checkpoint-dir", str(tmp_path), "--checkpoint-every", "2",
        ]
        assert main(base + ["--crash", "1:100"]) == 0
        crashed = capsys.readouterr().out
        assert "1 crashes / 1 resumes" in crashed
        assert main(base) == 0
        quiet = capsys.readouterr().out
        digest = [
            line for line in quiet.splitlines() if line.startswith("fleet digest")
        ]
        # Kill + checkpoint resume converges on the uncrashed digest.
        assert digest[0] in crashed


class TestDashCommand:
    def test_dash_replay_renders(self, capsys):
        code = main(
            ["--seed", "2", "dash", "--sources", "3", "--max-configs", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "spooftrack dash" in out
        assert "window" in out
        assert "controller:" in out
        assert "engine:" in out

    def test_dash_unreachable_url(self, capsys):
        code = main(
            ["dash", "--url", "http://127.0.0.1:9", "--timeout", "0.5"]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_dash_tenant_flag_registered(self):
        args = build_parser().parse_args(["dash", "--tenant", "tenant-01"])
        assert args.tenant == "tenant-01"
        args = build_parser().parse_args(["dash"])
        assert not args.tenant


class TestBenchCheckCommand:
    @staticmethod
    def _write_artifact(directory, seconds):
        import json

        (directory / "BENCH_x.json").write_text(
            json.dumps({"sim_seconds": seconds})
        )

    def test_update_then_pass(self, tmp_path, capsys):
        self._write_artifact(tmp_path, 1.0)
        assert main(["bench-check", "--bench-dir", str(tmp_path), "--update"]) == 0
        assert "wrote bench history" in capsys.readouterr().out
        assert main(["bench-check", "--bench-dir", str(tmp_path)]) == 0
        assert "bench-check: OK" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        self._write_artifact(tmp_path, 1.0)
        assert main(["bench-check", "--bench-dir", str(tmp_path), "--update"]) == 0
        capsys.readouterr()
        self._write_artifact(tmp_path, 1.2)  # 20% slower than baseline
        assert main(["bench-check", "--bench-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION BENCH_x.json:sim_seconds" in out
        assert "bench-check: FAIL" in out
        # A looser tolerance lets the same artifacts through.
        assert main(
            ["bench-check", "--bench-dir", str(tmp_path), "--tolerance", "0.3"]
        ) == 0

    def test_missing_history_hints(self, tmp_path, capsys):
        assert main(["bench-check", "--bench-dir", str(tmp_path)]) == 2
        assert "--update" in capsys.readouterr().err

    def test_committed_history_passes(self, capsys):
        assert main(["bench-check"]) == 0
        assert "bench-check: OK" in capsys.readouterr().out
