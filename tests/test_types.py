"""Tests for repro.types: prefixes, address parsing, AS-path helpers."""

import pytest

from repro.types import (
    Prefix,
    format_ipv4,
    parse_ipv4,
    path_without_prepending,
    validate_asn,
)


class TestValidateASN:
    def test_accepts_valid_asn(self):
        assert validate_asn(65000) == 65000

    def test_accepts_32bit_asn(self):
        assert validate_asn(2**32 - 1) == 2**32 - 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            validate_asn(0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_asn(-5)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            validate_asn(2**32)

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            validate_asn(True)

    def test_rejects_string(self):
        with pytest.raises(ValueError):
            validate_asn("65000")


class TestParseFormatIPv4:
    def test_roundtrip(self):
        for text in ("0.0.0.0", "10.1.2.3", "255.255.255.255", "184.164.224.1"):
            assert format_ipv4(parse_ipv4(text)) == text

    def test_parse_known_value(self):
        assert parse_ipv4("1.0.0.0") == 1 << 24

    def test_parse_rejects_short(self):
        with pytest.raises(ValueError):
            parse_ipv4("1.2.3")

    def test_parse_rejects_octet_overflow(self):
        with pytest.raises(ValueError):
            parse_ipv4("1.2.3.256")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_ipv4("a.b.c.d")

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(2**32)

    def test_format_rejects_negative(self):
        with pytest.raises(ValueError):
            format_ipv4(-1)


class TestPrefix:
    def test_parse_and_str_roundtrip(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert str(prefix) == "192.0.2.0/24"

    def test_netmask(self):
        assert Prefix.parse("10.0.0.0/8").netmask == 0xFF000000

    def test_zero_length_covers_everything(self):
        default = Prefix.parse("0.0.0.0/0")
        assert default.contains_address(parse_ipv4("203.0.113.9"))
        assert default.num_addresses == 2**32

    def test_host_prefix(self):
        host = Prefix.parse("192.0.2.1/32")
        assert host.num_addresses == 1
        assert host.first_address == host.last_address

    def test_contains_address_boundaries(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert prefix.contains_address(prefix.first_address)
        assert prefix.contains_address(prefix.last_address)
        assert not prefix.contains_address(prefix.last_address + 1)
        assert not prefix.contains_address(prefix.first_address - 1)

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            Prefix.parse("192.0.2.1/24")

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0/33")

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0")


class TestPathWithoutPrepending:
    def test_collapses_consecutive_duplicates(self):
        assert path_without_prepending((1, 1, 1, 2, 3, 3)) == (1, 2, 3)

    def test_keeps_nonconsecutive_duplicates(self):
        # Poison stuffing (o, u, o) must keep both origin occurrences.
        assert path_without_prepending((5, 9, 5)) == (5, 9, 5)

    def test_empty(self):
        assert path_without_prepending(()) == ()

    def test_single(self):
        assert path_without_prepending((7,)) == (7,)
