"""Tests for geographic regions and hot-potato tiebreaking."""

import pytest

from repro.bgp.announcement import anycast_all
from repro.bgp.convergence import ConvergenceEngine
from repro.bgp.policy import PolicyModel
from repro.bgp.simulator import RoutingSimulator
from repro.topology.geography import (
    DEFAULT_REGION_WEIGHTS,
    REGIONS,
    GeographyModel,
    region_distance,
)
from tests.conftest import build_mini_internet


class TestRegionDistance:
    def test_zero_diagonal(self):
        for region in REGIONS:
            assert region_distance(region, region) == 0

    def test_symmetric(self):
        for a in REGIONS:
            for b in REGIONS:
                assert region_distance(a, b) == region_distance(b, a)

    def test_unknown_region_rejected(self):
        with pytest.raises(ValueError):
            region_distance("NA", "MOON")


class TestGeographyModel:
    def test_explicit_assignment(self):
        model = GeographyModel({1: "NA", 2: "EU"})
        assert model.region_of(1) == "NA"
        assert model.distance(1, 2) == region_distance("NA", "EU")
        assert model.knows(1) and not model.knows(3)

    def test_rejects_unknown_region(self):
        with pytest.raises(ValueError):
            GeographyModel({1: "ATLANTIS"})

    def test_unassigned_ases_distance_zero(self):
        model = GeographyModel({1: "NA"})
        assert model.distance(1, 99) == 0
        assert model.distance(99, 98) == 0

    def test_random_assignment_deterministic(self):
        ases = range(1, 200)
        a = GeographyModel.random(ases, seed=4)
        b = GeographyModel.random(ases, seed=4)
        assert all(a.region_of(asn) == b.region_of(asn) for asn in ases)

    def test_random_weights_roughly_respected(self):
        model = GeographyModel.random(range(1, 2001), seed=5)
        census = model.census()
        total = sum(census.values())
        for region, weight in DEFAULT_REGION_WEIGHTS.items():
            assert abs(census[region] / total - weight) < 0.05

    def test_random_rejects_unknown_weights(self):
        with pytest.raises(ValueError):
            GeographyModel.random([1], weights={"MOON": 1.0})


class TestHotPotatoTiebreak:
    def make(self, geography=None):
        mini = build_mini_internet()
        policy = PolicyModel(
            mini.graph,
            policy_noise=0.0,
            loop_prevention_disabled_fraction=0.0,
            geography=geography,
        )
        return mini, policy

    def test_no_geography_cost_zero(self):
        mini, policy = self.make()
        assert policy.igp_cost(1, 2) == 0

    def test_geography_cost_forwarded(self):
        geography = GeographyModel({1: "NA", 2: "EU"})
        mini, policy = self.make(geography)
        assert policy.igp_cost(1, 2) == region_distance("NA", "EU")

    def test_hot_potato_flips_a_tie(self):
        """T2's peer tie (T1) vs customer route: customer wins regardless,
        so build geography onto a generated testbed and check the
        decision actually shifts some ties."""
        from repro.core.pipeline import build_testbed
        from repro.topology import TopologyParams

        testbed = build_testbed(
            seed=6,
            topology_params=TopologyParams(
                num_tier1=5, num_transit=40, num_stub=160, seed=6
            ),
            num_links=5,
        )
        geography = GeographyModel.random(testbed.graph.ases, seed=6)
        geo_policy = PolicyModel(
            testbed.graph, seed=5, geography=geography
        )
        flat_policy = PolicyModel(testbed.graph, seed=5)
        config = anycast_all(testbed.origin.link_ids)
        geo_outcome = RoutingSimulator(
            testbed.graph, testbed.origin, geo_policy
        ).simulate(config)
        flat_outcome = RoutingSimulator(
            testbed.graph, testbed.origin, flat_policy
        ).simulate(config)
        moved = sum(
            1
            for asn in flat_outcome.covered_ases
            if geo_outcome.catchment_of(asn) != flat_outcome.catchment_of(asn)
        )
        assert moved > 0  # geography re-resolved some ties
        assert geo_outcome.covered_ases == flat_outcome.covered_ases

    def test_convergence_engine_respects_geography(self):
        """Event-driven and fixpoint engines agree under geography too."""
        from repro.core.pipeline import build_testbed
        from repro.topology import TopologyParams

        testbed = build_testbed(
            seed=7,
            topology_params=TopologyParams(
                num_tier1=4, num_transit=25, num_stub=80, seed=7
            ),
            num_links=4,
            num_vantages=8,
            num_probes=20,
        )
        geography = GeographyModel.random(testbed.graph.ases, seed=7)
        policy = PolicyModel(testbed.graph, seed=7, geography=geography)
        config = anycast_all(testbed.origin.link_ids)
        fixpoint = RoutingSimulator(
            testbed.graph, testbed.origin, policy
        ).simulate(config)
        event_driven = ConvergenceEngine(
            testbed.graph, testbed.origin, policy
        ).run(config)
        assert event_driven.agrees_with(fixpoint)
