"""Tests for spoofing-source placement distributions."""

import random

import pytest

from repro.spoof.sources import (
    PARETO_8020_SHAPE,
    PLACEMENT_DISTRIBUTIONS,
    SourcePlacement,
    make_placement,
    pareto_placement,
    single_source_placement,
    uniform_placement,
)

ASES = list(range(100, 400))


class TestSourcePlacement:
    def test_total_sources(self):
        placement = SourcePlacement({1: 2, 2: 3})
        assert placement.total_sources == 5

    def test_spoofing_ases(self):
        placement = SourcePlacement({1: 2, 2: 3})
        assert placement.spoofing_ases == frozenset({1, 2})

    def test_volume_proportional_to_sources(self):
        placement = SourcePlacement({1: 1, 2: 3})
        volumes = placement.volume_by_as(total_volume=8.0)
        assert volumes[1] == pytest.approx(2.0)
        assert volumes[2] == pytest.approx(6.0)

    def test_volume_fractions_sum_to_one(self):
        placement = SourcePlacement({1: 2, 2: 5, 3: 1})
        assert sum(placement.volume_by_as().values()) == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SourcePlacement({})

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            SourcePlacement({1: 0})


class TestUniform:
    def test_places_all_sources(self):
        placement = uniform_placement(ASES, 50, random.Random(1))
        assert placement.total_sources == 50
        assert placement.spoofing_ases <= set(ASES)
        assert placement.distribution == "uniform"

    def test_deterministic_with_seed(self):
        a = uniform_placement(ASES, 30, random.Random(7))
        b = uniform_placement(ASES, 30, random.Random(7))
        assert a.sources_by_as == b.sources_by_as

    def test_spread_is_broad(self):
        placement = uniform_placement(ASES, 200, random.Random(2))
        # Uniform over 300 ASes: no AS should dominate.
        assert max(placement.sources_by_as.values()) <= 6

    def test_rejects_zero_sources(self):
        with pytest.raises(ValueError):
            uniform_placement(ASES, 0)

    def test_rejects_empty_ases(self):
        with pytest.raises(ValueError):
            uniform_placement([], 5)


class TestPareto:
    def test_places_all_sources(self):
        placement = pareto_placement(ASES, 100, random.Random(3))
        assert placement.total_sources == 100
        assert placement.distribution == "pareto"

    def test_heavy_concentration(self):
        """With the 80/20 shape, the top 20% of spoofing ASes should hold
        clearly more than 20% of the sources."""
        placement = pareto_placement(ASES, 2000, random.Random(4))
        counts = sorted(placement.sources_by_as.values(), reverse=True)
        top20 = counts[: max(1, len(counts) // 5)]
        assert sum(top20) / placement.total_sources > 0.4

    def test_more_concentrated_than_uniform(self):
        rng = random.Random(5)
        pareto = pareto_placement(ASES, 1000, rng)
        uniform = uniform_placement(ASES, 1000, random.Random(5))
        assert max(pareto.sources_by_as.values()) > max(
            uniform.sources_by_as.values()
        )

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            pareto_placement(ASES, 10, random.Random(1), shape=0.0)

    def test_8020_shape_constant(self):
        # log(5)/log(4) ≈ 1.1606
        assert 1.15 < PARETO_8020_SHAPE < 1.17


class TestSingle:
    def test_one_source_one_as(self):
        placement = single_source_placement(ASES, random.Random(6))
        assert placement.total_sources == 1
        assert len(placement.spoofing_ases) == 1
        assert placement.distribution == "single"


class TestDispatch:
    def test_known_distributions(self):
        for name in PLACEMENT_DISTRIBUTIONS:
            placement = make_placement(name, ASES, 10, random.Random(1))
            assert placement.distribution == name

    def test_single_ignores_count(self):
        placement = make_placement("single", ASES, 10, random.Random(1))
        assert placement.total_sources == 1

    def test_unknown_distribution(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            make_placement("zipf", ASES, 10)
