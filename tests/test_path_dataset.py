"""Tests for the AS-path dataset (route diversity, link discovery, §VI)."""

import io

import pytest

from repro.core.configgen import ScheduleParams, generate_schedule
from repro.data import PathDataset, PathRecord
from repro.errors import DataFormatError


@pytest.fixture(scope="module")
def outcomes(request):
    small_testbed = request.getfixturevalue("small_testbed")
    schedule = generate_schedule(
        small_testbed.origin, small_testbed.graph, ScheduleParams()
    )
    # A slice spanning all three phases.
    picked = schedule[:8] + schedule[100:104] + schedule[-4:]
    return small_testbed, [small_testbed.simulator.simulate(c) for c in picked]


@pytest.fixture(scope="module")
def dataset(outcomes):
    _, outs = outcomes
    return PathDataset.from_outcomes(outs)


class TestConstruction:
    def test_one_record_per_outcome(self, outcomes, dataset):
        _, outs = outcomes
        assert len(dataset) == len(outs)

    def test_paths_are_forwarding_paths(self, outcomes, dataset):
        testbed, outs = outcomes
        record = dataset.records[0]
        for source, path in list(record.paths.items())[:20]:
            assert path[0] == source
            assert path[-1] == testbed.origin.asn

    def test_phases_preserved(self, dataset):
        census = dataset.phase_census()
        assert set(census) == {"locations", "prepending", "poisoning"}


class TestAnalyses:
    def test_route_diversity_counts_distinct_paths(self, dataset):
        diversity = dataset.route_diversity()
        assert diversity
        assert all(count >= 1 for count in diversity.values())
        # Withdrawals in the slice force alternates for many sources.
        assert max(diversity.values()) >= 2

    def test_route_changes_positive(self, dataset):
        assert dataset.route_changes() > 0

    def test_discovered_links_only_from_manipulations(self, dataset):
        discovered = dataset.discovered_links(baseline_phases=("locations",))
        baseline_links = set()
        for record in dataset.records:
            if record.phase == "locations":
                baseline_links |= record.links()
        assert not discovered & baseline_links

    def test_all_baseline_phases_discover_nothing(self, dataset):
        everything = ("locations", "prepending", "poisoning")
        assert dataset.discovered_links(baseline_phases=everything) == set()

    def test_sources_union(self, dataset):
        sources = dataset.sources()
        assert sources >= set(dataset.records[0].paths)

    def test_record_links_undirected(self):
        record = PathRecord(
            config_label="x", phase="locations", paths={5: (5, 3, 1)}
        )
        assert record.links() == {(3, 5), (1, 3)}


class TestSerialization:
    def test_roundtrip_file(self, dataset, tmp_path):
        path = tmp_path / "paths.jsonl"
        dataset.save(path)
        restored = PathDataset.load(path)
        assert len(restored) == len(dataset)
        for mine, theirs in zip(dataset.records, restored.records):
            assert mine.config_label == theirs.config_label
            assert mine.phase == theirs.phase
            assert mine.paths == theirs.paths

    def test_roundtrip_preserves_analyses(self, dataset):
        buffer = io.StringIO()
        dataset.save(buffer)
        buffer.seek(0)
        restored = PathDataset.load(buffer)
        assert restored.route_diversity() == dataset.route_diversity()
        assert restored.discovered_links() == dataset.discovered_links()

    def test_rejects_bad_header(self):
        with pytest.raises(DataFormatError, match="header"):
            PathDataset.load(io.StringIO("not json\n"))
        with pytest.raises(DataFormatError, match="header"):
            PathDataset.load(io.StringIO('{"format": "other"}\n'))

    def test_rejects_malformed_record(self, dataset):
        buffer = io.StringIO()
        dataset.save(buffer)
        text = buffer.getvalue().splitlines()
        text[1] = '{"label": "x"}'  # missing paths
        with pytest.raises(DataFormatError, match="line 2"):
            PathDataset.load(io.StringIO("\n".join(text) + "\n"))

    def test_blank_lines_ignored(self, dataset):
        buffer = io.StringIO()
        dataset.save(buffer)
        padded = buffer.getvalue() + "\n\n"
        restored = PathDataset.load(io.StringIO(padded))
        assert len(restored) == len(dataset)


class TestDiversityGuarantee:
    def test_schedule_guarantee_at_least_r_plus_one_routes(self, request):
        """§III-A: removing up to r links discovers ≥ r+1 routes for every
        source — checked on the full locations phase."""
        small_testbed = request.getfixturevalue("small_testbed")
        schedule = generate_schedule(
            small_testbed.origin,
            small_testbed.graph,
            ScheduleParams(max_removed=2, include_poisoning=False),
        )
        locations_only = [c for c in schedule if c.phase == "locations"]
        outcomes = [small_testbed.simulator.simulate(c) for c in locations_only]
        dataset = PathDataset.from_outcomes(outcomes)
        universe = outcomes[0].covered_ases
        diversity = dataset.route_diversity()
        # Every source observed in the anycast-all config has at least 3
        # distinct routes (r = 2 removed links ⇒ ≥ r+1 = 3)...
        short = [
            source
            for source in universe
            if source != small_testbed.origin.asn and diversity.get(source, 0) < 3
        ]
        # ...except sources whose alternatives are masked by shared
        # bottlenecks; they must be a small minority.
        assert len(short) / len(universe) < 0.25
