"""Tests for the §VIII no-export community extension."""

import pytest

from repro.bgp.announcement import AnnouncementConfig, anycast_all
from repro.core.configgen import (
    PHASE_COMMUNITIES,
    ScheduleParams,
    community_configs,
    generate_schedule,
    poison_configs,
)
from repro.errors import AnnouncementError
from tests.conftest import A, B, C, M, ORIGIN, P1, P2, T1, T2, build_mini_internet


def simulate(config, **policy_kwargs):
    from repro.bgp.policy import PolicyModel
    from repro.bgp.simulator import RoutingSimulator

    mini = build_mini_internet()
    defaults = dict(policy_noise=0.0, loop_prevention_disabled_fraction=0.0)
    defaults.update(policy_kwargs)
    policy = PolicyModel(mini.graph, seed=0, **defaults)
    return RoutingSimulator(mini.graph, mini.origin, policy).simulate(config)


class TestConfigValidation:
    def test_no_export_on_announced_link(self):
        config = AnnouncementConfig(
            announced=frozenset(["l1"]), no_export={"l1": frozenset([5])}
        )
        assert config.uses_communities
        assert config.no_export_for_link("l1") == frozenset([5])

    def test_no_export_on_unannounced_link_rejected(self):
        with pytest.raises(AnnouncementError, match="no-export"):
            AnnouncementConfig(
                announced=frozenset(["l1"]), no_export={"l2": frozenset([5])}
            )

    def test_key_distinguishes_communities(self):
        plain = AnnouncementConfig(announced=frozenset(["l1"]))
        tagged = AnnouncementConfig(
            announced=frozenset(["l1"]), no_export={"l1": frozenset([5])}
        )
        assert plain.key() != tagged.key()

    def test_describe_mentions_communities(self):
        config = AnnouncementConfig(
            announced=frozenset(["l1"]), no_export={"l1": frozenset([5])}
        )
        assert "C={" in config.describe()

    def test_communities_do_not_change_as_path(self):
        config = AnnouncementConfig(
            announced=frozenset(["l1"]), no_export={"l1": frozenset([5])}
        )
        assert config.as_path_for_link(ORIGIN, "l1") == (ORIGIN,)


class TestSimulatorBehaviour:
    def test_no_export_severs_provider_link(self):
        """Blocking P1→T1 export on l1 forces T1 (and its cone) to l2."""
        blocked = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1", "l2"]),
                no_export={"l1": frozenset([T1])},
            )
        )
        assert blocked.catchment_of(T1) == "l2"
        assert blocked.catchment_of(C) == "l2"
        # A (P1's own customer) is unaffected — the community only blocks
        # the P1→T1 export.
        assert blocked.catchment_of(A) == "l1"

    def test_matches_poisoning_when_loop_prevention_works(self):
        poisoned = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1", "l2"]),
                poisoned={"l1": frozenset([T1])},
            ),
            tier1_leak_filtering=False,
        )
        community = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1", "l2"]),
                no_export={"l1": frozenset([T1])},
            ),
            tier1_leak_filtering=False,
        )
        for asn in community.covered_ases:
            assert community.catchment_of(asn) == poisoned.catchment_of(asn)

    def test_works_where_poisoning_fails_loop_prevention(self):
        """The extension's selling point: the target's disabled loop
        prevention defeats poisoning but not the community."""
        kwargs = dict(loop_prevention_disabled_fraction=1.0, tier1_leak_filtering=False)
        poisoned = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1", "l2"]),
                poisoned={"l1": frozenset([T1])},
            ),
            **kwargs,
        )
        community = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1", "l2"]),
                no_export={"l1": frozenset([T1])},
            ),
            **kwargs,
        )
        assert poisoned.catchment_of(T1) == "l1"   # poison ignored
        assert community.catchment_of(T1) == "l2"  # community still works

    def test_works_where_tier1_filter_defeats_poisoning(self):
        """Tier-1 route-leak filters eat poisoned paths containing another
        tier-1; a community carries no tier-1 in the path."""
        poisoned = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1"]), poisoned={"l1": frozenset([T2])}
            ),
            tier1_leak_filtering=True,
        )
        community = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1"]), no_export={"l1": frozenset([T2])}
            ),
            tier1_leak_filtering=True,
        )
        # Poison: T1 filters the whole announcement → its cone goes dark.
        assert poisoned.route(T1) is None
        # Community: only the P1→T2 export would be blocked (no such
        # link), everyone keeps routes.
        assert community.route(T1) is not None
        assert community.route(C) is not None

    def test_community_only_applies_at_direct_provider(self):
        """Blocking AS B on l2's announcement severs P2→B, but an AS named
        in the community elsewhere in the topology is untouched."""
        blocked = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1", "l2"]),
                no_export={"l2": frozenset([B])},
            )
        )
        assert blocked.route(B) is None  # B is single-homed to P2
        # Same target on l1's announcement: P1 has no link to B, no effect.
        unaffected = simulate(
            AnnouncementConfig(
                announced=frozenset(["l1", "l2"]),
                no_export={"l1": frozenset([B])},
            )
        )
        assert unaffected.route(B) is not None


class TestCommunityConfigGeneration:
    def test_mirrors_poison_targets(self, small_testbed):
        origin, graph = small_testbed.origin, small_testbed.graph
        poisons = poison_configs(origin, graph, max_per_provider=3)
        communities = community_configs(origin, graph, max_per_provider=3)
        assert len(communities) == len(poisons)
        for config in communities:
            assert config.phase == PHASE_COMMUNITIES
            assert config.uses_communities
            assert not config.uses_poisoning

    def test_schedule_appends_community_phase(self, small_testbed):
        schedule = generate_schedule(
            small_testbed.origin,
            small_testbed.graph,
            ScheduleParams(include_communities=True, max_poison_targets=2),
        )
        phases = [config.phase for config in schedule]
        assert phases[-1] == PHASE_COMMUNITIES
        assert PHASE_COMMUNITIES not in phases[: phases.index(PHASE_COMMUNITIES)]
