"""Tests for the prefix trie, address plan, and IP-to-AS mapper."""

import random

import pytest

from repro.errors import MappingError
from repro.measurement.ip2as import (
    ORIGIN_PREFIX,
    AddressPlan,
    IPToASMapper,
    PrefixTrie,
)
from repro.types import Prefix, parse_ipv4


class TestPrefixTrie:
    def test_exact_lookup(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "ten")
        assert trie.lookup(parse_ipv4("10.1.2.3")) == "ten"

    def test_miss_returns_none(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "ten")
        assert trie.lookup(parse_ipv4("11.0.0.1")) is None

    def test_longest_prefix_wins(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "short")
        trie.insert(Prefix.parse("10.5.0.0/16"), "long")
        assert trie.lookup(parse_ipv4("10.5.1.1")) == "long"
        assert trie.lookup(parse_ipv4("10.6.1.1")) == "short"

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("0.0.0.0/0"), "default")
        trie.insert(Prefix.parse("192.0.2.0/24"), "specific")
        assert trie.lookup(parse_ipv4("8.8.8.8")) == "default"
        assert trie.lookup(parse_ipv4("192.0.2.55")) == "specific"

    def test_host_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("192.0.2.1/32"), "host")
        assert trie.lookup(parse_ipv4("192.0.2.1")) == "host"
        assert trie.lookup(parse_ipv4("192.0.2.2")) is None

    def test_duplicate_same_value_ok(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "x")
        trie.insert(Prefix.parse("10.0.0.0/8"), "x")
        assert len(trie) == 1

    def test_duplicate_conflicting_value_raises(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "x")
        with pytest.raises(MappingError):
            trie.insert(Prefix.parse("10.0.0.0/8"), "y")

    def test_lookup_prefix_returns_match(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.5.0.0/16"), "v")
        prefix, value = trie.lookup_prefix(parse_ipv4("10.5.9.9"))
        assert str(prefix) == "10.5.0.0/16"
        assert value == "v"

    def test_lookup_prefix_miss(self):
        assert PrefixTrie().lookup_prefix(parse_ipv4("1.2.3.4")) is None

    def test_len_counts_values(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "a")
        trie.insert(Prefix.parse("10.5.0.0/16"), "b")
        assert len(trie) == 2

    def test_agrees_with_linear_scan(self):
        rng = random.Random(9)
        prefixes = []
        trie = PrefixTrie()
        for i in range(60):
            length = rng.randrange(8, 29)
            network = rng.getrandbits(32) & (
                (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
            )
            prefix = Prefix(network, length)
            try:
                trie.insert(prefix, i)
            except MappingError:
                continue
            prefixes.append((prefix, i))
        for _ in range(500):
            address = rng.getrandbits(32)
            expected = None
            best_len = -1
            for prefix, value in prefixes:
                if prefix.contains_address(address) and prefix.length > best_len:
                    best_len = prefix.length
                    expected = value
            assert trie.lookup(address) == expected


class TestAddressPlan:
    def test_blocks_are_disjoint_slash16(self):
        plan = AddressPlan([1, 2, 3], origin_asn=99)
        blocks = [plan.block_of(asn) for asn in (1, 2, 3, 99)]
        networks = {block.network for block in blocks}
        assert len(networks) == 4
        assert all(block.length == 16 for block in blocks)

    def test_router_addresses_inside_block(self):
        plan = AddressPlan([1], origin_asn=99)
        address = plan.router_address(1, 5)
        assert plan.block_of(1).contains_address(address)

    def test_router_address_bounds(self):
        plan = AddressPlan([1], origin_asn=99)
        with pytest.raises(MappingError):
            plan.router_address(1, 70000)

    def test_unknown_as_raises(self):
        plan = AddressPlan([1], origin_asn=99)
        with pytest.raises(MappingError):
            plan.block_of(2)

    def test_target_inside_announced_prefix(self):
        plan = AddressPlan([1], origin_asn=99)
        assert ORIGIN_PREFIX.contains_address(plan.target_address())

    def test_random_address_in_block(self, rng):
        plan = AddressPlan([1, 2], origin_asn=99)
        for _ in range(50):
            assert plan.block_of(2).contains_address(
                plan.random_address_in(2, rng)
            )

    def test_pool_exhaustion_raises(self):
        with pytest.raises(MappingError):
            AddressPlan(range(1, 60000), origin_asn=99999)


class TestIPToASMapper:
    def test_maps_block_owner(self):
        plan = AddressPlan([10, 20], origin_asn=99)
        mapper = IPToASMapper(plan)
        assert mapper.map_address(plan.router_address(10, 0)) == 10
        assert mapper.map_address(plan.router_address(20, 3)) == 20

    def test_announced_prefix_maps_to_origin(self):
        plan = AddressPlan([10], origin_asn=99)
        mapper = IPToASMapper(plan)
        assert mapper.map_address(plan.target_address()) == 99

    def test_ixp_addresses_map_to_none(self):
        plan = AddressPlan([10], origin_asn=99)
        ixp_prefix = Prefix.parse("206.0.0.0/24")
        mapper = IPToASMapper(plan, [ixp_prefix])
        address = ixp_prefix.network + 5
        assert mapper.map_address(address) is None
        assert mapper.is_ixp_address(address)

    def test_unallocated_space_unmapped(self):
        plan = AddressPlan([10], origin_asn=99)
        mapper = IPToASMapper(plan)
        assert mapper.map_address(parse_ipv4("8.8.8.8")) is None
        assert not mapper.is_ixp_address(parse_ipv4("8.8.8.8"))
