"""Tests for the terminal plotter."""

import pytest

from repro.analysis.ascii_plot import (
    FIGURE_AXES,
    PlotOptions,
    plot_figure,
    plot_series,
)
from repro.analysis.figures import FigureResult, Series


def series(name="s", points=((1.0, 1.0), (2.0, 4.0), (3.0, 9.0))):
    return Series(name, tuple(points))


class TestOptions:
    def test_rejects_tiny_raster(self):
        with pytest.raises(ValueError):
            PlotOptions(width=2)
        with pytest.raises(ValueError):
            PlotOptions(height=1)


class TestPlotSeries:
    def test_contains_glyphs_and_legend(self):
        text = plot_series([series("alpha"), series("beta", ((1.0, 2.0),))])
        assert "o alpha" in text
        assert "x beta" in text
        assert "|" in text and "+" in text

    def test_raster_dimensions(self):
        options = PlotOptions(width=20, height=6)
        text = plot_series([series()], options)
        plot_lines = [line for line in text.splitlines() if "|" in line]
        assert len(plot_lines) == 6
        for line in plot_lines:
            assert len(line.split("|", 1)[1]) == 20

    def test_axis_labels_present(self):
        text = plot_series([series(points=((1.0, 5.0), (10.0, 50.0)))])
        assert "50" in text  # y max
        assert "10" in text  # x max

    def test_log_axes(self):
        options = PlotOptions(log_x=True, log_y=True)
        text = plot_series(
            [series(points=((1.0, 0.001), (1000.0, 1.0)))], options
        )
        assert "1.0e-03" in text or "0.00" in text

    def test_log_axis_rejects_nonpositive(self):
        options = PlotOptions(log_y=True)
        with pytest.raises(ValueError, match="positive"):
            plot_series([series(points=((1.0, 0.0),))], options)

    def test_constant_series_plot(self):
        text = plot_series([series(points=((1.0, 2.0), (5.0, 2.0)))])
        assert "o" in text

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            plot_series([])
        with pytest.raises(ValueError):
            plot_series([Series("empty", ())])


class TestPlotFigure:
    def figure(self):
        return FigureResult(
            figure_id="figure3",
            title="Example",
            xlabel="X",
            ylabel="Y",
            series=[series(points=((1.0, 1.0), (10.0, 0.1), (100.0, 0.0)))],
        )

    def test_uses_paper_axes(self):
        assert FIGURE_AXES["figure3"].log_x and FIGURE_AXES["figure3"].log_y
        assert not FIGURE_AXES["figure7"].log_x

    def test_filters_log_incompatible_points(self):
        # The (100, 0.0) point would break the log-y axis; it is dropped
        # point-wise instead of failing.
        text = plot_figure(self.figure())
        assert "Example" in text
        assert "o" in text

    def test_header_contains_axis_labels(self):
        text = plot_figure(self.figure())
        assert "[X vs Y]" in text

    def test_explicit_options_override(self):
        text = plot_figure(self.figure(), PlotOptions(width=30, height=8))
        plot_lines = [line for line in text.splitlines() if "|" in line]
        assert len(plot_lines) == 8
