"""Tests for cluster refinement (§III-B)."""

import pytest

from repro.core.clustering import ClusterState, clusters_from_catchment_history
from repro.errors import ClusteringError


class TestConstruction:
    def test_starts_as_single_cluster(self):
        state = ClusterState(range(1, 11))
        assert state.num_clusters() == 1
        assert state.sizes() == [10]

    def test_rejects_empty_universe(self):
        with pytest.raises(ClusteringError):
            ClusterState([])

    def test_universe_property(self):
        state = ClusterState([1, 2, 3])
        assert state.universe == frozenset({1, 2, 3})


class TestRefinement:
    def test_single_split(self):
        state = ClusterState(range(10))
        splits = state.refine({0, 1, 2})
        assert splits == 1
        assert sorted(state.sizes()) == [3, 7]

    def test_subset_catchment_is_noop(self):
        state = ClusterState(range(10))
        state.refine(range(10))
        assert state.num_clusters() == 1

    def test_disjoint_catchment_is_noop(self):
        state = ClusterState(range(10))
        splits = state.refine({100, 200})
        assert splits == 0
        assert state.num_clusters() == 1

    def test_paper_figure1_example(self):
        """Figure 1's three configurations split 9 sources into clusters."""
        sources = set(range(9))
        state = ClusterState(sources)
        # Config 1: catchments of m, n, p.
        state.refine({0, 1, 2})
        state.refine({3, 4, 5})
        state.refine({6, 7, 8})
        assert state.num_clusters() == 3
        # Config 2 (n withdrawn): n's sources split between m and p,
        # partitioning {3,4,5} into {3} and {4,5}.
        state.refine({0, 1, 2, 3})
        state.refine({4, 5, 6, 7, 8})
        assert state.num_clusters() == 4
        assert state.cluster_of(3) == frozenset({3})
        assert state.cluster_of(4) == frozenset({4, 5})
        assert state.cluster_of(6) == frozenset({6, 7, 8})

    def test_refine_with_catchments_is_deterministic(self):
        catchments_a = {"l2": {4, 5}, "l1": {1, 2, 3}}
        catchments_b = {"l1": {1, 2, 3}, "l2": {4, 5}}
        state_a = ClusterState(range(1, 7))
        state_b = ClusterState(range(1, 7))
        state_a.refine_with_catchments(catchments_a)
        state_b.refine_with_catchments(catchments_b)
        assert state_a.clusters() == state_b.clusters()

    def test_cluster_of_unknown_raises(self):
        state = ClusterState([1])
        with pytest.raises(ClusteringError):
            state.cluster_of(99)

    def test_refinement_only_refines(self):
        """Refinement never merges: each new cluster is a subset of the
        cluster its members were in before."""
        state = ClusterState(range(20))
        before = {asn: state.cluster_of(asn) for asn in range(20)}
        state.refine({1, 3, 5, 7})
        state.refine({2, 3, 4})
        for asn in range(20):
            assert state.cluster_of(asn) <= before[asn]


class TestMetrics:
    def make_partitioned(self):
        state = ClusterState(range(10))
        state.refine({0})          # sizes 1, 9
        state.refine({1, 2, 3})    # sizes 1, 3, 6
        return state

    def test_mean_size(self):
        assert self.make_partitioned().mean_size() == pytest.approx(10 / 3)

    def test_weighted_mean_size(self):
        # (1·1 + 3·3 + 6·6) / 10 = 46/10
        assert self.make_partitioned().mean_size_weighted() == pytest.approx(4.6)

    def test_singleton_fraction(self):
        assert self.make_partitioned().singleton_fraction() == pytest.approx(1 / 3)

    def test_percentile_bounds(self):
        state = self.make_partitioned()
        assert state.size_percentile(0) == 1.0
        assert state.size_percentile(100) == 6.0
        with pytest.raises(ValueError):
            state.size_percentile(101)

    def test_sizes_descending(self):
        assert self.make_partitioned().sizes() == [6, 3, 1]

    def test_clusters_sorted_largest_first(self):
        clusters = self.make_partitioned().clusters()
        assert [len(c) for c in clusters] == [6, 3, 1]


class TestCopy:
    def test_copy_independent(self):
        state = ClusterState(range(10))
        clone = state.copy()
        clone.refine({0, 1})
        assert state.num_clusters() == 1
        assert clone.num_clusters() == 2

    def test_copy_preserves_partition(self):
        state = ClusterState(range(10))
        state.refine({0, 1, 2})
        clone = state.copy()
        assert clone.clusters() == state.clusters()


class TestHistoryHelper:
    def test_builds_final_partition(self):
        history = [
            {"l1": {1, 2}, "l2": {3, 4}},
            {"l1": {1}, "l2": {2, 3, 4}},
        ]
        state = clusters_from_catchment_history([1, 2, 3, 4], history)
        assert state.sizes() == [2, 1, 1]
        assert state.cluster_of(3) == frozenset({3, 4})
