"""Tests for the end-to-end measurement campaign."""

import pytest

from repro.bgp.announcement import AnnouncementConfig, anycast_all


def anycast_outcome(testbed):
    return testbed.simulator.simulate(anycast_all(testbed.origin.link_ids))


class TestCampaign:
    def test_measures_a_substantial_universe(self, small_testbed):
        measurement = small_testbed.campaign.measure(anycast_outcome(small_testbed))
        # Feeds + probes cover many ASes via on-path observations.
        assert len(measurement.assignment) > 50
        assert measurement.bgp_paths_observed > 0
        assert measurement.traceroutes_observed > 0

    def test_assignments_mostly_match_ground_truth(self, small_testbed):
        outcome = anycast_outcome(small_testbed)
        measurement = small_testbed.campaign.measure(outcome)
        agree = sum(
            1
            for source, link in measurement.assignment.items()
            if outcome.catchment_of(source) == link
        )
        assert agree / len(measurement.assignment) > 0.9

    def test_origin_not_a_source(self, small_testbed):
        measurement = small_testbed.campaign.measure(anycast_outcome(small_testbed))
        assert small_testbed.origin.asn not in measurement.assignment

    def test_multi_catchment_fraction_small_but_tracked(self, small_testbed):
        measurement = small_testbed.campaign.measure(anycast_outcome(small_testbed))
        assert 0.0 <= measurement.stats.multi_catchment_fraction < 0.3

    def test_withdrawal_changes_measured_assignments(self, small_testbed):
        links = small_testbed.origin.link_ids
        full = small_testbed.campaign.measure(anycast_outcome(small_testbed))
        partial_outcome = small_testbed.simulator.simulate(
            AnnouncementConfig(announced=frozenset(links[1:]))
        )
        partial = small_testbed.campaign.measure(partial_outcome)
        withdrawn_link = links[0]
        assert withdrawn_link not in set(partial.assignment.values())
        moved = [
            source
            for source, link in full.assignment.items()
            if link == withdrawn_link and partial.assignment.get(source)
        ]
        assert moved  # previously-l0 sources observed elsewhere now

    def test_assignment_links_are_real(self, small_testbed):
        measurement = small_testbed.campaign.measure(anycast_outcome(small_testbed))
        valid_links = set(small_testbed.origin.link_ids)
        assert set(measurement.assignment.values()) <= valid_links
