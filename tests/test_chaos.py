"""End-to-end chaos suite: fault plans must degrade the tracker gracefully.

Every bundled plan is driven through the full batch pipeline; the run must
finish, the final clusters must still partition the universe, and the
invariant monitor must report no violations.  Determinism is the second
pillar: an identical plan produces a byte-identical report, and an empty
plan with injection enabled matches the no-injector report exactly.
"""

import random

import pytest

from repro.core.pipeline import SpoofTracker
from repro.errors import CheckpointCorruptionError
from repro.faults import (
    BUNDLED_PLANS,
    CHECKPOINT_CORRUPTION,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.live import (
    LiveTracebackService,
    ReplayScenario,
    load_checkpoint,
)
from repro.live.checkpoint import backup_path
from repro.spoof.sources import single_source_placement


def _placement(testbed, seed=3):
    return single_source_placement(
        sorted(testbed.topology.stubs), random.Random(seed)
    )


def _run(testbed, injector=None, max_configs=10, measured=False):
    tracker = SpoofTracker(testbed, injector=injector)
    try:
        return tracker.run(
            max_configs=max_configs,
            placement=_placement(testbed),
            measured=measured,
        )
    finally:
        tracker.engine.close()


def _assert_partition(report):
    seen = set()
    for cluster in report.clusters:
        assert not cluster & seen
        seen |= cluster
    assert seen == set(report.universe)


class TestBundledPlans:
    @pytest.mark.parametrize("name", sorted(BUNDLED_PLANS))
    def test_every_bundled_plan_degrades_gracefully(self, small_testbed, name):
        injector = FaultInjector(BUNDLED_PLANS[name])
        report = _run(small_testbed, injector=injector)
        assert len(report.steps) == 10
        _assert_partition(report)
        assert report.resilience is not None
        assert report.resilience.plan_name == name
        assert report.resilience.healthy
        assert report.resilience.violations == []
        assert report.resilience.invariant_checks > 0

    def test_worker_crash_plan_actually_injects(self, small_testbed):
        injector = FaultInjector(BUNDLED_PLANS["worker-crash"])
        report = _run(small_testbed, injector=injector)
        assert report.resilience.faults_injected["worker-crash"] > 0

    def test_measurement_loss_degrades_but_never_misleads(self, small_testbed):
        chaotic = _run(
            small_testbed,
            injector=FaultInjector(BUNDLED_PLANS["partial-measurement"]),
        )
        clean = _run(small_testbed)
        assert chaotic.resilience.degraded_configs > 0
        # Skipped (degraded) refinement steps can only make the partition
        # coarser, never different-but-equally-fine: every clean cluster
        # lies inside exactly one chaotic cluster.
        assert chaotic.mean_cluster_size >= clean.mean_cluster_size - 1e-9
        for fine in clean.clusters:
            containers = [c for c in chaotic.clusters if fine <= c]
            assert len(containers) == 1

    def test_measured_mode_survives_partial_measurement(self, small_testbed):
        injector = FaultInjector(BUNDLED_PLANS["partial-measurement"])
        report = _run(
            small_testbed, injector=injector, max_configs=6, measured=True
        )
        assert len(report.steps) == 6
        _assert_partition(report)
        assert report.resilience.healthy


class TestDeterminism:
    def test_same_plan_same_seed_identical_report(self, small_testbed):
        plan = BUNDLED_PLANS["mixed"]
        first = _run(small_testbed, injector=FaultInjector(plan))
        second = _run(small_testbed, injector=FaultInjector(plan))
        assert first.clusters == second.clusters
        assert first.steps == second.steps
        assert first.catchment_history == second.catchment_history
        assert (
            first.resilience.faults_injected
            == second.resilience.faults_injected
        )

    def test_empty_plan_matches_no_injector_exactly(self, small_testbed):
        clean = _run(small_testbed)
        empty = _run(small_testbed, injector=FaultInjector(FaultPlan()))
        assert empty.clusters == clean.clusters
        assert empty.steps == clean.steps
        assert empty.catchment_history == clean.catchment_history
        assert clean.resilience is None
        assert empty.resilience is not None
        assert empty.resilience.total_faults == 0
        assert empty.resilience.healthy

    def test_scaled_to_zero_is_fault_free(self, small_testbed):
        plan = BUNDLED_PLANS["mixed"].scaled(0.0)
        clean = _run(small_testbed)
        quiet = _run(small_testbed, injector=FaultInjector(plan))
        assert quiet.clusters == clean.clusters
        assert quiet.resilience.total_faults == 0


class TestLiveChaos:
    def _scenario(self, path, **overrides):
        kwargs = dict(
            seed=5,
            max_configs=4,
            min_configs=1,
            adaptive=False,
            checkpoint_every=7,
            checkpoint_path=path,
        )
        kwargs.update(overrides)
        return ReplayScenario(**kwargs)

    def test_live_run_with_mixed_plan_completes(self, small_testbed, tmp_path):
        injector = FaultInjector(BUNDLED_PLANS["mixed"])
        service = LiveTracebackService(
            scenario=self._scenario(str(tmp_path / "c.json")),
            testbed=small_testbed,
            injector=injector,
        )
        report = service.run()
        service.close()
        assert report.resilience is not None
        assert report.resilience.healthy
        assert report.windows

    def test_corrupted_checkpoint_rolls_back_and_converges(
        self, small_testbed, tmp_path
    ):
        # Gate corruption to ordinal >= 1: the second (final periodic)
        # checkpoint is torn mid-write, the rotated .bak from ordinal 0
        # stays intact, and recovery resumes from it.
        plan = FaultPlan(
            name="late-corruption",
            specs=(
                FaultSpec(kind=CHECKPOINT_CORRUPTION, rate=1.0, start=1),
            ),
        )
        path = str(tmp_path / "torn.json")
        service = LiveTracebackService(
            scenario=self._scenario(path),
            testbed=small_testbed,
            injector=FaultInjector(plan),
        )
        full = service.run()
        service.close()
        assert service.checkpoint_corruptions == 1

        restored = load_checkpoint(path)
        assert restored.restored_via_rollback
        resumed = restored.run()
        restored.close()
        assert resumed.windows == full.windows
        assert resumed.run_stats == full.run_stats
        assert resumed.clusters == full.clusters
        assert resumed.resilience.checkpoint_rollbacks == 1

    def test_every_checkpoint_corrupted_raises(self, small_testbed, tmp_path):
        plan = FaultPlan(
            name="total-corruption",
            specs=(FaultSpec(kind=CHECKPOINT_CORRUPTION, rate=1.0),),
        )
        path = str(tmp_path / "doomed.json")
        service = LiveTracebackService(
            scenario=self._scenario(path),
            testbed=small_testbed,
            injector=FaultInjector(plan),
        )
        service.run()
        service.close()
        assert service.checkpoint_corruptions >= 2
        with pytest.raises(CheckpointCorruptionError):
            load_checkpoint(path)

    def test_fault_plan_travels_inside_the_checkpoint(
        self, small_testbed, tmp_path
    ):
        plan = BUNDLED_PLANS["volume-noise"]
        path = str(tmp_path / "plan.json")
        service = LiveTracebackService(
            scenario=self._scenario(path),
            testbed=small_testbed,
            injector=FaultInjector(plan),
        )
        full = service.run()
        service.close()
        restored = load_checkpoint(path)
        assert restored.injector is not None
        assert restored.injector.plan == plan
        resumed = restored.run()
        restored.close()
        assert resumed.windows == full.windows
        assert resumed.run_stats == full.run_stats

    def test_backup_rotation_leaves_bak_on_disk(self, small_testbed, tmp_path):
        path = str(tmp_path / "rotate.json")
        service = LiveTracebackService(
            scenario=self._scenario(path),
            testbed=small_testbed,
        )
        service.run()
        service.close()
        import os

        assert os.path.exists(backup_path(path))
