"""Tests for announcement scheduling (random vs greedy, §V-C)."""

import pytest

from repro.core.scheduler import (
    GreedyScheduler,
    VolumeAwareGreedyScheduler,
    mean_cluster_size_curve,
    percentile_curve,
    random_schedule_curves,
)
from repro.errors import SchedulingError

UNIVERSE = list(range(16))
# Catchment histories of varying usefulness: config 0 splits in half,
# config 1 splits quarters, config 2 is redundant with 0, config 3 fine.
HISTORY = [
    {"l1": frozenset(range(8)), "l2": frozenset(range(8, 16))},
    {"l1": frozenset(list(range(4)) + list(range(8, 12))),
     "l2": frozenset(list(range(4, 8)) + list(range(12, 16)))},
    {"l1": frozenset(range(8)), "l2": frozenset(range(8, 16))},
    {"l1": frozenset(range(0, 16, 2)), "l2": frozenset(range(1, 16, 2))},
]


class TestMeanCurve:
    def test_curve_decreases_monotonically(self):
        curve = mean_cluster_size_curve(UNIVERSE, HISTORY)
        assert curve == sorted(curve, reverse=True)

    def test_curve_values(self):
        curve = mean_cluster_size_curve(UNIVERSE, HISTORY)
        assert curve[0] == pytest.approx(8.0)   # halves
        assert curve[1] == pytest.approx(4.0)   # quarters
        assert curve[2] == pytest.approx(4.0)   # redundant
        assert curve[3] == pytest.approx(2.0)

    def test_custom_order(self):
        curve = mean_cluster_size_curve(UNIVERSE, HISTORY, order=[3, 0])
        assert curve[0] == pytest.approx(8.0)
        assert curve[1] == pytest.approx(4.0)

    def test_rejects_bad_order(self):
        with pytest.raises(SchedulingError):
            mean_cluster_size_curve(UNIVERSE, HISTORY, order=[0, 0])
        with pytest.raises(SchedulingError):
            mean_cluster_size_curve(UNIVERSE, HISTORY, order=[99])


class TestRandomSchedules:
    def test_shapes(self):
        curves = random_schedule_curves(UNIVERSE, HISTORY, num_sequences=5, seed=1)
        assert len(curves) == 5
        assert all(len(curve) == len(HISTORY) for curve in curves)

    def test_deterministic_per_seed(self):
        a = random_schedule_curves(UNIVERSE, HISTORY, num_sequences=3, seed=2)
        b = random_schedule_curves(UNIVERSE, HISTORY, num_sequences=3, seed=2)
        assert a == b

    def test_max_steps(self):
        curves = random_schedule_curves(
            UNIVERSE, HISTORY, num_sequences=2, seed=1, max_steps=2
        )
        assert all(len(curve) == 2 for curve in curves)

    def test_rejects_zero_sequences(self):
        with pytest.raises(SchedulingError):
            random_schedule_curves(UNIVERSE, HISTORY, num_sequences=0)

    def test_all_orders_end_at_same_partition(self):
        curves = random_schedule_curves(UNIVERSE, HISTORY, num_sequences=10, seed=3)
        finals = {curve[-1] for curve in curves}
        assert len(finals) == 1  # refinement is order-independent at the end


class TestGreedy:
    def test_greedy_picks_most_informative_first(self):
        scheduler = GreedyScheduler(UNIVERSE, HISTORY)
        order, curve = scheduler.run()
        # Config 1 creates 2 splits immediately (quarters)?  Config 0 and 1
        # both split once per catchment; greedy must never pick the
        # redundant config 2 before config 0.
        assert 2 not in order or order.index(0) < order.index(2)

    def test_greedy_curve_matches_replay(self):
        scheduler = GreedyScheduler(UNIVERSE, HISTORY)
        order, curve = scheduler.run()
        replay = mean_cluster_size_curve(UNIVERSE, HISTORY, order=order)
        assert curve == pytest.approx(replay)

    def test_greedy_stops_when_nothing_splits(self):
        scheduler = GreedyScheduler(UNIVERSE, HISTORY)
        order, _ = scheduler.run()
        # Config 2 is fully redundant with config 0: once 0, 1, 3 are
        # deployed nothing remains to split, so the greedy stops early.
        assert len(order) == 3
        assert 2 not in order

    def test_greedy_beats_or_ties_random_median_early(self):
        scheduler = GreedyScheduler(UNIVERSE, HISTORY)
        _, greedy_curve = scheduler.run(max_steps=2)
        random_curves = random_schedule_curves(
            UNIVERSE, HISTORY, num_sequences=30, seed=4, max_steps=2
        )
        median = percentile_curve(random_curves, 50.0)
        assert greedy_curve[0] <= median[0]
        assert greedy_curve[1] <= median[1]

    def test_max_steps_respected(self):
        scheduler = GreedyScheduler(UNIVERSE, HISTORY)
        order, curve = scheduler.run(max_steps=1)
        assert len(order) == 1 and len(curve) == 1

    def test_rejects_empty_history(self):
        with pytest.raises(SchedulingError):
            GreedyScheduler(UNIVERSE, [])


class TestVolumeAwareGreedy:
    def test_prioritizes_high_volume_cluster_splits(self):
        # Heavy volume on sources 8..15; config 0 separates them from the
        # rest, config 3 splits everything evenly.  The volume-aware
        # scheduler should first deploy whichever cuts weighted cost most.
        volume = {asn: (10.0 if asn >= 8 else 0.1) for asn in UNIVERSE}
        scheduler = VolumeAwareGreedyScheduler(UNIVERSE, HISTORY, volume)
        order, curve = scheduler.run(max_steps=3)
        assert curve == sorted(curve, reverse=True)
        assert order  # deployed something

    def test_weighted_cost_decreases(self):
        volume = {asn: 1.0 for asn in UNIVERSE}
        scheduler = VolumeAwareGreedyScheduler(UNIVERSE, HISTORY, volume)
        _, curve = scheduler.run()
        assert curve == sorted(curve, reverse=True)

    def test_empty_volume_falls_back_to_split_gain(self):
        # Historical bug: with no volume evidence the weighted cost is 0
        # everywhere, ``cost < best_cost`` never fired, and the scheduler
        # returned an empty order.  It now falls back to the unweighted
        # split gain and reproduces the plain greedy order.
        scheduler = VolumeAwareGreedyScheduler(UNIVERSE, HISTORY, {})
        order, curve = scheduler.run()
        greedy_order, _ = GreedyScheduler(UNIVERSE, HISTORY).run()
        assert order == greedy_order
        assert len(curve) == len(order)
        assert all(value == 0.0 for value in curve)  # weighted cost stays 0

    def test_all_zero_volume_falls_back_to_split_gain(self):
        volume = {asn: 0.0 for asn in UNIVERSE}
        scheduler = VolumeAwareGreedyScheduler(UNIVERSE, HISTORY, volume)
        order, _ = scheduler.run()
        greedy_order, _ = GreedyScheduler(UNIVERSE, HISTORY).run()
        assert order == greedy_order

    def test_partially_zero_volume_still_refines_cold_clusters(self):
        # Volume concentrated on 0..7; config 0 isolates them, after which
        # every weighted reduction is zero — the schedule must keep
        # splitting the zero-volume half via the split-gain fallback
        # instead of stopping with half the universe unrefined.
        volume = {asn: (5.0 if asn < 8 else 0.0) for asn in UNIVERSE}
        scheduler = VolumeAwareGreedyScheduler(UNIVERSE, HISTORY, volume)
        order, _ = scheduler.run()
        assert len(order) == 3  # everything splittable got deployed
        assert 2 not in order  # the redundant config still never runs


class TestPercentileCurve:
    def test_median_of_known_curves(self):
        curves = [[1.0, 1.0], [2.0, 3.0], [3.0, 5.0]]
        assert percentile_curve(curves, 50.0) == [2.0, 3.0]

    def test_extremes(self):
        curves = [[1.0], [2.0], [3.0]]
        assert percentile_curve(curves, 0.0) == [1.0]
        assert percentile_curve(curves, 100.0) == [3.0]

    def test_pads_short_curves_with_final_value(self):
        # A curve that converged early holds its final value; the band
        # extends to the longest curve instead of truncating to the
        # shortest.
        curves = [[1.0, 2.0], [3.0]]
        assert percentile_curve(curves, 50.0) == [2.0, 2.5]
        assert percentile_curve(curves, 100.0) == [3.0, 3.0]

    def test_ignores_empty_curves(self):
        curves = [[1.0, 2.0], []]
        assert percentile_curve(curves, 50.0) == [1.0, 2.0]

    def test_rejects_empty(self):
        with pytest.raises(SchedulingError):
            percentile_curve([], 50.0)

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            percentile_curve([[1.0]], 200.0)


class TestEngineIntegration:
    def test_from_engine_measures_through_cache(self, small_testbed):
        from repro.bgp.announcement import AnnouncementConfig, anycast_all
        from repro.core.engine import SimulationEngine
        from repro.core.scheduler import measured_catchment_history

        engine = SimulationEngine(small_testbed.simulator)
        links = small_testbed.origin.link_ids
        configs = [anycast_all(links)] + [
            AnnouncementConfig(announced=frozenset(links) - {link})
            for link in sorted(links)[:3]
        ]
        universe, history = measured_catchment_history(engine, configs)
        assert len(history) == len(configs)
        assert all(
            members <= set(universe)
            for catchments in history
            for members in catchments.values()
        )
        simulated = engine.stats.configs_simulated
        scheduler = GreedyScheduler.from_engine(engine, configs)
        # The scheduler replays configurations the engine already saw.
        assert engine.stats.configs_simulated == simulated
        order, curve = scheduler.run()
        assert curve == sorted(curve, reverse=True)

    def test_empty_configs_rejected(self, small_testbed):
        from repro.core.engine import SimulationEngine
        from repro.core.scheduler import measured_catchment_history

        engine = SimulationEngine(small_testbed.simulator)
        with pytest.raises(SchedulingError):
            measured_catchment_history(engine, [])
