"""Shared fixtures: hand-built mini Internet, generated topologies, testbeds.

The hand-built ``mini`` topology has fully known routing behaviour and is
used for exact assertions on the BGP simulator; generated topologies and
testbeds cover statistical/integration behaviour.  Expensive fixtures are
session-scoped; tests must not mutate them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

import pytest

from repro.bgp.policy import PolicyModel
from repro.bgp.simulator import RoutingSimulator
from repro.core.pipeline import Testbed, build_testbed
from repro.topology.generator import GeneratedTopology, TopologyParams, generate_topology
from repro.topology.graph import ASGraph
from repro.topology.peering import OriginNetwork, PeeringLink, attach_origin
from repro.topology.relationships import Relationship

# Mini-topology AS numbers, used across BGP tests.
ORIGIN = 47065
P1, P2 = 100, 200  # the origin's transit providers
T1, T2 = 1, 2      # tier-1s
A, B, C = 301, 302, 303  # stubs
M = 150            # mid AS between T1 and stub C


@dataclass(frozen=True)
class MiniInternet:
    """Hand-built topology with two origin links and known catchments.

    Structure (providers above, customers below; ``=`` is peering)::

            T1 ========= T2
           /  \\          |
          P1   M         P2
         / \\   \\        / \\
        o   A    C      o   B

    The origin ``o`` is a customer of P1 (link "l1") and P2 (link "l2").
    A is P1's customer, B is P2's, C is M's (M is T1's customer).
    """

    graph: ASGraph
    origin: OriginNetwork


def build_mini_internet() -> MiniInternet:
    """Construct the mini Internet from scratch (fresh, mutable)."""
    graph = ASGraph()
    graph.add_link(T1, T2, Relationship.PEER)
    graph.add_link(P1, T1, Relationship.PROVIDER)
    graph.add_link(M, T1, Relationship.PROVIDER)
    graph.add_link(P2, T2, Relationship.PROVIDER)
    graph.add_link(A, P1, Relationship.PROVIDER)
    graph.add_link(B, P2, Relationship.PROVIDER)
    graph.add_link(C, M, Relationship.PROVIDER)
    graph.add_link(ORIGIN, P1, Relationship.PROVIDER)
    graph.add_link(ORIGIN, P2, Relationship.PROVIDER)
    origin = OriginNetwork(
        ORIGIN,
        [
            PeeringLink(link_id="l1", provider=P1, provider_name="ProviderOne"),
            PeeringLink(link_id="l2", provider=P2, provider_name="ProviderTwo"),
        ],
    )
    return MiniInternet(graph=graph, origin=origin)


@pytest.fixture()
def mini() -> MiniInternet:
    """Fresh mini Internet per test."""
    return build_mini_internet()


@pytest.fixture()
def mini_simulator(mini: MiniInternet) -> RoutingSimulator:
    """Simulator over the mini Internet with clean Gao-Rexford policies."""
    policy = PolicyModel(
        mini.graph,
        seed=0,
        policy_noise=0.0,
        loop_prevention_disabled_fraction=0.0,
    )
    return RoutingSimulator(mini.graph, mini.origin, policy)


@pytest.fixture(scope="session")
def small_topology() -> GeneratedTopology:
    """A small generated topology (shared; do not mutate)."""
    return generate_topology(
        TopologyParams(num_tier1=5, num_transit=40, num_stub=150, seed=11)
    )


@pytest.fixture(scope="session")
def small_testbed() -> Testbed:
    """A small fully-wired testbed (shared; do not mutate)."""
    return build_testbed(
        seed=5,
        topology_params=TopologyParams(
            num_tier1=5, num_transit=40, num_stub=160, seed=5
        ),
        num_links=5,
        num_vantages=12,
        num_probes=40,
    )


@pytest.fixture()
def rng() -> random.Random:
    """Seeded PRNG for tests needing randomness."""
    return random.Random(1234)
