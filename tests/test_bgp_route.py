"""Tests for route objects and the decision key."""

from repro.bgp.route import Route, best_route, stable_tiebreak
from repro.topology.relationships import Relationship


def make_route(path, link="l1", learned_from=None, relationship=None, pref=None):
    relationship = relationship or Relationship.CUSTOMER
    return Route(
        as_path=tuple(path),
        link_id=link,
        learned_from=learned_from if learned_from is not None else path[0],
        relationship=relationship,
        local_pref=pref if pref is not None else relationship.local_preference,
    )


class TestStableTiebreak:
    def test_deterministic(self):
        assert stable_tiebreak(1, 2, 0) == stable_tiebreak(1, 2, 0)

    def test_depends_on_pair(self):
        assert stable_tiebreak(1, 2, 0) != stable_tiebreak(1, 3, 0)

    def test_depends_on_salt(self):
        assert stable_tiebreak(1, 2, 0) != stable_tiebreak(1, 2, 1)


class TestDecision:
    def test_higher_localpref_wins(self):
        customer = make_route([10, 47065], relationship=Relationship.CUSTOMER)
        provider = make_route([20, 47065], relationship=Relationship.PROVIDER)
        assert best_route(5, [provider, customer], salt=0) == customer

    def test_shorter_path_wins_within_class(self):
        short = make_route([10, 47065])
        long = make_route([20, 99, 47065])
        assert best_route(5, [long, short], salt=0) == short

    def test_prepending_counts_toward_length(self):
        plain = make_route([10, 47065])
        prepended = make_route([20, 47065, 47065, 47065])
        assert best_route(5, [prepended, plain], salt=0) == plain

    def test_tiebreak_is_stable(self):
        a = make_route([10, 47065])
        b = make_route([20, 47065])
        winner = best_route(5, [a, b], salt=0)
        assert best_route(5, [b, a], salt=0) == winner

    def test_tiebreak_varies_across_holders(self):
        """Different holders may break the same tie differently — the
        'arbitrary router state' prepending is designed to override."""
        a = make_route([10, 47065])
        b = make_route([20, 47065])
        winners = {
            best_route(holder, [a, b], salt=0).learned_from
            for holder in range(1, 200)
        }
        assert winners == {10, 20}

    def test_no_candidates(self):
        assert best_route(5, [], salt=0) is None


class TestRouteHelpers:
    def test_path_length_counts_prepends(self):
        route = make_route([10, 47065, 47065, 47065])
        assert route.path_length == 4

    def test_extended_by(self):
        route = make_route([10, 47065])
        assert route.extended_by(7) == (7, 10, 47065)

    def test_contains_loop_for(self):
        route = make_route([10, 666, 47065])
        assert route.contains_loop_for(666)
        assert not route.contains_loop_for(5)
