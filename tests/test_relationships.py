"""Tests for relationship semantics and the valley-free export rule."""

import pytest

from repro.errors import RelationshipError
from repro.topology.relationships import (
    CAIDA_P2C,
    CAIDA_P2P,
    Relationship,
    export_allowed,
    relationship_from_caida,
    relationship_to_caida,
)


class TestRelationship:
    def test_inverse_pairs(self):
        assert Relationship.CUSTOMER.inverse is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse is Relationship.CUSTOMER
        assert Relationship.PEER.inverse is Relationship.PEER

    def test_local_preference_ordering(self):
        assert (
            Relationship.CUSTOMER.local_preference
            > Relationship.PEER.local_preference
            > Relationship.PROVIDER.local_preference
        )

    def test_preference_rank_matches_enum_order(self):
        # Lower enum value = more preferred; used as a sort key elsewhere.
        assert Relationship.CUSTOMER < Relationship.PEER < Relationship.PROVIDER


class TestCaidaCodes:
    def test_from_caida_p2c(self):
        assert relationship_from_caida(CAIDA_P2C) is Relationship.CUSTOMER

    def test_from_caida_p2p(self):
        assert relationship_from_caida(CAIDA_P2P) is Relationship.PEER

    def test_from_caida_unknown(self):
        with pytest.raises(RelationshipError):
            relationship_from_caida(3)

    def test_to_caida_roundtrip(self):
        assert relationship_to_caida(Relationship.CUSTOMER) == CAIDA_P2C
        assert relationship_to_caida(Relationship.PEER) == CAIDA_P2P

    def test_to_caida_provider_rejected(self):
        with pytest.raises(RelationshipError):
            relationship_to_caida(Relationship.PROVIDER)


class TestExportRule:
    """Gao-Rexford: customer routes go everywhere; peer/provider routes
    only to customers."""

    def test_customer_routes_exported_everywhere(self):
        for export_to in Relationship:
            assert export_allowed(Relationship.CUSTOMER, export_to)

    def test_peer_routes_only_to_customers(self):
        assert export_allowed(Relationship.PEER, Relationship.CUSTOMER)
        assert not export_allowed(Relationship.PEER, Relationship.PEER)
        assert not export_allowed(Relationship.PEER, Relationship.PROVIDER)

    def test_provider_routes_only_to_customers(self):
        assert export_allowed(Relationship.PROVIDER, Relationship.CUSTOMER)
        assert not export_allowed(Relationship.PROVIDER, Relationship.PEER)
        assert not export_allowed(Relationship.PROVIDER, Relationship.PROVIDER)

    def test_no_valley_paths_possible(self):
        """A route that went down (provider→customer) can never go up again:
        once learned from a provider it is only exported to customers."""
        downstream = Relationship.PROVIDER  # route learned from provider
        assert not export_allowed(downstream, Relationship.PROVIDER)
        assert not export_allowed(downstream, Relationship.PEER)
