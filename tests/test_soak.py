"""Tests for the soak & upgrade harness (``repro.soak``).

The load-bearing claim: a campaign riddled with restarts, kills,
checkpoint corruption, fault escalation, tenant churn, and checkpoint
schema alternation ends with the *same* fleet attribution digest as an
uninterrupted reference run — and the committed resource ceilings hold
for the whole horizon.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import FleetError
from repro.fleet import FleetRuntime, FleetSpec, fleet_digest, scripted_stream
from repro.fleet.stream import EVICT, LAUNCH
from repro.live.checkpoint import CHECKPOINT_VERSION, writing_version
from repro.obs import EventBus, MetricsRegistry, Observability, ObsServer
from repro.obs.slo import SOAK_SLOS, SloWatchdog
from repro.soak import (
    ResourceCeilings,
    ResourceSample,
    ResourceSentinel,
    SoakRunner,
    SoakSpec,
    render_soak_summary,
    render_soak_table,
)
from repro.topology.generator import TopologyParams

SMALL_PARAMS = TopologyParams(num_tier1=4, num_transit=24, num_stub=90, seed=1)


def small_fleet(**overrides) -> FleetSpec:
    base = dict(
        seed=11,
        tenants=2,
        attacks_per_tenant=2,
        max_configs=3,
        num_sources=6,
        window_minutes=20.0,
        checkpoint_every=1,
        checkpoint_keep=2,
        num_links=5,
        num_vantages=12,
        num_probes=40,
        topology_params=SMALL_PARAMS,
    )
    base.update(overrides)
    return FleetSpec(**base)


class TestSoakCampaign:
    """One fully hostile campaign, shared across the assertions."""

    @pytest.fixture(scope="class")
    def soaked(self, tmp_path_factory):
        spec = SoakSpec(
            fleet=small_fleet(),
            epochs=4,
            epoch_minutes=40.0,
            restart_every=1,
            kill_rate=0.4,
            corrupt_rate=0.5,
            churn_tenants=1,
            alternate_versions=True,
        )
        runner = SoakRunner(
            spec,
            checkpoint_dir=str(tmp_path_factory.mktemp("soak")),
        )
        return spec, runner.run()

    def test_disrupted_digest_matches_uninterrupted_reference(self, soaked):
        _, report = soaked
        assert report.reference_digest
        assert report.verified
        assert report.digest == report.reference_digest

    def test_the_campaign_was_actually_hostile(self, soaked):
        _, report = soaked
        assert report.restarts == 3
        assert report.kills > 0
        assert report.corruptions > 0
        assert report.crashes > 0
        assert report.resumes > report.restarts

    def test_v1_migrations_happened_mid_campaign(self, soaked):
        _, report = soaked
        assert report.migrations > 0
        # Migrations first appear after the restart that follows a
        # v1-writing epoch.
        assert report.epochs[0].migrations == 0
        assert report.epochs[1].migrations > 0

    def test_epoch_rows_alternate_schema_versions(self, soaked):
        spec, report = soaked
        versions = [row.version_written for row in report.epochs]
        assert versions == [2, 1, 2, 1]
        assert all(
            row.version_written in (CHECKPOINT_VERSION, 1)
            for row in report.epochs
        )

    def test_epoch_counters_are_cumulative(self, soaked):
        _, report = soaked
        for earlier, later in zip(report.epochs, report.epochs[1:]):
            assert later.resumes >= earlier.resumes
            assert later.migrations >= earlier.migrations
            assert later.windows >= earlier.windows

    def test_churned_tenant_appears_and_is_evicted(self, soaked):
        spec, report = soaked
        churned = {
            shard.tenant
            for shard in report.shards
            if shard.tenant not in spec.fleet.tenant_names()
        }
        assert churned  # the extra tenant made it into the report
        for shard in report.shards:
            if shard.tenant in churned:
                assert shard.state == "evicted"

    def test_resource_trajectory_recorded(self, soaked):
        spec, report = soaked
        assert len(report.samples) == spec.epochs
        assert all(sample.rss_mb > 0 for sample in report.samples)
        assert report.healthy  # generous default ceilings hold

    def test_render_table_and_summary(self, soaked):
        _, report = soaked
        table = render_soak_table(report.epochs)
        assert len(table.splitlines()) == len(report.epochs) + 1
        summary = render_soak_summary(report)
        assert "MATCH" in summary
        assert report.digest in summary

    def test_report_round_trips_to_json(self, soaked):
        _, report = soaked
        body = json.dumps(report.as_dict())
        parsed = json.loads(body)
        assert parsed["verified"] is True
        assert parsed["migrations"] == report.migrations


class TestSoakWithoutAlternation:
    def test_restarts_preserve_checkpoint_bytes_exactly(self, tmp_path):
        """With one schema throughout (and no corruption), even the
        checkpoint *bytes* match the uninterrupted reference."""
        spec = SoakSpec(
            fleet=small_fleet(),
            epochs=3,
            epoch_minutes=40.0,
            restart_every=1,
            kill_rate=0.4,
            corrupt_rate=0.0,
            alternate_versions=False,
        )
        report = SoakRunner(spec, checkpoint_dir=str(tmp_path)).run()
        assert report.verified
        assert report.checkpoints_match
        assert report.migrations == 0


class TestMixedVersionFleetResume:
    def test_adoption_migrates_only_the_old_schema_shards(self, tmp_path):
        """A fleet whose shards persisted *different* schema versions
        resumes cleanly after a restart: v1 shards migrate, v2 shards
        do not, and the final digest matches an uninterrupted run."""
        spec = small_fleet(tenants=1, attacks_per_tenant=2, max_configs=2)
        events = scripted_stream(spec)
        first = FleetRuntime(
            spec, events=events, checkpoint_dir=str(tmp_path / "mixed")
        )
        with writing_version(1):
            first.run_until(40.0)
        keys = sorted(first.shards)
        assert len(keys) == 2
        # One shard re-checkpoints under the current schema: the
        # directory now holds one v1 and one v2 primary.
        first.shards[keys[0]].force_checkpoint()
        attacks = {key: first.shards[key].attack for key in keys}
        skip = first._cursor
        first.close()

        second = FleetRuntime(
            spec,
            events=events,
            checkpoint_dir=str(tmp_path / "mixed"),
            skip_events=skip,
        )
        for key in keys:
            assert second.adopt(attacks[key])
        report = second.run()
        second.close()
        migrations = {
            shard.prefix: shard.migrations for shard in report.shards
        }
        assert sorted(migrations.values()) == [0, 1]

        reference = FleetRuntime(
            spec, events=events, checkpoint_dir=str(tmp_path / "ref")
        )
        expected = reference.run()
        reference.close()
        # Attribution digests only: the forced mid-campaign checkpoint
        # shifts that shard's save ordinal, so checkpoint bytes are not
        # expected to match here (byte identity is covered by
        # TestSoakWithoutAlternation).
        assert fleet_digest(
            report.shards, include_checkpoints=False
        ) == fleet_digest(expected.shards, include_checkpoints=False)


class TestResourceSentinel:
    def test_sample_reads_real_process_numbers(self):
        sentinel = ResourceSentinel()
        sample = sentinel.sample(epoch=0)
        assert sample.rss_mb > 0
        assert sample.open_fds > 0
        assert sample.threads >= 1

    def test_sample_lands_in_registry_and_bus(self):
        obs = Observability(registry=MetricsRegistry(), bus=EventBus())
        events = []
        obs.bus.attach(events.append)
        sentinel = ResourceSentinel(obs=obs)
        sentinel.sample(epoch=3)
        rendered = obs.registry.render_prometheus()
        assert "repro_resource_rss_bytes" in rendered
        assert "repro_resource_open_fds" in rendered
        assert "repro_resource_threads" in rendered
        assert "repro_resource_samples_total 1" in rendered
        resource_events = [e for e in events if e["kind"] == "resource"]
        assert len(resource_events) == 1
        assert resource_events[0]["epoch"] == 3
        assert resource_events[0]["ceiling_utilization"] > 0

    def test_ceiling_breach_flips_readyz_and_counts(self):
        """Satellite: a sentinel breach drives the new resource_ceiling
        SLO — /readyz goes 503 and the breach counter increments."""
        obs = Observability(registry=MetricsRegistry(), bus=EventBus())
        watchdog = SloWatchdog(SOAK_SLOS, registry=obs.registry)
        obs.bus.attach(watchdog.observe)
        server = ObsServer(obs=obs, watchdog=watchdog, port=0)
        server.start()
        try:
            server.set_ready()
            with urllib.request.urlopen(f"{server.url}/readyz") as response:
                assert response.status == 200
            # Any real process dwarfs a 1 MiB RSS ceiling.
            sentinel = ResourceSentinel(
                ceilings=ResourceCeilings(rss_mb=1.0), obs=obs
            )
            sentinel.sample(epoch=0)
            assert not watchdog.ready
            assert "resource_ceiling" in watchdog.breaches
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/readyz")
            assert excinfo.value.code == 503
            rendered = obs.registry.render_prometheus()
            assert (
                'repro_slo_breached_total{slo="resource_ceiling"} 1'
                in rendered
            )
        finally:
            server.stop()

    def test_rss_slope_fits_the_trend(self):
        sentinel = ResourceSentinel()
        for epoch, rss in enumerate((100.0, 110.0, 120.0, 130.0)):
            sentinel.samples.append(
                ResourceSample(
                    epoch=epoch, rss_mb=rss, open_fds=10, threads=2
                )
            )
        assert sentinel.rss_slope_mb() == pytest.approx(10.0)

    def test_slope_budget_breach_is_reported(self):
        sentinel = ResourceSentinel(
            ceilings=ResourceCeilings(
                rss_mb=0, open_fds=0, threads=0, rss_slope_mb_per_epoch=5.0
            )
        )
        for epoch, rss in enumerate((100.0, 150.0, 200.0)):
            sentinel.samples.append(
                ResourceSample(
                    epoch=epoch, rss_mb=rss, open_fds=10, threads=2
                )
            )
        breaches = sentinel.breaches()
        assert len(breaches) == 1
        assert "slope" in breaches[0]

    def test_zero_ceilings_disable_checks(self):
        sentinel = ResourceSentinel(
            ceilings=ResourceCeilings(
                rss_mb=0, open_fds=0, threads=0, rss_slope_mb_per_epoch=0
            )
        )
        sentinel.sample(epoch=0)
        assert sentinel.breaches() == []
        utilization, worst = sentinel.utilization(sentinel.samples[0])
        assert utilization == 0.0
        assert worst == "none"


class TestSoakSpec:
    def test_event_stream_contains_churn_launch_and_evict(self):
        spec = SoakSpec(
            fleet=small_fleet(),
            epochs=4,
            epoch_minutes=40.0,
            churn_tenants=1,
        )
        events = spec.events()
        base = set(spec.fleet.tenant_names())
        churn_launches = [
            e for e in events if e.action == LAUNCH and e.tenant not in base
        ]
        evictions = [e for e in events if e.action == EVICT]
        assert churn_launches and evictions
        assert all(e.minute > 0 for e in churn_launches)
        for launch in churn_launches:
            assert any(
                evict.tenant == launch.tenant
                and evict.minute == launch.minute + 2 * spec.epoch_minutes
                for evict in evictions
            )

    def test_churn_leaves_base_tenants_untouched(self):
        plain = small_fleet().attacks()
        churned = SoakSpec(
            fleet=small_fleet(), churn_tenants=2
        ).churn_attacks()
        base_keys = {attack.key for attack in plain}
        assert all(attack.key not in base_keys for attack in churned)

    def test_horizons_end_with_a_drain(self):
        spec = SoakSpec(
            fleet=small_fleet(), epochs=3, epoch_minutes=50.0
        )
        assert spec.horizons() == [50.0, 100.0, None]

    def test_validation(self):
        with pytest.raises(FleetError):
            SoakSpec(fleet=small_fleet(), epochs=0)
        with pytest.raises(FleetError):
            SoakSpec(fleet=small_fleet(checkpoint_every=0))
        with pytest.raises(FleetError):
            SoakSpec(fleet=small_fleet(), kill_rate=1.5)
        with pytest.raises(FleetError):
            SoakSpec(fleet=small_fleet(), escalation_base=-1.0)

    def test_runner_requires_a_checkpoint_directory(self):
        with pytest.raises(FleetError):
            SoakRunner(SoakSpec(fleet=small_fleet()), checkpoint_dir="")
