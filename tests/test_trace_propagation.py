"""Cross-process trace propagation + flight-dump determinism (ISSUE 10).

Two halves of the tentpole contract:

* span identity is pure structure, so the grafted span tree — and its
  :func:`span_tree_signature` — is identical at any worker count; and
* flight bundles capture only the deterministic projection, so the same
  seeded kill scenario dumps byte-identical black boxes across
  interpreter hash seeds and across the serial/asyncio fleet drivers,
  and its reconstructed timeline digest is a replay invariant.
"""

import asyncio
import hashlib
import os
import subprocess
import sys
import textwrap

from repro.fleet import (
    CRASH,
    FleetEvent,
    FleetRuntime,
    FleetSpec,
    scripted_stream,
)
from repro.core.pipeline import SpoofTracker
from repro.obs import (
    Observability,
    Span,
    TraceContext,
    Tracer,
    build_timeline,
    load_spans,
    span_tree_signature,
)
from repro.topology.generator import TopologyParams

#: 2 tenants x 1 attack: the smallest fleet where a kill is observable.
TWO_SHARD_SPEC = FleetSpec(
    seed=11,
    tenants=2,
    attacks_per_tenant=1,
    max_configs=3,
    num_sources=6,
    num_links=5,
    num_vantages=12,
    num_probes=40,
    checkpoint_every=2,
    topology_params=TopologyParams(
        num_tier1=4, num_transit=24, num_stub=90, seed=1
    ),
)

#: The shard every kill scenario here targets.
VICTIM = ("tenant-00", "198.18.0.0/29")


def crash_events(spec):
    return scripted_stream(
        spec,
        [
            FleetEvent(
                minute=120.0, action=CRASH,
                tenant=VICTIM[0], prefix=VICTIM[1],
            )
        ],
    )


def run_crashed_fleet(tmp_path, use_async=False):
    """Run the kill scenario; returns the fleet report.

    ``tmp_path`` gets ``ckpt/`` and ``flight/`` subdirectories.
    """
    runtime = FleetRuntime(
        TWO_SHARD_SPEC,
        events=crash_events(TWO_SHARD_SPEC),
        checkpoint_dir=str(tmp_path / "ckpt"),
        flight_dir=str(tmp_path / "flight"),
    )
    try:
        if use_async:
            return asyncio.run(runtime.run_async())
        return runtime.run()
    finally:
        runtime.close()


def bundle_hashes(flight_dir):
    """Sorted (filename, sha256-of-bytes) for every bundle in a dir."""
    hashes = []
    for name in sorted(os.listdir(flight_dir)):
        if name.startswith("flight-") and name.endswith(".json"):
            with open(os.path.join(flight_dir, name), "rb") as handle:
                hashes.append(
                    (name, hashlib.sha256(handle.read()).hexdigest())
                )
    return hashes


class TestTraceContext:
    def test_roundtrips_across_the_wire(self):
        ctx = TraceContext(parent_span_id="abcd", run_name="track")
        assert TraceContext.from_tuple(ctx.as_tuple()) == ctx

    def test_child_record_matches_serial_span_identity(self):
        """A worker minting ids via TraceContext produces exactly the
        span the serial path would have opened."""
        serial = Tracer("track")
        with serial.span("engine"):
            with serial.span("simulate", config=0):
                pass
        remote = Tracer("track")
        with remote.span("engine"):
            record = remote.context().child_record(
                "simulate", 0, attrs={"config": 0}
            )
        simulate = next(
            span for span in serial.finished if span.name == "simulate"
        )
        assert record["span_id"] == simulate.span_id
        assert record["parent_id"] == simulate.parent_id

    def test_graft_notifies_listeners_and_preserves_signature(self):
        tracer = Tracer("track")
        seen = []
        tracer.listeners.append(lambda record: seen.append(record["name"]))
        with tracer.span("engine"):
            ctx = tracer.context()
        tracer.graft([ctx.child_record("simulate", i) for i in range(2)])
        tracer.finish()
        assert seen == ["engine", "simulate", "simulate", "track"]
        serial = Tracer("track")
        with serial.span("engine"):
            with serial.span("simulate"):
                pass
            with serial.span("simulate"):
                pass
        serial.finish()
        assert span_tree_signature(tracer.records()) == span_tree_signature(
            serial.records()
        )


class TestWorkerCountInvariance:
    def _run(self, testbed, workers):
        obs = Observability.for_run("track")
        tracker = SpoofTracker(testbed, workers=workers, obs=obs)
        try:
            tracker.run(max_configs=10)
        finally:
            tracker.engine.close()
        obs.tracer.finish()
        return obs

    def test_span_signature_identical_workers_1_vs_4(
        self, small_testbed, tmp_path
    ):
        serial = self._run(small_testbed, workers=1)
        fanned = self._run(small_testbed, workers=4)
        signature = span_tree_signature(serial.tracer.records())
        assert signature == span_tree_signature(fanned.tracer.records())
        # The signature survives the JSONL round trip (what the CLI
        # writes is what `spooftrack timeline --trace` reads back).
        path = str(tmp_path / "trace.jsonl")
        fanned.tracer.write_jsonl(path)
        assert span_tree_signature(load_spans(path)) == signature

    def test_worker_spans_graft_under_engine_parent(self, small_testbed):
        obs = self._run(small_testbed, workers=4)
        spans = obs.tracer.records()
        by_id = {span["span_id"]: span for span in spans}
        workers = [
            span for span in spans
            if span["name"] in ("simulate", "warm_start")
            and by_id.get(span["parent_id"], {}).get("name") == "engine_batch"
        ]
        assert workers  # remote-minted spans landed in the grafted tree
        for span in workers:
            assert span["parent_id"] in by_id  # no orphaned worker spans


class TestFlightDumpDeterminism:
    def test_kill_produces_bundle_and_stable_timeline(self, tmp_path):
        report = run_crashed_fleet(tmp_path)
        by_key = {shard.key: shard for shard in report.shards}
        assert by_key[VICTIM].crashes == 1 and by_key[VICTIM].resumes == 1
        hashes = bundle_hashes(tmp_path / "flight")
        assert any("kill" in name for name, _ in hashes)
        # Reconstruction is deterministic: two reads, one digest.
        timeline = build_timeline(
            flight_dir=str(tmp_path / "flight"),
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        again = build_timeline(
            flight_dir=str(tmp_path / "flight"),
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        assert len(timeline) > 0
        assert timeline.digest() == again.digest()

    def test_replays_dump_identical_bundles_and_timelines(self, tmp_path):
        run_crashed_fleet(tmp_path / "a")
        run_crashed_fleet(tmp_path / "b")
        assert bundle_hashes(tmp_path / "a" / "flight") == bundle_hashes(
            tmp_path / "b" / "flight"
        )
        digests = [
            build_timeline(
                flight_dir=str(tmp_path / run / "flight"),
                checkpoint_dir=str(tmp_path / run / "ckpt"),
            ).digest()
            for run in ("a", "b")
        ]
        assert digests[0] == digests[1]

    def test_asyncio_driver_dumps_identical_bundles(self, tmp_path):
        run_crashed_fleet(tmp_path / "serial")
        run_crashed_fleet(tmp_path / "asyncio", use_async=True)
        serial = bundle_hashes(tmp_path / "serial" / "flight")
        fanned = bundle_hashes(tmp_path / "asyncio" / "flight")
        assert serial and serial == fanned


class TestHashSeedInvariance:
    """Bundles must not depend on the interpreter's string hash seed.

    Ring entries pass through dicts keyed by strings; canonical JSON
    (sort_keys) is what keeps the bundle bytes seed-independent.  Only a
    subprocess pinned to a different PYTHONHASHSEED can prove it.
    """

    PROBE = textwrap.dedent(
        """
        import hashlib, os, sys, tempfile

        from repro.fleet import (
            CRASH, FleetEvent, FleetRuntime, FleetSpec, scripted_stream,
        )
        from repro.obs import build_timeline
        from repro.topology.generator import TopologyParams

        spec = FleetSpec(
            seed=11, tenants=2, attacks_per_tenant=1, max_configs=3,
            num_sources=6, num_links=5, num_vantages=12, num_probes=40,
            checkpoint_every=2,
            topology_params=TopologyParams(
                num_tier1=4, num_transit=24, num_stub=90, seed=1
            ),
        )
        events = scripted_stream(spec, [
            FleetEvent(minute=120.0, action=CRASH,
                       tenant="tenant-00", prefix="198.18.0.0/29"),
        ])
        base = tempfile.mkdtemp()
        flight_dir = os.path.join(base, "flight")
        runtime = FleetRuntime(
            spec, events=events,
            checkpoint_dir=os.path.join(base, "ckpt"),
            flight_dir=flight_dir,
        )
        try:
            runtime.run()
        finally:
            runtime.close()
        for name in sorted(os.listdir(flight_dir)):
            with open(os.path.join(flight_dir, name), "rb") as handle:
                print(name, hashlib.sha256(handle.read()).hexdigest())
        print("timeline", build_timeline(flight_dir=flight_dir).digest())
        """
    )

    def run_probe(self, hash_seed):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = src + os.pathsep * bool(
            env.get("PYTHONPATH")
        ) + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", self.PROBE],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_bundles_identical_across_hash_seeds(self):
        first = self.run_probe("11")
        second = self.run_probe("22")
        assert "kill" in first
        assert first == second
