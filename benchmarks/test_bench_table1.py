"""Table I benchmark: PoPs and providers of the testbed origin."""

from repro.analysis.report import render_figure  # noqa: F401  (harness import)
from repro.analysis.tables import table1


def test_table1(benchmark, bench_run, capsys):
    table = benchmark(table1, bench_run.testbed)

    assert len(table.rows) == 7  # seven muxes, like the paper's Table I
    mux_names = {row[0] for row in table.rows}
    assert {"AMS-IX", "GRNet", "USC/ISI", "NEU", "Seattle-IX", "UFMG", "UW"} == (
        mux_names
    )
    providers = {row[1] for row in table.rows}
    assert len(providers) == 7  # one distinct transit provider per mux

    with capsys.disabled():
        print()
        print(table.render())
