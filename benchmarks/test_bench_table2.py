"""Table II benchmark: the IP-traceback comparison taxonomy."""

from repro.analysis.tables import table2


def test_table2(benchmark, capsys):
    table = benchmark(table2)

    assert len(table.rows) == 6
    this_paper = table.rows[-1]
    assert this_paper[0] == "Routing (this paper)"
    # The paper's claims: no cooperation, no router updates, no overhead,
    # AS-level precision, long identification delay.
    assert this_paper[2:] == ("No", "No", "No", "AS", "Long")
    marking = [row for row in table.rows if row[0] == "Marking"][0]
    assert marking[3] == "Yes"  # marking needs router updates

    with capsys.disabled():
        print()
        print(table.render())
