"""Supplementary: convergence-delay distribution (paper §IV-a).

The paper keeps each configuration active for 70 minutes because "route
convergence takes less than 2.5 minutes 99% of the time".  This benchmark
runs the event-driven engine over a sample of the schedule and checks
that the simulated convergence-time distribution justifies the same dwell
arithmetic — and that every run lands exactly on the fixpoint simulator's
routes.
"""

import pytest

from repro.analysis.stats import percentile
from repro.bgp.convergence import ConvergenceEngine
from repro.core.timeline import CampaignTimeline

SAMPLE_EVERY = 25  # every Nth configuration of the shared schedule


def test_convergence_distribution(benchmark, bench_run, capsys):
    testbed = bench_run.testbed
    engine = ConvergenceEngine(testbed.graph, testbed.origin, testbed.policy)
    configs = bench_run.schedule[::SAMPLE_EVERY]

    def run_sample():
        times = []
        messages = []
        for config in configs:
            result = engine.run(config)
            fixpoint = testbed.simulator.simulate(config)
            assert result.agrees_with(fixpoint)
            times.append(result.convergence_time)
            messages.append(result.messages_sent)
        return times, messages

    times, messages = benchmark.pedantic(run_sample, iterations=1, rounds=2)

    p50 = percentile(times, 50.0)
    p99 = percentile(times, 99.0)
    dwell_seconds = CampaignTimeline().minutes_per_config * 60
    # The paper's premise: convergence fits comfortably inside the dwell.
    assert p99 < 2.5 * 60 * 2  # within 2x of the paper's 2.5-minute p99
    assert p99 < dwell_seconds / 5

    with capsys.disabled():
        print()
        print(
            f"convergence over {len(times)} configurations: "
            f"median {p50:.1f}s, p99 {p99:.1f}s, max {max(times):.1f}s "
            f"(paper p99: 150s; dwell: {dwell_seconds:.0f}s)"
        )
        print(
            f"messages per configuration: median "
            f"{percentile(messages, 50.0):.0f}, max {max(messages)}"
        )
