"""Ablation: BGP poisoning vs no-export communities (paper §III-A-c, §VIII).

The paper calls poisoning "best-effort": ASes that disable loop prevention
ignore it.  The §VIII community extension severs the same provider links
via provider action communities, which the target cannot ignore.  This
ablation deploys the same (provider, neighbor) sever targets both ways on
an Internet where a third of ASes ignore poisoning, and compares the
*sever success rate*: the fraction of targets that stop taking the route
directly from the targeted provider.

Poisoning also stuffs the AS-path (the ``o u o`` PEERING format), which
perturbs path-length decisions Internet-wide; the benchmark reports those
side-effect moves too — they help localization but are not controllable.
"""

import pytest

from repro.bgp.announcement import anycast_all
from repro.bgp.policy import PolicyModel
from repro.bgp.simulator import RoutingSimulator
from repro.core.configgen import (
    community_configs,
    poison_configs,
    provider_neighbor_targets,
)
from repro.core.pipeline import build_testbed
from repro.topology import TopologyParams

CAP = 4  # targets per provider


@pytest.fixture(scope="module")
def hostile_testbed():
    """Testbed where a third of ASes ignore poisoning."""
    testbed = build_testbed(
        seed=9,
        topology_params=TopologyParams(
            num_tier1=6, num_transit=60, num_stub=300, seed=9
        ),
    )
    policy = PolicyModel(
        testbed.graph,
        seed=9,
        policy_noise=0.05,
        loop_prevention_disabled_fraction=0.33,
        tier1_leak_filtering=True,
    )
    simulator = RoutingSimulator(testbed.graph, testbed.origin, policy)
    return testbed, simulator


def sever_stats(testbed, simulator, configs, baseline):
    """(successes, applicable targets, side-effect moves) for a config set."""
    successes = 0
    applicable = 0
    side_moves = 0
    for config in configs:
        if config.poisoned:
            ((link, targets),) = config.poisoned.items()
        else:
            ((link, targets),) = config.no_export.items()
        (target,) = targets
        provider = testbed.origin.provider_of(link)
        baseline_route = baseline.route(target)
        outcome = simulator.simulate(config)
        side_moves += sum(
            1
            for asn in baseline.covered_ases
            if asn != target
            and outcome.catchment_of(asn) is not None
            and outcome.catchment_of(asn) != baseline.catchment_of(asn)
        )
        if baseline_route is None or baseline_route.learned_from != provider:
            continue  # target was not using the provider: nothing to sever
        applicable += 1
        after = outcome.route(target)
        if after is None or after.learned_from != provider:
            successes += 1
    return successes, applicable, side_moves


def test_poisoning_vs_communities(benchmark, hostile_testbed, capsys):
    testbed, simulator = hostile_testbed

    def run_ablation():
        baseline = simulator.simulate(anycast_all(testbed.origin.link_ids))
        poisons = poison_configs(testbed.origin, testbed.graph, max_per_provider=CAP)
        communities = community_configs(
            testbed.origin, testbed.graph, max_per_provider=CAP
        )
        poison_ok, poison_n, poison_side = sever_stats(
            testbed, simulator, poisons, baseline
        )
        community_ok, community_n, community_side = sever_stats(
            testbed, simulator, communities, baseline
        )
        return {
            "poison_rate": poison_ok / poison_n if poison_n else 1.0,
            "community_rate": community_ok / community_n if community_n else 1.0,
            "applicable": poison_n,
            "poison_side": poison_side,
            "community_side": community_side,
        }

    result = benchmark.pedantic(run_ablation, iterations=1, rounds=2)

    assert result["applicable"] > 0
    # Communities always sever the direct provider edge; poisoning fails
    # wherever loop prevention is off (a third of ASes here).
    assert result["community_rate"] == 1.0
    assert result["poison_rate"] < 1.0
    assert result["community_rate"] > result["poison_rate"]

    with capsys.disabled():
        print()
        print(
            f"ablation: severing {result['applicable']} provider-neighbor "
            "edges (33% of ASes ignore poisoning)"
        )
        print(
            f"  BGP poisoning         : {result['poison_rate']:.0%} severed, "
            f"{result['poison_side']} side-effect AS-moves"
        )
        print(
            f"  no-export communities : {result['community_rate']:.0%} severed, "
            f"{result['community_side']} side-effect AS-moves"
        )
