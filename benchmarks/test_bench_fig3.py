"""Figure 3 benchmark: CCDF of cluster sizes after each phase.

Paper shape targets: all three techniques shrink clusters; after the full
schedule most clusters are singletons (92% in the paper) and the mean is
small (1.40 ASes); each successive phase tightens the tail.
"""

from repro.analysis.figures import figure3
from repro.analysis.report import render_figure


def test_figure3(benchmark, bench_run, capsys):
    result = benchmark(figure3, bench_run)

    assert [series.name for series in result.series] == [
        "Locations",
        "Locations and prepending",
        "Locations, prepending, and poisoning",
    ]
    # Valid CCDFs.
    for series in result.series:
        ys = [y for _, y in series.points]
        assert ys[0] == 1.0
        assert ys == sorted(ys, reverse=True)
    # Each phase shrinks (or holds) the largest cluster.
    maxima = [max(x for x, _ in series.points) for series in result.series]
    assert maxima[0] >= maxima[1] >= maxima[2]
    # Most clusters end up small: CCDF at size 5 under 20%.
    final = dict(result.series[-1].points)
    tail_fraction = min(
        (fraction for size, fraction in final.items() if size > 5), default=0.0
    )
    assert tail_fraction < 0.2
    # Headline notes present for the harness log.
    assert any("paper: 1.40" in note for note in result.notes)
    assert any("paper: 92%" in note for note in result.notes)

    with capsys.disabled():
        print()
        print(render_figure(result))
