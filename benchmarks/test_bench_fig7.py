"""Figure 7 benchmark: cluster size vs AS-hop distance from the origin.

Paper shape targets: ASes 1–2 hops from announcement locations sit in
smaller clusters than ASes 3+ hops away (1.85 vs 2.64 in the paper), but
even distant ASes mostly land in small clusters.
"""

from repro.analysis.figures import figure7
from repro.analysis.report import render_figure
from repro.analysis.stats import mean


def test_figure7(benchmark, bench_run, capsys):
    result = benchmark(figure7, bench_run)

    # All group curves are valid CDFs.
    for series in result.series:
        ys = [y for _, y in series.points]
        assert ys == sorted(ys)
        assert ys[-1] <= 1.0 + 1e-9

    # Reconstruct group means from the run to check near < far.
    clusters = bench_run.final_clusters()
    size_of = {asn: len(c) for c in clusters for asn in c}
    near, far = [], []
    for asn in bench_run.universe:
        distance = bench_run.distances.get(asn)
        if distance is None or asn not in size_of:
            continue
        (near if distance <= 2 else far).append(float(size_of[asn]))
    assert near and far
    assert mean(near) < mean(far)
    # Even distant ASes are mostly in small clusters: 70%+ within 10 ASes.
    small_far = sum(1 for size in far if size <= 10) / len(far)
    assert small_far > 0.7

    with capsys.disabled():
        print()
        print(render_figure(result))
