"""Flight-recorder + worker-span overhead benchmark.

PR 10's forensics promise only holds if the black box is cheap enough to
leave armed in production: the flight recorder is a lock-guarded ring
append riding listeners that already fire, and the cross-process span
grafting adds one id derivation per worker batch.  This benchmark runs
the armed pipeline (full ``Observability.for_run`` bundle) with and
without a flight recorder attached, at worker counts 1 and 2, verifies
the reports are bit-identical, and records wall times to
``BENCH_flight.json``.

The <5% overhead target is asserted loosely (25%) because CI containers
have noisy clocks; the artifact records the real number.
"""

from __future__ import annotations

import json
import os
import time

from conftest import BENCH_PARAMS, BENCH_SEED

from repro.core.pipeline import SpoofTracker, build_testbed
from repro.obs import Observability, load_flight_dump

ARTIFACT = os.path.join(os.path.dirname(__file__), "BENCH_flight.json")
NUM_CONFIGS = 60
REPEATS = 3


def _run_once(testbed, workers, flight_dir=""):
    """One cold armed run; returns (report, obs, elapsed)."""
    obs = Observability.for_run("track")
    if flight_dir:
        obs.arm_flight("track", directory=flight_dir)
    tracker = SpoofTracker(testbed, workers=workers, obs=obs)
    start = time.perf_counter()
    try:
        report = tracker.run(max_configs=NUM_CONFIGS)
        elapsed = time.perf_counter() - start
    finally:
        tracker.engine.close()
    obs.tracer.finish()
    if obs.flight is not None:
        obs.flight.dump("bench")  # the crash path, outside the timing
        obs.flight.detach()
    return report, obs, elapsed


def _best_time(testbed, workers, flight_dir=""):
    best = None
    report = None
    obs = None
    for _ in range(REPEATS):
        report, obs, elapsed = _run_once(testbed, workers, flight_dir)
        if best is None or elapsed < best:
            best = elapsed
    return report, obs, best


def test_flight_overhead(capsys, tmp_path):
    testbed = build_testbed(seed=BENCH_SEED, topology_params=BENCH_PARAMS)

    armed, _, armed_time = _best_time(testbed, workers=1)
    flown, flown_obs, flown_time = _best_time(
        testbed, workers=1, flight_dir=str(tmp_path / "w1")
    )
    armed2, _, armed2_time = _best_time(testbed, workers=2)
    flown2, _, flown2_time = _best_time(
        testbed, workers=2, flight_dir=str(tmp_path / "w2")
    )

    # Riding the black box must not perturb results at any worker count.
    for baseline, other in ((armed, flown), (armed, armed2), (armed, flown2)):
        assert other.universe == baseline.universe
        assert other.clusters == baseline.clusters
        assert other.catchment_history == baseline.catchment_history

    # The recorder actually captured the run it rode.
    payload = load_flight_dump(flown_obs.flight.dumps[-1])
    assert payload["entries_seen"] > 0
    kinds = {entry["kind"] for entry in payload["entries"]}
    assert "bus" in kinds and "span" in kinds

    flight_pct = 100.0 * (flown_time - armed_time) / armed_time
    flight2_pct = 100.0 * (flown2_time - armed2_time) / armed2_time

    record = {
        "seed": BENCH_SEED,
        "num_configs": NUM_CONFIGS,
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "armed_seconds": round(armed_time, 4),
        "armed_flight_seconds": round(flown_time, 4),
        "armed_workers2_seconds": round(armed2_time, 4),
        "armed_workers2_flight_seconds": round(flown2_time, 4),
        "flight_overhead_pct": round(flight_pct, 2),
        "flight_workers2_overhead_pct": round(flight2_pct, 2),
        "flight_entries_seen": payload["entries_seen"],
    }
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Target is <5%; assert a loose ceiling so noisy CI clocks don't flake.
    assert flight_pct < 25.0

    with capsys.disabled():
        print()
        print(f"wrote {ARTIFACT}")
        for key, value in sorted(record.items()):
            print(f"  {key:32s}: {value}")
