"""Figure 4 benchmark: cluster sizes vs number of configurations.

Paper shape targets: the mean declines monotonically with diminishing
returns; phase boundaries are visible; extra configurations keep helping
(final mean well below the locations-phase end).
"""

from repro.analysis.figures import figure4
from repro.analysis.report import render_figure


def test_figure4(benchmark, bench_run, capsys):
    result = benchmark(figure4, bench_run)

    means = [y for _, y in result.series_named("Mean Cluster Size").points]
    p90s = [y for _, y in result.series_named("90th Percentile").points]
    assert len(means) == len(bench_run.schedule)
    # Refinement never increases the mean.
    assert all(b <= a + 1e-9 for a, b in zip(means, means[1:]))
    # Diminishing returns: the first half of the schedule does more work
    # than the second half.
    half = len(means) // 2
    assert (means[0] - means[half]) > (means[half] - means[-1])
    # Later phases still help beyond the locations phase (paper: "small
    # steps following the vertical bars").
    boundaries = bench_run.phase_boundaries()
    assert means[-1] < means[boundaries["locations"] - 1]
    # p90 is a cluster-size percentile: at least 1 always.
    assert all(value >= 1.0 for value in p90s)

    with capsys.disabled():
        print()
        print(render_figure(result))
