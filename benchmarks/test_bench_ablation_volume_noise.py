"""Ablation: localization robustness to volume-observation noise.

The paper assumes per-link spoofed volumes are observable (honeypot
counters or labeled flows, §III-C).  Real counters are noisy — sampling,
bursty attack traffic, labeling errors.  This ablation injects
multiplicative noise into every per-link volume observation and measures
how often a single-source attack is still ranked first, quantifying the
NNLS attribution's noise margin.
"""

import random

import pytest

from repro.core.clustering import ClusterState
from repro.core.localization import SpoofLocalizer
from repro.core.pipeline import SpoofTracker
from repro.spoof.sources import single_source_placement
from repro.spoof.traffic import link_volumes

NOISE_LEVELS = (0.0, 0.1, 0.3, 0.6)
TRIALS = 12
CONFIG_BUDGET = 48


def test_volume_noise_robustness(benchmark, bench_run, capsys):
    testbed = bench_run.testbed
    tracker = SpoofTracker.from_testbed(testbed)
    configs = tracker.schedule[:CONFIG_BUDGET]
    outcomes = [testbed.simulator.simulate(config) for config in configs]
    universe = outcomes[0].covered_ases
    history = [
        {link: frozenset(m & universe) for link, m in outcome.catchments.items()}
        for outcome in outcomes
    ]
    state = ClusterState(universe)
    for catchments in history:
        state.refine_with_catchments(catchments)
    clusters = state.clusters()
    localizer = SpoofLocalizer(clusters, history)

    def run_ablation():
        hit_rate = {}
        for noise in NOISE_LEVELS:
            hits = 0
            for trial in range(TRIALS):
                rng = random.Random((trial + 1) * 1000 + int(noise * 100))
                placement = single_source_placement(
                    sorted(testbed.topology.stubs), rng
                )
                volume_history = []
                for outcome in outcomes:
                    volumes = link_volumes(placement, outcome.catchments)
                    noisy = {
                        link: volume * (1.0 + rng.uniform(-noise, noise))
                        for link, volume in volumes.items()
                    }
                    volume_history.append(noisy)
                result = localizer.localize(volume_history)
                top = result.ranked[0]
                if placement.spoofing_ases <= top.members:
                    hits += 1
            hit_rate[noise] = hits / TRIALS
        return hit_rate

    hit_rate = benchmark.pedantic(run_ablation, iterations=1, rounds=1)

    # Noiseless attribution always finds the source's cluster.
    assert hit_rate[0.0] == 1.0
    # Moderate noise barely hurts; heavy noise degrades gracefully.
    assert hit_rate[0.1] >= 0.8
    assert hit_rate[0.6] >= 0.4
    rates = [hit_rate[noise] for noise in NOISE_LEVELS]
    assert all(b <= a + 0.25 for a, b in zip(rates, rates[1:]))  # no cliffs

    with capsys.disabled():
        print()
        print(
            f"ablation: single-source top-rank rate vs volume noise "
            f"({TRIALS} trials, {CONFIG_BUDGET} configs)"
        )
        for noise in NOISE_LEVELS:
            print(f"  ±{noise:>4.0%} noise: ranked first {hit_rate[noise]:.0%}")
