"""Simulation-engine benchmark: serial vs parallel, cold vs cached, large graph.

Deploys a truncated announcement schedule through the
:class:`~repro.core.engine.SimulationEngine` four ways — cold serial,
cold parallel (2 workers), warm-start disabled, and a fully cached
replay — checks that every variant produces bit-identical routes, and
records wall times plus cache/warm-start rates to ``BENCH_engine.json``
next to this file.

A second, optional benchmark (``REPRO_BENCH_LARGE=1``) synthesizes a
CAIDA-sized (~75k AS) topology, round-trips it through the as-rel
serialization, and times one fixpoint of the indexed simulation core
over it — the scale the paper's traceback loop must sustain to race
real announcement schedules.

Both tests merge into the artifact read-modify-write style, so a smoke
run that skips the large benchmark preserves the committed large-graph
numbers (and vice versa).

On single-core containers the parallel run shows pool overhead rather
than speedup; the artifact records ``cpu_count`` so bench-check knows to
skip the parallel-vs-serial gate there.
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest
from conftest import BENCH_PARAMS, BENCH_SEED

from repro.core.engine import SimulationEngine
from repro.core.pipeline import SpoofTracker, build_testbed

ARTIFACT = os.path.join(os.path.dirname(__file__), "BENCH_engine.json")
NUM_CONFIGS = 60

LARGE_ENV_VAR = "REPRO_BENCH_LARGE"
LARGE_SEED = 7
LARGE_NUM_TIER1 = 10
LARGE_NUM_TRANSIT = 2500
LARGE_NUM_STUB = 72500


def _timed(engine, configs):
    start = time.perf_counter()
    outcomes = engine.simulate_many(configs)
    return outcomes, time.perf_counter() - start


def _merge_artifact(update):
    """Read-modify-write ``BENCH_engine.json`` so partial runs keep keys."""
    record = {}
    if os.path.exists(ARTIFACT):
        with open(ARTIFACT, encoding="utf-8") as handle:
            record = json.load(handle)
    record.update(update)
    record["cpu_count"] = os.cpu_count()
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return record


def test_engine_serial_vs_parallel(capsys):
    testbed = build_testbed(seed=BENCH_SEED, topology_params=BENCH_PARAMS)
    configs = SpoofTracker(testbed).schedule[:NUM_CONFIGS]

    serial = SimulationEngine(testbed.simulator, workers=1, spec=testbed.spec)
    baseline, serial_time = _timed(serial, configs)

    cold = SimulationEngine(testbed.simulator, warm_start=False)
    cold_outcomes, cold_time = _timed(cold, configs)

    with SimulationEngine(
        testbed.simulator, workers=2, spec=testbed.spec
    ) as parallel:
        fanned, parallel_time = _timed(parallel, configs)
        parallel_stats = parallel.stats.copy()

    _, cached_time = _timed(serial, configs)

    # Every variant is bit-identical (the engine's core guarantee).
    for a, b, c in zip(baseline, fanned, cold_outcomes):
        assert a.routes == b.routes == c.routes
        assert a.catchments == b.catchments

    stats = serial.stats
    assert stats.cache_hits >= NUM_CONFIGS  # the replay was free
    cache_hit_rate = stats.cache_hits / stats.configs_requested
    record = _merge_artifact(
        {
            "seed": BENCH_SEED,
            "num_configs": NUM_CONFIGS,
            "serial_cold_seconds": round(serial_time, 4),
            "serial_no_warm_start_seconds": round(cold_time, 4),
            "parallel2_cold_seconds": round(parallel_time, 4),
            "cached_replay_seconds": round(cached_time, 4),
            "cache_hit_rate": round(cache_hit_rate, 4),
            "warm_starts": stats.warm_starts,
            "passes_saved": stats.passes_saved,
            "parallel_configs_simulated": parallel_stats.configs_simulated,
        }
    )

    assert cached_time < serial_time  # replay must beat simulating

    with capsys.disabled():
        print()
        print(f"wrote {ARTIFACT}")
        for key, value in sorted(record.items()):
            print(f"  {key:32s}: {value}")


# ----------------------------------------------------------------------
# CAIDA-scale fixpoint
# ----------------------------------------------------------------------


def _synthesize_as_rel_lines(
    num_tier1: int, num_transit: int, num_stub: int, seed: int
):
    """Deterministic ~O(n) CAIDA-shaped as-rel synthesizer.

    The repo's :func:`~repro.topology.generator.generate_topology`
    rebuilds a full weight vector per preferential draw (quadratic in the
    AS count), which is fine at testbed scale and hopeless at 75k ASes.
    This synthesizer keeps the same macro-structure — a tier-1 peering
    clique, a preferentially attached transit tier, a stub edge — using
    Barabási-style "repeated node" sampling (each AS appears in the urn
    once per unit of degree), so a 75k-AS topology builds in a second.
    """
    rng = random.Random(seed)
    lines = []
    tier1 = [10 + i for i in range(num_tier1)]
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            lines.append(f"{a}|{b}|0")

    pairs = set()
    urn = list(tier1)  # degree-preferential urn for transit providers
    transit = [1000 + i for i in range(num_transit)]
    for asn in transit:
        providers = {rng.choice(urn) for _ in range(rng.randint(1, 3))}
        for provider in providers:
            lines.append(f"{provider}|{asn}|-1")
            pairs.add((provider, asn))
            urn.append(provider)
        urn.append(asn)

    for _ in range(num_transit // 2):  # IXP-style peering in the middle
        a, b = rng.sample(transit, 2)
        key = (min(a, b), max(a, b))
        if key in pairs or (key[1], key[0]) in pairs:
            continue
        pairs.add(key)
        lines.append(f"{key[0]}|{key[1]}|0")

    stub_urn = list(transit)  # stubs home preferentially within transit
    for asn in range(100000, 100000 + num_stub):
        count = 2 if rng.random() < 0.3 else 1
        providers = {rng.choice(stub_urn) for _ in range(count)}
        for provider in providers:
            lines.append(f"{provider}|{asn}|-1")
            stub_urn.append(provider)
    return lines, transit


def test_engine_large_graph_fixpoint(capsys):
    if not os.environ.get(LARGE_ENV_VAR):
        pytest.skip(f"set {LARGE_ENV_VAR}=1 to run the 75k-AS fixpoint bench")

    from repro.bgp.announcement import AnnouncementConfig, anycast_all
    from repro.bgp.policy import PolicyModel
    from repro.bgp.simulator import RoutingSimulator
    from repro.topology.peering import PAPER_MUXES, OriginNetwork, PeeringLink
    from repro.topology.relationships import Relationship
    from repro.topology.serialization import dumps_as_rel, loads_as_rel

    lines, transit = _synthesize_as_rel_lines(
        LARGE_NUM_TIER1, LARGE_NUM_TRANSIT, LARGE_NUM_STUB, LARGE_SEED
    )
    text = "\n".join(lines) + "\n"

    # Round-trip through the as-rel serialization: parse, re-dump, parse
    # again — the committed load time covers a full parse of ~100k links.
    start = time.perf_counter()
    graph = loads_as_rel(dumps_as_rel(loads_as_rel(text)))
    load_time = time.perf_counter() - start

    # Attach a PEERING-like origin to seven providers spread across the
    # transit tier (deterministic slices, like attach_origin's spread).
    origin_asn = 47065
    providers = [transit[(i * len(transit)) // 7] for i in range(7)]
    links = []
    for (mux_name, provider_name, _), provider in zip(PAPER_MUXES, providers):
        graph.add_link(origin_asn, provider, Relationship.PROVIDER)
        links.append(
            PeeringLink(
                link_id=mux_name, provider=provider, provider_name=provider_name
            )
        )
    origin = OriginNetwork(origin_asn, links)
    policy = PolicyModel(graph, seed=LARGE_SEED)

    baseline = anycast_all(origin.link_ids)
    subset = AnnouncementConfig(
        announced=frozenset(origin.link_ids[:4]), label="subset-4"
    )

    sim = RoutingSimulator(graph, origin, policy, core="indexed")
    start = time.perf_counter()
    cold_outcome = sim.simulate(baseline)
    cold_time = time.perf_counter() - start  # includes the one-off compile
    start = time.perf_counter()
    sim.simulate(subset)
    compiled_time = time.perf_counter() - start

    legacy = RoutingSimulator(graph, origin, policy, core="legacy")
    start = time.perf_counter()
    legacy_outcome = legacy.simulate(baseline)
    legacy_time = time.perf_counter() - start

    assert cold_outcome.converged
    # The overwhelming majority of a connected graph must hold a route.
    assert len(cold_outcome.routes) > 0.95 * len(graph)
    # The cores agree bit-for-bit at scale, and compiling pays for itself
    # within this single fixpoint.
    assert cold_outcome.routes == legacy_outcome.routes
    assert cold_outcome.passes == legacy_outcome.passes
    assert cold_time < legacy_time

    record = _merge_artifact(
        {
            "large_graph_seed": LARGE_SEED,
            "large_graph_ases": len(graph),
            "large_graph_links": sum(len(graph.neighbors(a)) for a in graph.ases)
            // 2,
            "large_graph_load_roundtrip_seconds": round(load_time, 4),
            "large_graph_cold_fixpoint_seconds": round(cold_time, 4),
            "large_graph_compiled_fixpoint_seconds": round(compiled_time, 4),
            "large_graph_legacy_fixpoint_seconds": round(legacy_time, 4),
            "large_graph_passes": cold_outcome.passes,
            "large_graph_routed_ases": len(cold_outcome.routes),
        }
    )

    # The acceptance bar: a CAIDA-scale fixpoint completes in seconds,
    # not minutes (generous bound so slow CI runners still pass).
    assert cold_time < 120.0

    with capsys.disabled():
        print()
        print(f"wrote {ARTIFACT}")
        for key, value in sorted(record.items()):
            if key.startswith("large_graph"):
                print(f"  {key:40s}: {value}")
