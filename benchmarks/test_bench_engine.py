"""Simulation-engine benchmark: serial vs parallel, cold vs cached.

Deploys a truncated announcement schedule through the
:class:`~repro.core.engine.SimulationEngine` four ways — cold serial,
cold parallel (2 workers), warm-start disabled, and a fully cached
replay — checks that every variant produces bit-identical routes, and
records wall times plus cache/warm-start rates to ``BENCH_engine.json``
next to this file.

On single-core containers the parallel run shows pool overhead rather
than speedup; the artifact records ``cpu_count`` so readers can tell.
"""

from __future__ import annotations

import json
import os
import time

from conftest import BENCH_PARAMS, BENCH_SEED

from repro.core.engine import SimulationEngine
from repro.core.pipeline import SpoofTracker, build_testbed

ARTIFACT = os.path.join(os.path.dirname(__file__), "BENCH_engine.json")
NUM_CONFIGS = 60


def _timed(engine, configs):
    start = time.perf_counter()
    outcomes = engine.simulate_many(configs)
    return outcomes, time.perf_counter() - start


def test_engine_serial_vs_parallel(capsys):
    testbed = build_testbed(seed=BENCH_SEED, topology_params=BENCH_PARAMS)
    configs = SpoofTracker(testbed).schedule[:NUM_CONFIGS]

    serial = SimulationEngine(testbed.simulator, workers=1, spec=testbed.spec)
    baseline, serial_time = _timed(serial, configs)

    cold = SimulationEngine(testbed.simulator, warm_start=False)
    cold_outcomes, cold_time = _timed(cold, configs)

    with SimulationEngine(
        testbed.simulator, workers=2, spec=testbed.spec
    ) as parallel:
        fanned, parallel_time = _timed(parallel, configs)
        parallel_stats = parallel.stats.copy()

    _, cached_time = _timed(serial, configs)

    # Every variant is bit-identical (the engine's core guarantee).
    for a, b, c in zip(baseline, fanned, cold_outcomes):
        assert a.routes == b.routes == c.routes
        assert a.catchments == b.catchments

    stats = serial.stats
    assert stats.cache_hits >= NUM_CONFIGS  # the replay was free
    cache_hit_rate = stats.cache_hits / stats.configs_requested
    record = {
        "seed": BENCH_SEED,
        "num_configs": NUM_CONFIGS,
        "cpu_count": os.cpu_count(),
        "serial_cold_seconds": round(serial_time, 4),
        "serial_no_warm_start_seconds": round(cold_time, 4),
        "parallel2_cold_seconds": round(parallel_time, 4),
        "cached_replay_seconds": round(cached_time, 4),
        "cache_hit_rate": round(cache_hit_rate, 4),
        "warm_starts": stats.warm_starts,
        "passes_saved": stats.passes_saved,
        "parallel_configs_simulated": parallel_stats.configs_simulated,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert cached_time < serial_time  # replay must beat simulating

    with capsys.disabled():
        print()
        print(f"wrote {ARTIFACT}")
        for key, value in sorted(record.items()):
            print(f"  {key:32s}: {value}")
