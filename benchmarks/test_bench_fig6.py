"""Figure 6 benchmark: final cluster-size CCDF with fewer locations.

Paper shape targets: discarding locations fattens the tail of the final
cluster-size distribution (0.1% vs 1.27% vs 4.29% of clusters above 25
ASes in the paper).
"""

from repro.analysis.figures import figure6
from repro.analysis.report import render_figure


def _tail_mass(series, threshold):
    """CCDF value at the smallest size > threshold (0 when none)."""
    eligible = [fraction for size, fraction in series.points if size > threshold]
    return max(eligible, default=0.0)


def test_figure6(benchmark, bench_run, capsys):
    result = benchmark(figure6, bench_run, (0, 1, 2), 4)

    all_series = result.series_named("All locations")
    six_series = result.series_named("Six locations")
    five_series = result.series_named("Five locations")
    for series in (all_series, six_series, five_series):
        ys = [y for _, y in series.points]
        assert ys[0] == 1.0
        assert ys == sorted(ys, reverse=True)
    # Fewer locations → heavier tail (measured above 10 ASes at this
    # scale, standing in for the paper's 25-AS threshold).
    assert _tail_mass(all_series, 10) <= _tail_mass(five_series, 10) + 1e-9
    # Largest surviving cluster grows as locations are removed.
    assert max(x for x, _ in all_series.points) <= max(
        x for x, _ in five_series.points
    )

    with capsys.disabled():
        print()
        print(render_figure(result))
