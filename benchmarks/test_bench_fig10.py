"""Figure 10 benchmark: spoofed-traffic volume vs cluster size.

Paper shape targets: for uniform, Pareto, and single-source placements,
most spoofed traffic originates from ASes in small clusters (following
from Figure 3's small-cluster dominance).
"""

from repro.analysis.figures import figure10
from repro.analysis.report import render_figure


def test_figure10(benchmark, bench_run, capsys):
    result = benchmark.pedantic(
        figure10,
        args=(bench_run,),
        kwargs=dict(num_placements=60, num_sources=20, max_size=16, seed=2),
        iterations=1,
        rounds=2,
    )

    assert {series.name for series in result.series} == {
        "Uniform Distribution",
        "Pareto Distribution",
        "Single Source",
    }
    for series in result.series:
        ys = [y for _, y in series.points]
        # Cumulative, bounded, and dominated by small clusters.
        assert ys == sorted(ys)
        assert ys[-1] <= 1.0 + 1e-9
        points = dict(series.points)
        assert points[1.0] > 0.3      # singletons already carry volume
        assert points[8.0] > 0.6      # most volume within small clusters

    with capsys.disabled():
        print()
        print(render_figure(result))
