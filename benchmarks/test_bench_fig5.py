"""Figure 5 benchmark: mean cluster size when removing peering locations.

Paper shape targets: more locations allow more configurations and reach
smaller final clusters; with the same number of announcements, more
locations still do at least as well.
"""

from repro.analysis.figures import figure5
from repro.analysis.report import render_figure


def test_figure5(benchmark, bench_run, capsys):
    result = benchmark(figure5, bench_run, (0, 1, 2), 4)

    all_curve = result.series_named("All locations").points
    six_curve = result.series_named("Six locations").points
    five_curve = result.series_named("Five locations").points
    # More locations → more configurations available (358 / 118 / 31 in
    # the paper's setup — exact for 7 links with the paper's generation).
    assert len(all_curve) == 358
    assert len(six_curve) == 118
    assert len(five_curve) == 31
    # Final mean cluster size ordering: all ≤ six ≤ five.
    assert all_curve[-1][1] <= six_curve[-1][1] <= five_curve[-1][1]
    # The min/max envelopes bracket the mean.
    six_min = result.series_named("Six locations (min)").points
    six_max = result.series_named("Six locations (max)").points
    for (_, low), (_, mid), (_, high) in zip(six_min, six_curve, six_max):
        assert low - 1e-9 <= mid <= high + 1e-9

    with capsys.disabled():
        print()
        print(render_figure(result))
