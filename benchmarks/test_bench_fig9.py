"""Figure 9 benchmark: fraction of ASes following well-known policies.

Paper shape targets: most ASes follow the best-relationship criterion in
every configuration; the fraction following both criteria (Gao-Rexford)
is lower but still high — routing is largely predictable.
"""

from repro.analysis.figures import figure9
from repro.analysis.report import render_figure
from repro.analysis.stats import percentile


def test_figure9(benchmark, bench_run, capsys):
    result = benchmark(figure9, bench_run)

    best_rel = [stats.best_relationship for stats in bench_run.compliance]
    both = [
        stats.best_relationship_and_shortest for stats in bench_run.compliance
    ]
    # Both-criteria compliance can never exceed best-relationship.
    for both_value, rel_value in zip(both, best_rel):
        assert both_value <= rel_value + 1e-9
    # Most ASes follow the rules in the median configuration.
    assert percentile(best_rel, 50.0) > 0.85
    assert percentile(both, 50.0) > 0.75
    # CDF series are well-formed.
    for series in result.series:
        ys = [y for _, y in series.points]
        assert ys == sorted(ys)
        assert ys[-1] <= 1.0 + 1e-9

    with capsys.disabled():
        print()
        print(render_figure(result))
