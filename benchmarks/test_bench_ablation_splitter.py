"""Ablation: targeted distant poisoning of large clusters (paper §V-B).

The paper's stated future work: "investigate targeted poisoning of distant
ASes to induce route changes specific to split these large distant
clusters".  This benchmark runs the base locations+prepending schedule,
then measures how much the targeted splitter shrinks the surviving large
clusters compared to spending the same extra budget on more untargeted
poison configurations.
"""

import pytest

from repro.core.clustering import ClusterState
from repro.core.configgen import ScheduleParams, generate_schedule, poison_configs
from repro.core.pipeline import build_testbed
from repro.core.refinement import LargeClusterSplitter
from repro.topology import TopologyParams

THRESHOLD = 5
EXTRA_BUDGET = 30


@pytest.fixture(scope="module")
def base_state():
    testbed = build_testbed(
        seed=3,
        topology_params=TopologyParams(
            num_tier1=6, num_transit=60, num_stub=300, seed=3
        ),
    )
    schedule = generate_schedule(
        testbed.origin, testbed.graph, ScheduleParams(include_poisoning=False)
    )
    outcomes = [testbed.simulator.simulate(config) for config in schedule]
    universe = outcomes[0].covered_ases
    state = ClusterState(universe)
    for outcome in outcomes:
        state.refine_with_catchments(
            {link: m & universe for link, m in outcome.catchments.items()}
        )
    return testbed, state


def test_targeted_splitting(benchmark, base_state, capsys):
    testbed, state = base_state

    def run_ablation():
        targeted = state.copy()
        splitter = LargeClusterSplitter(
            testbed.simulator,
            testbed.origin,
            threshold=THRESHOLD,
            max_targets_per_cluster=4,
        )
        report = splitter.split(targeted, max_rounds=4, max_configs=EXTRA_BUDGET)

        untargeted = state.copy()
        extra = poison_configs(testbed.origin, testbed.graph)[:EXTRA_BUDGET]
        for config in extra:
            outcome = testbed.simulator.simulate(config)
            untargeted.refine_with_catchments(
                {link: frozenset(m) for link, m in outcome.catchments.items()}
            )
        return {
            "before_max": max(state.sizes()),
            "targeted_max": max(targeted.sizes()),
            "untargeted_max": max(untargeted.sizes()),
            "targeted_mean": targeted.mean_size(),
            "untargeted_mean": untargeted.mean_size(),
            "configs_used": len(report.configs_deployed),
        }

    result = benchmark.pedantic(run_ablation, iterations=1, rounds=2)

    # Targeted splitting must shrink the tail, and do at least as well on
    # the largest cluster as the same budget of untargeted poisons.
    assert result["targeted_max"] < result["before_max"]
    assert result["targeted_max"] <= result["untargeted_max"]
    assert result["configs_used"] <= EXTRA_BUDGET

    with capsys.disabled():
        print()
        print(
            f"ablation: splitting clusters > {THRESHOLD} ASes with "
            f"<= {EXTRA_BUDGET} extra configurations"
        )
        print(f"  base schedule largest cluster    : {result['before_max']} ASes")
        print(
            f"  + targeted distant poisons       : {result['targeted_max']} ASes "
            f"(mean {result['targeted_mean']:.2f}, "
            f"{result['configs_used']} configs)"
        )
        print(
            f"  + untargeted provider poisons    : {result['untargeted_max']} ASes "
            f"(mean {result['untargeted_mean']:.2f})"
        )
