"""Fault-injection overhead benchmark.

The resilience layer must be (nearly) free when no faults fire: the
injection hooks are a handful of dict lookups per configuration, so an
engine carrying an *empty* fault plan should track the bare engine to
within a few percent.  This benchmark deploys a truncated schedule three
ways — no injector, empty-plan injector, and the bundled ``mixed`` plan
at full intensity — verifies the fault-free runs are bit-identical, and
records wall times plus chaos accounting to ``BENCH_faults.json``.

The <5% fault-free overhead target is asserted loosely (25%) because CI
containers have noisy clocks; the artifact records the real number.
"""

from __future__ import annotations

import json
import os
import time

from conftest import BENCH_PARAMS, BENCH_SEED

from repro.core.engine import SimulationEngine
from repro.core.pipeline import SpoofTracker, build_testbed
from repro.faults import BUNDLED_PLANS, FaultInjector, FaultPlan

ARTIFACT = os.path.join(os.path.dirname(__file__), "BENCH_faults.json")
NUM_CONFIGS = 60
REPEATS = 3


def _best_time(make_engine, configs):
    """Minimum wall time over REPEATS runs on fresh (cold) engines."""
    best = None
    outcomes = None
    for _ in range(REPEATS):
        engine = make_engine()
        start = time.perf_counter()
        outcomes = engine.simulate_many(configs)
        elapsed = time.perf_counter() - start
        engine.close()
        if best is None or elapsed < best:
            best = elapsed
    return outcomes, best


def test_fault_free_injection_overhead(capsys):
    testbed = build_testbed(seed=BENCH_SEED, topology_params=BENCH_PARAMS)
    configs = SpoofTracker(testbed).schedule[:NUM_CONFIGS]

    baseline, bare_time = _best_time(
        lambda: SimulationEngine(testbed.simulator, spec=testbed.spec),
        configs,
    )
    empty, empty_time = _best_time(
        lambda: SimulationEngine(
            testbed.simulator,
            spec=testbed.spec,
            injector=FaultInjector(FaultPlan()),
        ),
        configs,
    )

    # The empty plan must not perturb results at all.
    for a, b in zip(baseline, empty):
        assert a.routes == b.routes
        assert a.catchments == b.catchments

    overhead_pct = 100.0 * (empty_time - bare_time) / bare_time

    # One chaotic deployment for the accounting row: the engine absorbs
    # every injected crash/hang and still produces a result per config.
    chaotic_engine = SimulationEngine(
        testbed.simulator,
        spec=testbed.spec,
        injector=FaultInjector(BUNDLED_PLANS["mixed"]),
    )
    start = time.perf_counter()
    chaotic = chaotic_engine.simulate_many(configs)
    chaotic_time = time.perf_counter() - start
    chaotic_stats = chaotic_engine.stats.copy()
    faults = chaotic_engine.injector.log.total
    chaotic_engine.close()
    assert len(chaotic) == NUM_CONFIGS
    for a, b in zip(baseline, chaotic):
        assert a.routes == b.routes  # crashes retry; results never change

    record = {
        "seed": BENCH_SEED,
        "num_configs": NUM_CONFIGS,
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "bare_seconds": round(bare_time, 4),
        "empty_plan_seconds": round(empty_time, 4),
        "fault_free_overhead_pct": round(overhead_pct, 2),
        "mixed_plan_seconds": round(chaotic_time, 4),
        "mixed_faults_injected": faults,
        "mixed_retries": chaotic_stats.retries,
        "mixed_faults_bypassed": chaotic_stats.faults_bypassed,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Target is <5%; assert a loose ceiling so noisy CI clocks don't flake.
    assert overhead_pct < 25.0

    with capsys.disabled():
        print()
        print(f"wrote {ARTIFACT}")
        for key, value in sorted(record.items()):
            print(f"  {key:28s}: {value}")
