"""Ablation: localization precision → mitigation collateral damage.

The paper motivates localization as input to RTBH/flowspec mitigation
(§I).  This ablation quantifies the payoff of deploying more announcement
configurations before filtering: flowspec rules scoped by sharper
clusters drop the same attack volume while catching monotonically fewer
innocent ASes — and always beat the RTBH baseline's zero selectivity.
"""

import random

import pytest

from repro.core.pipeline import SpoofTracker
from repro.mitigation import (
    BlackholeRule,
    evaluate_mitigation,
    rules_from_localization,
)
from repro.spoof.sources import pareto_placement

BUDGETS = (4, 32, 128)


def test_mitigation_vs_budget(benchmark, bench_run, capsys):
    testbed = bench_run.testbed
    tracker = SpoofTracker.from_testbed(testbed)
    placement = pareto_placement(
        sorted(testbed.topology.stubs), 20, random.Random(4)
    )

    def run_ablation():
        results = {}
        for budget in BUDGETS:
            report = tracker.run(max_configs=budget, placement=placement)
            rules = rules_from_localization(
                report.localization,
                volume_fraction=1.0,
                catchments=report.catchment_history[0],
            )
            results[budget] = evaluate_mitigation(
                rules, placement, report.catchment_history[0]
            )
        rtbh_report = tracker.run(max_configs=1, placement=placement)
        results["rtbh"] = evaluate_mitigation(
            [BlackholeRule()], placement, rtbh_report.catchment_history[0]
        )
        return results

    results = benchmark.pedantic(run_ablation, iterations=1, rounds=2)

    # Attack coverage grows with the budget: at few configurations the
    # volume system is under-determined and NNLS can misattribute shares;
    # at the largest budget attribution is exact.
    # (Exact recovery is not guaranteed even with many configurations:
    # cluster indicator columns can be linearly dependent, so NNLS may
    # attribute a shared volume to the wrong member of the dependency.)
    coverage = [results[budget].attack_volume_dropped for budget in BUDGETS]
    assert all(b >= a - 1e-9 for a, b in zip(coverage, coverage[1:]))
    assert coverage[0] > 0.5
    assert coverage[-1] > 0.8
    # Collateral damage shrinks (weakly) as the budget grows.
    collateral = [results[budget].legitimate_volume_dropped for budget in BUDGETS]
    assert all(b <= a + 1e-9 for a, b in zip(collateral, collateral[1:]))
    # Flowspec beats the blackhole baseline at every budget.
    assert results["rtbh"].selectivity == pytest.approx(0.0)
    for budget in BUDGETS:
        assert results[budget].selectivity > results["rtbh"].selectivity

    with capsys.disabled():
        print()
        print("ablation: flowspec collateral vs announcement budget")
        print(
            f"  RTBH baseline: attack {results['rtbh'].attack_volume_dropped:.0%}, "
            f"collateral {results['rtbh'].legitimate_volume_dropped:.0%}"
        )
        for budget in BUDGETS:
            evaluation = results[budget]
            print(
                f"  {budget:>4} configs: attack "
                f"{evaluation.attack_volume_dropped:.0%}, collateral "
                f"{evaluation.legitimate_volume_dropped:.0%}, "
                f"{evaluation.ases_filtered} ASes filtered"
            )
