"""Shared state for the benchmark harness.

One full-schedule :class:`EvaluationRun` (the expensive part — 468
configurations over a ~370-AS synthetic Internet with 7 peering links) is
built once per session; every per-figure benchmark then measures its own
figure computation and asserts the paper's shape targets against the
shared run.  Rendered series are printed so the harness output shows the
same rows the paper reports.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import EvaluationRun
from repro.core.pipeline import build_testbed
from repro.topology.generator import TopologyParams

BENCH_SEED = 3
BENCH_PARAMS = TopologyParams(
    num_tier1=6, num_transit=60, num_stub=300, seed=BENCH_SEED
)


@pytest.fixture(scope="session")
def bench_run() -> EvaluationRun:
    """Full-schedule evaluation run shared by all figure benchmarks."""
    testbed = build_testbed(seed=BENCH_SEED, topology_params=BENCH_PARAMS)
    return EvaluationRun(testbed=testbed)
