"""Ablation: hot-potato (IGP/geography) tie-breaking vs localization.

§III-A-b: prepending works by overriding path-length ties, but ties the
origin cannot see — IGP costs — resolve before the arbitrary router-state
tiebreak.  This ablation compares localization on the same topology with
and without geographic hot-potato tie-breaking: geography *pins* ties
(every router in a region resolves them the same way), so prepending
flips fewer decisions and clusters end slightly coarser — quantifying how
much of the technique's power rides on manipulable ties.
"""

import pytest

from repro.analysis.figures import EvaluationRun
from repro.core.pipeline import build_testbed

from conftest import BENCH_PARAMS, BENCH_SEED


def final_stats(with_geography):
    testbed = build_testbed(
        seed=BENCH_SEED,
        topology_params=BENCH_PARAMS,
        with_geography=with_geography,
    )
    run = EvaluationRun(testbed=testbed, compute_compliance=False)
    clusters = run.final_clusters()
    sizes = [len(c) for c in clusters]
    return {
        "mean": sum(sizes) / len(sizes),
        "singletons": sum(1 for s in sizes if s == 1) / len(sizes),
        "universe": len(run.universe),
    }


def test_geography_ablation(benchmark, capsys):
    def run_ablation():
        return {
            "flat": final_stats(with_geography=False),
            "geo": final_stats(with_geography=True),
        }

    result = benchmark.pedantic(run_ablation, iterations=1, rounds=1)

    flat, geo = result["flat"], result["geo"]
    # Same coverage either way.
    assert flat["universe"] == geo["universe"]
    # Localization still works under hot-potato ties: clusters stay small.
    assert geo["mean"] < 4.0
    assert geo["singletons"] > 0.5
    # Both settings land in the same ballpark — the techniques do not
    # depend on the arbitrary-tiebreak assumption.
    assert abs(geo["mean"] - flat["mean"]) < 1.5

    with capsys.disabled():
        print()
        print("ablation: tie-breaking model vs final clusters")
        for name, stats in result.items():
            label = "arbitrary router state" if name == "flat" else "geographic hot-potato"
            print(
                f"  {label:<24}: mean {stats['mean']:.2f} ASes, "
                f"singletons {stats['singletons']:.0%}"
            )
