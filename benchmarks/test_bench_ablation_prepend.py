"""Ablation: prepend count (paper §III-A-b).

The paper prepends the origin ASN **four** extra times, "longer than most
AS-paths in the Internet", so the prepended announcement loses every
path-length tie.  This ablation compares prepending once vs four times:
heavier prepending must flip at least as many tie-broken ASes.
"""

import pytest

from repro.bgp.announcement import AnnouncementConfig, anycast_all
from repro.core.pipeline import build_testbed
from repro.topology import TopologyParams


@pytest.fixture(scope="module")
def testbed():
    return build_testbed(
        seed=5,
        topology_params=TopologyParams(
            num_tier1=6, num_transit=60, num_stub=300, seed=5
        ),
    )


def moved_ases(testbed, prepend_count):
    """ASes leaving the first link's catchment when it prepends."""
    links = frozenset(testbed.origin.link_ids)
    target = testbed.origin.link_ids[0]
    baseline = testbed.simulator.simulate(anycast_all(sorted(links)))
    prepended = testbed.simulator.simulate(
        AnnouncementConfig(
            announced=links,
            prepended=frozenset([target]),
            prepend_count=prepend_count,
        )
    )
    return sum(
        1
        for asn in baseline.covered_ases
        if baseline.catchment_of(asn) == target
        and prepended.catchment_of(asn) != target
    )


def test_prepend_count_ablation(benchmark, testbed, capsys):
    counts = {}

    def run_ablation():
        for prepend_count in (1, 2, 4, 8):
            counts[prepend_count] = moved_ases(testbed, prepend_count)
        return counts

    result = benchmark.pedantic(run_ablation, iterations=1, rounds=2)

    # Heavier prepending flips at least as many ASes, and the paper's
    # choice of 4 is where the effect saturates (all ties already lost).
    assert result[1] <= result[2] <= result[4]
    assert result[4] > 0
    assert result[8] == result[4] or result[8] >= result[4] - 1

    with capsys.disabled():
        print()
        print("ablation: ASes moved off the prepended link by prepend count")
        for prepend_count, moved in sorted(result.items()):
            print(f"  prepend x{prepend_count}: {moved} ASes moved")
