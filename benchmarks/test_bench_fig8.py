"""Figure 8 benchmark: random vs greedy announcement scheduling.

Paper shape targets: with pre-measured catchments, the greedy iterative
algorithm localizes far faster than random orderings (3.5 vs 7.8 mean
ASes after ten configurations in the paper).
"""

from repro.analysis.figures import figure8
from repro.analysis.report import render_figure


def test_figure8(benchmark, bench_run, capsys):
    result = benchmark.pedantic(
        figure8,
        args=(bench_run,),
        kwargs=dict(num_random_sequences=40, max_steps=15, seed=1),
        iterations=1,
        rounds=2,
    )

    median = result.series_named("Random (median of means)").points
    greedy = result.series_named("Iterative Algorithm").points
    p25 = result.series_named("25th Percentile").points
    p75 = result.series_named("75th Percentile").points
    # Percentile band brackets the median.
    for (_, low), (_, mid), (_, high) in zip(p25, median, p75):
        assert low - 1e-9 <= mid <= high + 1e-9
    # The headline: greedy beats the random median at 10 configurations,
    # and never does worse than the 75th percentile along the way.
    at10 = min(10, len(greedy), len(median)) - 1
    assert greedy[at10][1] < median[at10][1]
    for (_, greedy_value), (_, p75_value) in zip(greedy, p75):
        assert greedy_value <= p75_value + 1e-9

    with capsys.disabled():
        print()
        print(render_figure(result))
