"""Observability overhead benchmark.

The obs layer sells itself as free when unarmed and near-free when
armed: unarmed call sites are ``obs is None`` / ``registry is None``
guards, and an armed run adds one span per pipeline phase plus a
handful of counter increments per batch — nothing per-configuration in
the hot fixpoint loop.  This benchmark runs the full pipeline three
ways — no bundle, unarmed bundle, fully armed bundle (registry +
tracer + phase timer) — verifies the reports are identical, and
records wall times to ``BENCH_obs.json``.

The <5% armed-overhead target is asserted loosely (25%) because CI
containers have noisy clocks; the artifact records the real number.
"""

from __future__ import annotations

import json
import os
import time

from conftest import BENCH_PARAMS, BENCH_SEED

from repro.core.pipeline import SpoofTracker, build_testbed
from repro.obs import Observability, span_tree_signature

ARTIFACT = os.path.join(os.path.dirname(__file__), "BENCH_obs.json")
NUM_CONFIGS = 60
REPEATS = 3


def _best_time(testbed, make_obs):
    """Minimum wall time over REPEATS cold pipeline runs."""
    best = None
    report = None
    obs = None
    for _ in range(REPEATS):
        obs = make_obs()
        tracker = SpoofTracker(testbed, obs=obs)
        start = time.perf_counter()
        report = tracker.run(max_configs=NUM_CONFIGS)
        elapsed = time.perf_counter() - start
        tracker.engine.close()
        if best is None or elapsed < best:
            best = elapsed
    return report, obs, best


def test_observability_overhead(capsys):
    testbed = build_testbed(seed=BENCH_SEED, topology_params=BENCH_PARAMS)

    baseline, _, bare_time = _best_time(testbed, lambda: None)
    unarmed, _, unarmed_time = _best_time(testbed, Observability)
    armed, armed_obs, armed_time = _best_time(
        testbed, lambda: Observability.for_run("track")
    )

    # Instrumentation must not perturb results at all.
    for other in (unarmed, armed):
        assert other.universe == baseline.universe
        assert other.clusters == baseline.clusters
        assert other.catchment_history == baseline.catchment_history

    # The armed run produced the full five-phase trace and engine totals.
    armed_obs.tracer.finish()
    names = {span.name for span in armed_obs.tracer.finished}
    assert {"schedule", "simulate", "measure", "cluster", "attribute"} <= names
    totals = armed_obs.registry.counter_totals()
    assert totals["repro_engine_configs_requested_total"] >= NUM_CONFIGS

    unarmed_pct = 100.0 * (unarmed_time - bare_time) / bare_time
    armed_pct = 100.0 * (armed_time - bare_time) / bare_time

    record = {
        "seed": BENCH_SEED,
        "num_configs": NUM_CONFIGS,
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "bare_seconds": round(bare_time, 4),
        "unarmed_seconds": round(unarmed_time, 4),
        "armed_seconds": round(armed_time, 4),
        "unarmed_overhead_pct": round(unarmed_pct, 2),
        "armed_overhead_pct": round(armed_pct, 2),
        "spans_emitted": len(armed_obs.tracer.finished),
        "span_tree_signature": span_tree_signature(
            armed_obs.tracer.records()
        ),
    }
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Target is <5%; assert a loose ceiling so noisy CI clocks don't flake.
    assert armed_pct < 25.0

    with capsys.disabled():
        print()
        print(f"wrote {ARTIFACT}")
        for key, value in sorted(record.items()):
            print(f"  {key:24s}: {value}")
