"""Soak harness overhead benchmark.

The soak runner wraps a fleet campaign in epoch machinery — horizon
slicing, seeded kill/corruption draws, whole-process restarts with
re-adoption, schema alternation, and resource sampling.  All of that
must stay cheap relative to the replay work it disrupts: a harness that
doubles the cost of the campaign it soaks cannot run simulated weeks.

This benchmark runs the same fleet two ways:

* **plain**: one uninterrupted :class:`~repro.fleet.FleetRuntime.run`;
* **soak**: the same event stream through :class:`~repro.soak.SoakRunner`
  with three epochs, a restart at every boundary, kills, and schema
  alternation (verification off — the reference run is the plain path).

Identical attribution digests double-check the harness changed nothing
but the disruption schedule.  ``BENCH_soak.json`` records both wall
times and the harness overhead.  The target is <10% per epoch; the
assertion ceiling is loose (100% total) because restarts legitimately
rebuild runtimes and CI clocks are noisy — the artifact records the
real number, and `spooftrack bench-check` gates wall times against
history.
"""

from __future__ import annotations

import json
import os
import time

from repro.fleet import FleetRuntime, FleetSpec, fleet_digest
from repro.soak import SoakRunner, SoakSpec
from repro.topology.generator import TopologyParams

ARTIFACT = os.path.join(os.path.dirname(__file__), "BENCH_soak.json")
REPEATS = 3
EPOCHS = 3

FLEET_SPEC = FleetSpec(
    seed=11,
    tenants=4,
    attacks_per_tenant=2,
    max_configs=3,
    num_sources=6,
    window_minutes=20.0,
    checkpoint_every=1,
    checkpoint_keep=2,
    num_links=5,
    num_vantages=12,
    num_probes=40,
    topology_params=TopologyParams(
        num_tier1=4, num_transit=24, num_stub=90, seed=1
    ),
)


def _soak_spec() -> SoakSpec:
    return SoakSpec(
        fleet=FLEET_SPEC,
        epochs=EPOCHS,
        epoch_minutes=40.0,
        restart_every=1,
        kill_rate=0.2,
        corrupt_rate=0.0,
        alternate_versions=True,
    )


def _plain_run(events, checkpoint_dir):
    """One uninterrupted fleet run; returns (digest, windows, seconds)."""
    runtime = FleetRuntime(
        FLEET_SPEC, events=events, checkpoint_dir=checkpoint_dir
    )
    start = time.perf_counter()
    report = runtime.run()
    elapsed = time.perf_counter() - start
    runtime.close()
    digest = fleet_digest(report.shards, include_checkpoints=False)
    return digest, sum(shard.windows for shard in report.shards), elapsed


def _soak_run(spec, checkpoint_dir):
    """The same campaign through the soak harness (verify off);
    returns (digest, windows, seconds, report)."""
    runner = SoakRunner(spec, checkpoint_dir=checkpoint_dir, verify=False)
    start = time.perf_counter()
    report = runner.run()
    elapsed = time.perf_counter() - start
    windows = sum(shard.windows for shard in report.shards)
    return report.digest, windows, elapsed, report


def test_soak_harness_overhead(capsys, tmp_path):
    spec = _soak_spec()
    events = spec.events()

    plain_best = None
    for repeat in range(REPEATS):
        plain_digest, plain_windows, elapsed = _plain_run(
            events, str(tmp_path / f"plain-{repeat}")
        )
        if plain_best is None or elapsed < plain_best:
            plain_best = elapsed

    soak_best = None
    for repeat in range(REPEATS):
        soak_digest, soak_windows, elapsed, report = _soak_run(
            spec, str(tmp_path / f"soak-{repeat}")
        )
        if soak_best is None or elapsed < soak_best:
            soak_best = elapsed

    # The harness must change only the disruption schedule, never the
    # evidence.
    assert soak_digest == plain_digest
    assert soak_windows == plain_windows
    assert report.restarts == EPOCHS - 1
    assert report.migrations > 0

    overhead_pct = 100.0 * (soak_best - plain_best) / plain_best
    per_epoch_overhead_pct = overhead_pct / EPOCHS

    record = {
        "seed": FLEET_SPEC.seed,
        "tenants": FLEET_SPEC.tenants,
        "shards": len(FLEET_SPEC.attacks()),
        "epochs": EPOCHS,
        "restarts": report.restarts,
        "kills": report.kills,
        "migrations": report.migrations,
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "windows_total": soak_windows,
        "plain_seconds": round(plain_best, 4),
        "soak_seconds": round(soak_best, 4),
        "soak_windows_per_second": round(soak_windows / soak_best, 1),
        "soak_overhead_pct": round(overhead_pct, 2),
        "per_epoch_overhead_pct": round(per_epoch_overhead_pct, 3),
    }
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Target is <10% per epoch; loose total ceiling for noisy CI clocks.
    assert overhead_pct < 100.0

    with capsys.disabled():
        print()
        print(f"wrote {ARTIFACT}")
        for key, value in sorted(record.items()):
            print(f"  {key:26s}: {value}")
