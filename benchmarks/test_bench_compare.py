"""Strategy-race overhead benchmark.

``spooftrack compare`` races every registered traceback strategy over
one seeded testbed, paying the catchment measurement pass once through
a shared :class:`~repro.core.engine.SimulationEngine` and re-running
only the (cheap) refinement arithmetic per contestant.  That design is
the whole point: a race of six strategies should cost barely more than
a lone greedy run, because the simulation work dominates and is shared.

This benchmark times the same testbed two ways:

* **lone**: one measurement pass plus a single
  :class:`~repro.core.scheduler.GreedyScheduler` run — the §V-C
  baseline a user would run anyway;
* **race**: :func:`~repro.strategy.compare_strategies` over every
  registered strategy, cold engine, same schedule.

``BENCH_compare.json`` records both wall times and the per-strategy
marginal cost.  The assertion ceiling is deliberately loose (the race
may cost up to 8x the lone run — it runs 6 strategies plus ranking)
because CI clocks are noisy; `spooftrack bench-check` gates the wall
times against recorded history.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.configgen import ScheduleParams, generate_schedule
from repro.core.engine import SimulationEngine
from repro.core.pipeline import build_testbed
from repro.core.scheduler import GreedyScheduler, measured_catchment_history
from repro.strategy import available_strategies, compare_strategies

ARTIFACT = os.path.join(os.path.dirname(__file__), "BENCH_compare.json")
REPEATS = 3
SEED = 0
MAX_CONFIGS = 12


def _lone_run():
    """Measurement pass + one greedy schedule; returns (order, seconds)."""
    testbed = build_testbed(seed=SEED)
    schedule = generate_schedule(
        testbed.origin, testbed.graph, ScheduleParams()
    )[:MAX_CONFIGS]
    engine = SimulationEngine(testbed.simulator, spec=testbed.spec)
    start = time.perf_counter()
    try:
        universe, history = measured_catchment_history(engine, schedule)
        order, _ = GreedyScheduler(universe, history).run()
    finally:
        engine.close()
    return order, time.perf_counter() - start


def _race_run():
    """Full compare race, cold engine; returns (report, seconds)."""
    testbed = build_testbed(seed=SEED)
    start = time.perf_counter()
    report = compare_strategies(testbed, max_configs=MAX_CONFIGS)
    return report, time.perf_counter() - start


def test_compare_overhead(capsys):
    lone_best = None
    for _ in range(REPEATS):
        lone_order, elapsed = _lone_run()
        if lone_best is None or elapsed < lone_best:
            lone_best = elapsed

    race_best = None
    for _ in range(REPEATS):
        report, elapsed = _race_run()
        if race_best is None or elapsed < race_best:
            race_best = elapsed

    # The race must contain the lone run: its greedy contestant deploys
    # the exact order the standalone scheduler produced.
    by_name = {outcome.strategy: outcome for outcome in report.outcomes}
    assert by_name["greedy"].order == lone_order
    assert len(report.outcomes) == len(available_strategies())

    contestants = len(report.outcomes)
    marginal = (race_best - lone_best) / max(contestants - 1, 1)

    record = {
        "seed": SEED,
        "max_configs": MAX_CONFIGS,
        "contestants": contestants,
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "universe_size": report.universe_size,
        "configs_simulated": report.engine_stats.configs_simulated,
        "lone_seconds": round(lone_best, 4),
        "race_seconds": round(race_best, 4),
        "marginal_seconds_per_strategy": round(marginal, 4),
        "race_over_lone_ratio": round(race_best / lone_best, 3),
    }
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Shared measurement pass: racing N strategies must cost far less
    # than N lone runs.  Loose ceiling for noisy CI clocks.
    assert race_best < 8.0 * max(lone_best, 0.01)

    with capsys.disabled():
        print()
        print(f"wrote {ARTIFACT}")
        for key, value in sorted(record.items()):
            print(f"  {key:30s}: {value}")
