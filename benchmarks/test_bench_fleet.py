"""Fleet runtime throughput and per-shard overhead benchmark.

The fleet multiplexes N shards through shared per-tenant engines, a
fair-share scheduler, and tagged observability views — machinery that
must stay cheap relative to the replay work itself.  This benchmark
runs an 8-shard campaign (4 tenants x 2 attacks) two ways:

* **lone**: each shard as a standalone
  :class:`~repro.live.service.LiveTracebackService`, serially, sharing
  the tenant's engine exactly like the fleet does — the same simulation
  work with zero fleet machinery;
* **fleet**: the same shards through :class:`~repro.fleet.FleetRuntime`
  (scheduler, event stream, shard lifecycle, per-tenant watchdogs).

Identical attribution digests double-check that the fleet changed
nothing but the interleaving.  ``BENCH_fleet.json`` records aggregate
throughput (windows/s across the fleet) and the per-shard overhead.
The target is <10% overhead at 8 shards; the assertion ceiling is loose
(50%) because CI containers have noisy clocks — the artifact records
the real number, and `spooftrack bench-check` gates the wall times
against history.
"""

from __future__ import annotations

import json
import os
import time

from repro.fleet import FleetRuntime, FleetSpec, attribution_digest
from repro.core.engine import SimulationEngine
from repro.live import LiveTracebackService
from repro.topology.generator import TopologyParams

ARTIFACT = os.path.join(os.path.dirname(__file__), "BENCH_fleet.json")
REPEATS = 3

FLEET_SPEC = FleetSpec(
    seed=11,
    tenants=4,
    attacks_per_tenant=2,
    max_configs=3,
    num_sources=6,
    num_links=5,
    num_vantages=12,
    num_probes=40,
    topology_params=TopologyParams(
        num_tier1=4, num_transit=24, num_stub=90, seed=1
    ),
)


def _resources():
    """Fresh (cold-cache) per-tenant testbeds and engines, untimed.

    Both paths get identical, freshly built resources per repeat so the
    measured difference is purely the fleet machinery, not cache warmth
    or topology construction.
    """
    testbeds = {
        tenant: FLEET_SPEC.tenant_testbed(tenant).build()
        for tenant in FLEET_SPEC.tenant_names()
    }
    engines = {
        tenant: SimulationEngine(
            testbeds[tenant].simulator,
            spec=FLEET_SPEC.tenant_testbed(tenant),
        )
        for tenant in FLEET_SPEC.tenant_names()
    }
    return testbeds, engines


def _lone_run(attacks):
    """Every shard as a standalone service, serially; returns
    (digest map, total windows, wall seconds)."""
    testbeds, engines = _resources()
    digests = {}
    windows = 0
    start = time.perf_counter()
    for attack in attacks:
        service = LiveTracebackService(
            scenario=attack.scenario,
            spec=attack.testbed,
            testbed=testbeds[attack.tenant],
            engine=engines[attack.tenant],
        )
        report = service.run()
        service.close()
        digests[attack.key] = attribution_digest(report)
        windows += report.run_stats.windows
    elapsed = time.perf_counter() - start
    for engine in engines.values():
        engine.close()
    return digests, windows, elapsed


def _fleet_run():
    """The same shards through the fleet runtime; returns
    (digest map, total windows, wall seconds)."""
    testbeds, engines = _resources()
    runtime = FleetRuntime(FLEET_SPEC)
    # Hand the runtime the pre-built resources it would otherwise build
    # lazily, so the timer covers the same work as the lone path.
    runtime._testbeds.update(testbeds)
    runtime._engines.update(engines)
    start = time.perf_counter()
    report = runtime.run()
    elapsed = time.perf_counter() - start
    runtime.close()
    digests = {shard.key: shard.attribution_digest for shard in report.shards}
    return digests, sum(shard.windows for shard in report.shards), elapsed


def test_fleet_overhead_and_throughput(capsys):
    attacks = FLEET_SPEC.attacks()

    lone_best = None
    for _ in range(REPEATS):
        lone_digests, lone_windows, elapsed = _lone_run(attacks)
        if lone_best is None or elapsed < lone_best:
            lone_best = elapsed

    fleet_best = None
    for _ in range(REPEATS):
        fleet_digests, fleet_windows, elapsed = _fleet_run()
        if fleet_best is None or elapsed < fleet_best:
            fleet_best = elapsed

    # The fleet must change only the interleaving, never the evidence.
    assert fleet_digests == lone_digests
    assert fleet_windows == lone_windows

    overhead_pct = 100.0 * (fleet_best - lone_best) / lone_best
    per_shard_overhead_pct = overhead_pct / len(attacks)

    record = {
        "seed": FLEET_SPEC.seed,
        "tenants": FLEET_SPEC.tenants,
        "shards": len(attacks),
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "windows_total": fleet_windows,
        "lone_seconds": round(lone_best, 4),
        "fleet_seconds": round(fleet_best, 4),
        "fleet_windows_per_second": round(fleet_windows / fleet_best, 1),
        "fleet_overhead_pct": round(overhead_pct, 2),
        "per_shard_overhead_pct": round(per_shard_overhead_pct, 3),
    }
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Target is <10% at 8 shards; loose ceiling for noisy CI clocks.
    assert overhead_pct < 50.0

    with capsys.disabled():
        print()
        print(f"wrote {ARTIFACT}")
        for key, value in sorted(record.items()):
            print(f"  {key:26s}: {value}")
