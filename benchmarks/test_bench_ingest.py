"""Raw event-ingest throughput benchmark (ROADMAP: >= 1M events/s).

The fleet roadmap's original live-service target asks for a measured raw
ingest figure, not the windows/s number BENCH_fleet.json reports.  Two
hot paths feed the fleet:

* the bounded honeypot queue — ``BoundedIngestQueue.offer`` /
  ``drain`` cycles over :class:`PacketBatch` events with full drop
  accounting; and
* the merged fleet control stream — ``merge_streams`` over per-tenant
  ``FleetEvent`` streams plus ``iter_stream`` validation.

Both are measured in events/s and recorded to ``BENCH_ingest.json``
along with progress toward the 1M-events/s headline.  The assertion
floor is deliberately far below the target — CI containers are slow and
noisy — while the artifact records the real measured figure.

``REPRO_BENCH_LARGE=1`` additionally runs a 100-attack fleet replay
smoke (10 tenants x 10 attacks) and stamps its shard count and wall
time into the artifact.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.fleet import FleetSpec, FleetRuntime, iter_stream, merge_streams, scripted_stream
from repro.live.events import PacketBatch
from repro.live.ingest import BoundedIngestQueue
from repro.topology.generator import TopologyParams

ARTIFACT = os.path.join(os.path.dirname(__file__), "BENCH_ingest.json")
TARGET_EVENTS_PER_SECOND = 1_000_000
REPEATS = 3

#: Queue benchmark: batches offered per repeat, drained in blocks.
QUEUE_EVENTS = 200_000
QUEUE_CAPACITY = 1_024
DRAIN_EVERY = 512

#: Stream benchmark: tenants x attacks whose launch streams get merged.
STREAM_SPEC = FleetSpec(
    seed=7,
    tenants=20,
    attacks_per_tenant=50,
    max_configs=1,
    num_sources=4,
    num_links=3,
    num_vantages=8,
    num_probes=20,
    topology_params=TopologyParams(num_tier1=4, num_transit=24, num_stub=90, seed=1),
)
STREAM_ROUNDS = 20

#: 100-attack replay smoke (REPRO_BENCH_LARGE=1 only).
LARGE_SPEC = FleetSpec(
    seed=5,
    tenants=10,
    attacks_per_tenant=10,
    max_configs=2,
    num_sources=4,
    num_links=3,
    num_vantages=8,
    num_probes=20,
    topology_params=TopologyParams(num_tier1=4, num_transit=24, num_stub=90, seed=1),
)


def _queue_ingest_once() -> float:
    """One offer/drain campaign; returns elapsed seconds."""
    queue = BoundedIngestQueue(capacity=QUEUE_CAPACITY, drop_policy="oldest")
    batch = PacketBatch(timestamp=0.0, volumes={1: 10.0, 2: 4.0}, packets=14)
    offer = queue.offer
    drain = queue.drain
    start = time.perf_counter()
    for index in range(QUEUE_EVENTS):
        offer(batch)
        if index % DRAIN_EVERY == DRAIN_EVERY - 1:
            drain()
    drain()
    elapsed = time.perf_counter() - start
    stats = queue.stats
    assert stats.offered_batches == QUEUE_EVENTS
    assert stats.offered_volume == pytest.approx(
        stats.accepted_volume + stats.dropped_volume
    )
    return elapsed


def _stream_merge_once() -> "tuple[float, int]":
    """Merge per-tenant launch streams; returns (elapsed, events merged)."""
    per_tenant = {}
    for event in scripted_stream(STREAM_SPEC):
        per_tenant.setdefault(event.key[0], []).append(event)
    streams = [per_tenant[tenant] for tenant in sorted(per_tenant)]
    total = 0
    start = time.perf_counter()
    for _ in range(STREAM_ROUNDS):
        merged = merge_streams(*streams)
        for _event in iter_stream(merged):
            total += 1
    elapsed = time.perf_counter() - start
    expected = STREAM_ROUNDS * sum(len(stream) for stream in streams)
    assert total == expected
    return elapsed, total


def _best(run, *args):
    best = None
    result = None
    for _ in range(REPEATS):
        result = run(*args)
        key = result[0] if isinstance(result, tuple) else result
        if best is None or key < best[0]:
            best = (key, result)
    return best[1]


def test_ingest_throughput(capsys):
    queue_seconds = _best(_queue_ingest_once)
    stream_seconds, stream_events = _best(_stream_merge_once)

    queue_eps = QUEUE_EVENTS / queue_seconds
    stream_eps = stream_events / stream_seconds

    record = {
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "target_events_per_second": TARGET_EVENTS_PER_SECOND,
        "queue_events": QUEUE_EVENTS,
        "queue_capacity": QUEUE_CAPACITY,
        "queue_ingest_seconds": round(queue_seconds, 4),
        "queue_events_per_second": round(queue_eps),
        "queue_pct_of_target": round(100.0 * queue_eps / TARGET_EVENTS_PER_SECOND, 1),
        "stream_events": stream_events,
        "stream_merge_seconds": round(stream_seconds, 4),
        "stream_events_per_second": round(stream_eps),
    }
    if os.path.exists(ARTIFACT):
        with open(ARTIFACT, encoding="utf-8") as handle:
            previous = json.load(handle)
        for key, value in previous.items():
            if key.startswith("large_replay_"):
                record[key] = value
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # The real target is 1M events/s; the floor here only guards against
    # order-of-magnitude collapses on noisy CI boxes.
    assert queue_eps > 50_000
    assert stream_eps > 50_000

    with capsys.disabled():
        print()
        print(f"wrote {ARTIFACT}")
        for key, value in sorted(record.items()):
            print(f"  {key:28s}: {value}")


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE") != "1",
    reason="set REPRO_BENCH_LARGE=1 for the 100-attack replay smoke",
)
def test_large_replay_smoke(capsys):
    assert LARGE_SPEC.tenants * LARGE_SPEC.attacks_per_tenant == 100
    runtime = FleetRuntime(LARGE_SPEC, events=scripted_stream(LARGE_SPEC))
    start = time.perf_counter()
    try:
        report = runtime.run()
    finally:
        runtime.close()
    elapsed = time.perf_counter() - start
    assert len(report.shards) == 100
    assert all(shard.windows > 0 for shard in report.shards)

    extra = {
        "large_replay_attacks": len(report.shards),
        "large_replay_wall_seconds": round(elapsed, 2),
    }
    if os.path.exists(ARTIFACT):
        with open(ARTIFACT, encoding="utf-8") as handle:
            record = json.load(handle)
    else:
        record = {}
    record.update(extra)
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    with capsys.disabled():
        print()
        for key, value in sorted(extra.items()):
            print(f"  {key:28s}: {value}")
