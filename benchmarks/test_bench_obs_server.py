"""Served-telemetry overhead benchmark.

PR 5's exporter promises that *serving* the run's telemetry is nearly
free for the run itself: the bus publish path is one lock plus dict
fan-out, the SSE endpoint drains from its own queue on the server's
daemon threads, and ``/metrics`` renders under the registry lock only
when a scraper asks.  This benchmark runs the full pipeline three ways
— armed bundle only, armed + idle server, armed + server under an
active SSE subscriber and periodic ``/metrics`` scrapes — verifies the
reports are identical, and records wall times to
``BENCH_obs_server.json``.

The <5% serving-overhead target is asserted loosely (25%) because CI
containers have noisy clocks; the artifact records the real number.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request

from conftest import BENCH_PARAMS, BENCH_SEED

from repro.core.pipeline import SpoofTracker, build_testbed
from repro.obs import Observability, ObsServer, SloWatchdog, parse_prometheus

ARTIFACT = os.path.join(os.path.dirname(__file__), "BENCH_obs_server.json")
NUM_CONFIGS = 60
REPEATS = 3
SCRAPE_INTERVAL = 0.05


def _run_once(testbed, serve=False, scrape=False):
    """One cold pipeline run; returns (report, obs, elapsed, scrapes)."""
    obs = Observability.for_run("track")
    server = None
    stop = threading.Event()
    scrapes = [0]
    threads = []
    if serve:
        watchdog = SloWatchdog(registry=obs.registry)
        obs.bus.attach(watchdog.observe)
        server = ObsServer(obs=obs, watchdog=watchdog, port=0).start()
    if serve and scrape:

        def scraper():
            while not stop.is_set():
                with urllib.request.urlopen(server.url + "/metrics") as resp:
                    parse_prometheus(resp.read().decode("utf-8"))
                scrapes[0] += 1
                stop.wait(SCRAPE_INTERVAL)

        def listener():
            # A live SSE consumer, like `spooftrack dash --url`.
            with urllib.request.urlopen(server.url + "/events?replay=1") as resp:
                while not stop.is_set():
                    if not resp.readline():
                        return

        threads = [
            threading.Thread(target=scraper, daemon=True),
            threading.Thread(target=listener, daemon=True),
        ]
        for thread in threads:
            thread.start()
    tracker = SpoofTracker(testbed, obs=obs)
    start = time.perf_counter()
    report = tracker.run(max_configs=NUM_CONFIGS)
    elapsed = time.perf_counter() - start
    tracker.engine.close()
    stop.set()
    if server is not None:
        obs.bus.close()
        for thread in threads:
            thread.join(timeout=5)
        server.stop()
    return report, obs, elapsed, scrapes[0]


def _best_time(testbed, **kwargs):
    best = None
    report = None
    obs = None
    scrapes = 0
    for _ in range(REPEATS):
        report, obs, elapsed, scrapes = _run_once(testbed, **kwargs)
        if best is None or elapsed < best:
            best = elapsed
    return report, obs, best, scrapes


def test_obs_server_overhead(capsys):
    testbed = build_testbed(seed=BENCH_SEED, topology_params=BENCH_PARAMS)

    baseline, _, armed_time, _ = _best_time(testbed)
    idle, _, idle_time, _ = _best_time(testbed, serve=True)
    scraped, scraped_obs, scraped_time, scrapes = _best_time(
        testbed, serve=True, scrape=True
    )

    # Serving must not perturb results at all.
    for other in (idle, scraped):
        assert other.universe == baseline.universe
        assert other.clusters == baseline.clusters
        assert other.catchment_history == baseline.catchment_history

    # The scraped run actually served scrapes and published bus events.
    assert scrapes > 0
    assert scraped_obs.bus.events_published > 0

    idle_pct = 100.0 * (idle_time - armed_time) / armed_time
    scraped_pct = 100.0 * (scraped_time - armed_time) / armed_time

    record = {
        "seed": BENCH_SEED,
        "num_configs": NUM_CONFIGS,
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "armed_seconds": round(armed_time, 4),
        "served_idle_seconds": round(idle_time, 4),
        "served_scraped_seconds": round(scraped_time, 4),
        "served_idle_overhead_pct": round(idle_pct, 2),
        "served_scraped_overhead_pct": round(scraped_pct, 2),
        "scrapes_in_best_run": scrapes,
        "bus_events_published": scraped_obs.bus.events_published,
    }
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Target is <5%; assert a loose ceiling so noisy CI clocks don't flake.
    assert scraped_pct < 25.0

    with capsys.disabled():
        print()
        print(f"wrote {ARTIFACT}")
        for key, value in sorted(record.items()):
            print(f"  {key:28s}: {value}")
