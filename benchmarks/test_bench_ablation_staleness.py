"""Ablation: stale catchments vs route drift (paper §V-C trade-off).

"Reusing previous catchment measurements may incur errors due to route
changes" — this ablation quantifies the error as the Internet drifts away
from the measured state: the fraction of sources a stale anycast catchment
map misplaces, and how well the stale cluster partition still matches the
live one.
"""

import pytest

from repro.core.configgen import ScheduleParams, generate_schedule
from repro.core.staleness import StalenessExperiment

DRIFTS = (0.0, 0.1, 0.3, 0.6, 1.0)


def test_staleness_sweep(benchmark, bench_run, capsys):
    testbed = bench_run.testbed
    schedule = generate_schedule(
        testbed.origin, testbed.graph, ScheduleParams(include_poisoning=False)
    )[:25]
    experiment = StalenessExperiment(
        testbed.graph, testbed.origin, testbed.policy, schedule
    )

    points = benchmark.pedantic(
        experiment.sweep, args=(DRIFTS,), iterations=1, rounds=2
    )

    misplaced = [point.misplaced_fraction for point in points]
    agreement = [point.cluster_agreement for point in points]
    # Frozen Internet: stale data is perfect.
    assert misplaced[0] == 0.0 and agreement[0] == 1.0
    # Error grows (weakly) with drift and is material at full drift.
    assert all(b >= a - 1e-9 for a, b in zip(misplaced, misplaced[1:]))
    assert misplaced[-1] > 0.02
    # Cluster structure is far more robust than raw catchments: ties
    # re-rolling moves individual sources but rarely reorders pairs.
    assert min(agreement) > 0.9

    with capsys.disabled():
        print()
        print("ablation: stale catchment error vs route drift")
        for point in points:
            print(
                f"  drift {point.drift:>4.0%}: misplaced "
                f"{point.misplaced_fraction:>5.1%}, cluster agreement "
                f"{point.cluster_agreement:>6.1%}"
            )
