"""Shared primitive types and aliases used across the library.

The library models the Internet at the autonomous-system level.  ASes are
identified by plain integers (``ASN``); peering links of the origin network
are identified by short strings (``LinkId``), e.g. ``"amsterdam01"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Sequence, Tuple

#: Autonomous system number.  Plain int; 32-bit ASNs are supported.
ASN = int

#: Identifier of one of the origin network's peering links ("mux" in
#: PEERING terminology).
LinkId = str

#: An AS-level path, origin-last (the origin AS is the final element),
#: matching the on-the-wire AS_PATH reading order: ``path[0]`` is the AS
#: closest to the observer.
ASPath = Tuple[ASN, ...]

#: A catchment: the set of source ASes routed toward one peering link.
Catchment = FrozenSet[ASN]

#: Catchments of one configuration, keyed by peering link.
CatchmentMap = Mapping[LinkId, Catchment]

MIN_ASN = 1
MAX_ASN = 2**32 - 1


def validate_asn(asn: ASN) -> ASN:
    """Return ``asn`` if it is a valid AS number, raise ``ValueError`` otherwise."""
    if not isinstance(asn, int) or isinstance(asn, bool):
        raise ValueError(f"ASN must be an int, got {asn!r}")
    if not MIN_ASN <= asn <= MAX_ASN:
        raise ValueError(f"ASN {asn} outside valid range [{MIN_ASN}, {MAX_ASN}]")
    return asn


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix in CIDR form, stored as (network int, length).

    Only the pieces of prefix arithmetic the library needs are implemented:
    containment checks, address iteration bounds, and parsing/formatting.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length {self.length} outside [0, 32]")
        if not 0 <= self.network < 2**32:
            raise ValueError(f"network {self.network:#x} outside IPv4 range")
        if self.network & (self.hostmask) != 0:
            raise ValueError(
                f"network {format_ipv4(self.network)}/{self.length} has host bits set"
            )

    @property
    def netmask(self) -> int:
        """Network mask as a 32-bit integer."""
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    @property
    def hostmask(self) -> int:
        """Host mask (inverse of :attr:`netmask`)."""
        return 0xFFFFFFFF ^ self.netmask

    @property
    def first_address(self) -> int:
        """Lowest address contained in the prefix."""
        return self.network

    @property
    def last_address(self) -> int:
        """Highest address contained in the prefix."""
        return self.network | self.hostmask

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def contains_address(self, address: int) -> bool:
        """Return True if the 32-bit integer ``address`` falls in this prefix."""
        return (address & self.netmask) == self.network

    def contains_prefix(self, other: "Prefix") -> bool:
        """Return True if ``other`` is equal to or more specific than this prefix."""
        return other.length >= self.length and self.contains_address(other.network)

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` into a :class:`Prefix`."""
        try:
            address_text, length_text = text.strip().split("/")
            length = int(length_text)
        except ValueError as exc:
            raise ValueError(f"malformed prefix {text!r}") from exc
        return cls(parse_ipv4(address_text), length)

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.length}"


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad IPv4 ``text`` into a 32-bit integer."""
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError as exc:
            raise ValueError(f"malformed IPv4 address {text!r}") from exc
        if not 0 <= octet <= 255:
            raise ValueError(f"IPv4 octet {octet} outside [0, 255] in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format a 32-bit integer as a dotted-quad IPv4 address."""
    if not 0 <= value < 2**32:
        raise ValueError(f"address {value:#x} outside IPv4 range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def path_without_prepending(path: Sequence[ASN]) -> ASPath:
    """Collapse consecutive duplicate ASNs (prepending) out of an AS-path."""
    collapsed = []
    for asn in path:
        if not collapsed or collapsed[-1] != asn:
            collapsed.append(asn)
    return tuple(collapsed)
