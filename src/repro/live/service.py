"""The online traceback runtime and its attack-replay driver.

:class:`LiveTracebackService` ties the live subsystem together: a
:class:`~repro.live.events.SimClock` paces observation windows, a
:class:`~repro.live.ingest.BoundedIngestQueue` absorbs generated spoofed
traffic, a :class:`~repro.live.attributor.LiveAttributor` refines clusters
and re-solves volumes every window, and an
:class:`~repro.live.controller.AdaptiveController` decides which
configuration to announce next and when more announcements cannot help.

Everything is driven by a :class:`ReplayScenario` — a frozen, fully
seeded description of one synthetic attack (source placement, traffic
rate, queue limits, scheduled route-churn events, checkpoint cadence) —
so a replay is deterministic end to end: the same scenario produces the
same window-by-window statistics and the same final attribution on any
machine, and a run killed at a checkpoint resumes to the identical final
report.
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..bgp.simulator import RoutingOutcome, RoutingSimulator
from ..core.configgen import ScheduleParams, generate_schedule
from ..core.engine import EngineStats, SimulationEngine
from ..core.localization import LocalizationResult
from ..core.pipeline import StepStats, Testbed, TestbedSpec, TrackerReport
from ..core.staleness import churned_policy, misplaced_fraction
from ..core.timeline import CampaignTimeline
from ..errors import LiveServiceError
from ..faults.health import (
    InvariantMonitor,
    ResilienceReport,
    build_resilience_report,
)
from ..faults.injection import FaultInjector
from ..faults.plan import WORKER_CRASH, WORKER_HANG, FaultPlan
from ..measurement.traceroute import TracerouteParams
from ..obs import (
    Observability,
    RunManifest,
    record_engine_stats,
    record_fault_log,
)
from ..strategy import strategy_class
from ..spoof.sources import (
    PLACEMENT_DISTRIBUTIONS,
    SourcePlacement,
    make_placement,
)
from ..spoof.traffic import (
    SpoofedTrafficGenerator,
    link_volumes,
    volumes_from_packets,
)
from ..topology.generator import TopologyParams
from ..types import ASN, Catchment, LinkId
from .attributor import LiveAttributor
from .checkpoint import save_checkpoint
from .controller import AdaptiveController, ControllerPolicy
from .events import (
    CheckpointRequest,
    ConfigApplied,
    Event,
    PacketBatch,
    RouteChurn,
    SimClock,
)
from .ingest import BoundedIngestQueue, DecayingVolumeWindow, IngestStats

#: Checkpoint payload version written by :meth:`as_serializable` (older
#: documents upgrade through :mod:`repro.live.checkpoint`'s migrations).
STATE_VERSION = 2


@dataclass(frozen=True)
class ReplayScenario:
    """Fully seeded description of one synthetic attack replay.

    Attributes:
        seed: drives source placement and packet-level traffic.  The
            testbed has its own seed (in :class:`TestbedSpec`).
        distribution: spoofing-source placement distribution.
        num_sources: number of spoofing sources to place.
        max_configs: truncate the announcement schedule to this many
            configurations (None = full schedule).
        window_minutes: honeypot counter-read interval; the dwell model
            decides how many windows each configuration affords.
        volume_per_window: spoofed volume the sources originate per
            window (noiseless volume mode).
        batches_per_window: how many :class:`PacketBatch` es the producer
            offers per window (stresses the bounded queue).
        queue_capacity: ingestion queue bound.
        drop_policy: ``"newest"`` or ``"oldest"`` (see
            :class:`~repro.live.ingest.BoundedIngestQueue`).
        half_life_windows: decay half-life of the recent-volume window.
        adaptive: let the controller reorder remaining configurations by
            volume-weighted gain (False = schedule order, the batch
            pipeline's behaviour).
        strategy: registry name of the traceback strategy the controller
            consults in adaptive mode (default the paper's ``"greedy"``;
            see :func:`repro.strategy.available_strategies`).  The
            strategy's internal randomness is seeded from ``seed``.
        min_configs: never short-circuit before this many configurations.
        stop_entropy: short-circuit once attribution entropy (bits) drops
            to this (None = disabled).
        stop_volume_share: short-circuit once a singleton cluster holds
            this share of estimated volume (None = disabled).
        churn_events: ``(window_index, drift)`` pairs, sorted by window —
            at each, the live Internet drifts from the measurement-time
            policy by the given fraction.
        churn_remeasure_threshold: misplaced-source fraction above which
            churn triggers remeasurement of every catchment map.
        checkpoint_every: checkpoint each N windows (0 = never).
        checkpoint_path: where periodic checkpoints are written.
        packets_per_window: >0 switches to packet-sampled traffic with
            this many packets per window (noisy mode; volumes are then
            byte counts and conservation is per delivered packet).
        nnls_stride: re-solve the attribution NNLS at most once per this
            many accumulated windows (1 = every window, the historical
            behaviour; see
            :class:`~repro.live.attributor.LiveAttributor`).  Final
            reports always force a full solve, so end-of-run results are
            stride-independent.
    """

    seed: int = 0
    distribution: str = "pareto"
    num_sources: int = 40
    max_configs: Optional[int] = 12
    window_minutes: float = 20.0
    volume_per_window: float = 1.0
    batches_per_window: int = 1
    queue_capacity: int = 64
    drop_policy: str = "newest"
    half_life_windows: float = 4.0
    adaptive: bool = True
    strategy: str = "greedy"
    min_configs: int = 3
    stop_entropy: Optional[float] = None
    stop_volume_share: Optional[float] = None
    churn_events: Tuple[Tuple[int, float], ...] = ()
    churn_remeasure_threshold: float = 0.02
    checkpoint_every: int = 0
    checkpoint_path: str = ""
    packets_per_window: int = 0
    nnls_stride: int = 1

    def __post_init__(self) -> None:
        if self.distribution not in PLACEMENT_DISTRIBUTIONS:
            raise LiveServiceError(
                f"unknown distribution {self.distribution!r}; "
                f"expected one of {sorted(PLACEMENT_DISTRIBUTIONS)}"
            )
        if self.num_sources < 1:
            raise LiveServiceError("need at least one spoofing source")
        if self.max_configs is not None and self.max_configs < 1:
            raise LiveServiceError("max_configs must be at least 1")
        if self.window_minutes <= 0:
            raise LiveServiceError("window length must be positive")
        if self.volume_per_window <= 0:
            raise LiveServiceError("per-window volume must be positive")
        if self.batches_per_window < 1:
            raise LiveServiceError("need at least one batch per window")
        if self.checkpoint_every < 0 or self.packets_per_window < 0:
            raise LiveServiceError("counts cannot be negative")
        if self.checkpoint_every > 0 and not self.checkpoint_path:
            raise LiveServiceError("periodic checkpoints need a path")
        if self.nnls_stride < 1:
            raise LiveServiceError("nnls_stride must be at least 1")
        # Fail fast on unknown strategy names (checkpoints embed them).
        strategy_class(self.strategy)
        last_window = -1
        for entry in self.churn_events:
            window, drift = entry
            if window <= last_window:
                raise LiveServiceError(
                    "churn events must be sorted by strictly increasing window"
                )
            if not 0.0 <= drift <= 1.0:
                raise LiveServiceError("churn drift must be in [0, 1]")
            last_window = window


@dataclass(frozen=True)
class WindowStats:
    """Runtime statistics emitted after every observation window.

    Volume counters are cumulative since the start of the replay, so any
    single snapshot tells the whole backpressure story; cluster counters
    describe the rolling attribution *after* this window's evidence.
    """

    window_index: int
    clock_minutes: float
    config_label: str
    schedule_index: int
    configs_consumed: int
    queue_depth: int
    offered_volume: float
    accepted_volume: float
    dropped_volume: float
    unattributed_volume: float
    num_clusters: int
    mean_cluster_size: float
    entropy: float
    recent_concentration: float


@dataclass(frozen=True)
class LiveRunStats:
    """Whole-run runtime statistics, attachable to a batch report."""

    windows: int
    configs_consumed: int
    dwell_minutes: float
    remeasurements: int
    offered_volume: float
    dropped_volume: float
    dropped_batches: int
    unattributed_volume: float
    max_queue_depth: int
    final_entropy: float
    stop_reason: str

    def summary(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"{self.windows} windows / {self.configs_consumed} configs "
            f"({self.dwell_minutes:.0f} min dwell, "
            f"{self.remeasurements} remeasurements), dropped "
            f"{self.dropped_volume:.3f}/{self.offered_volume:.3f} volume "
            f"(peak queue {self.max_queue_depth}), "
            f"entropy {self.final_entropy:.2f} bits, "
            f"stopped: {self.stop_reason}"
        )


@dataclass
class LiveReport:
    """Everything a finished (or checkpointed) replay produced."""

    scenario: ReplayScenario
    universe: FrozenSet[ASN]
    steps: List[StepStats]
    clusters: List[FrozenSet[ASN]]
    catchment_history: List[Dict[LinkId, Catchment]]
    windows: List[WindowStats]
    ingest: IngestStats
    run_stats: LiveRunStats
    localization: Optional[LocalizationResult] = None
    placement: Optional[SourcePlacement] = None
    engine_stats: Optional[EngineStats] = None
    resilience: Optional[ResilienceReport] = None
    manifest: Optional[RunManifest] = None

    def to_tracker_report(self) -> TrackerReport:
        """Project onto the batch pipeline's report type."""
        return TrackerReport(
            universe=self.universe,
            steps=list(self.steps),
            clusters=list(self.clusters),
            catchment_history=[dict(maps) for maps in self.catchment_history],
            localization=self.localization,
            placement=self.placement,
            measured=False,
            engine_stats=self.engine_stats,
            live_stats=self.run_stats,
            resilience=self.resilience,
            manifest=self.manifest,
        )

    def summary(self) -> str:
        """Multi-line human-readable report (batch format + live stats)."""
        return self.to_tracker_report().summary()


class LiveTracebackService:
    """Event-driven online attribution over a synthetic attack replay.

    Args:
        scenario: the attack replay to drive.
        spec: testbed recipe (defaults to a spec seeded from the
            scenario); required for checkpointing.
        testbed: pre-built testbed to reuse (must carry ``spec`` for
            checkpointing; defaults to ``spec.build()``).
        workers: simulation worker processes for the pre-measurement.
        timeline: dwell-cost model (defaults to the paper's).
        injector: optional chaos hook driving volume-noise bursts,
            route-churn storms, checkpoint corruption, and simulation
            faults; the fault plan travels inside checkpoints so a
            resumed chaos run stays on plan.
        obs: optional :class:`~repro.obs.Observability` bundle — arms a
            "premeasure" span, per-window latency histograms, and live
            runtime counters (windows, selections, remeasurements,
            dropped batches).
        engine: pre-built :class:`SimulationEngine` to run measurements
            through instead of constructing a private one.  The fleet
            runtime passes one shared engine per tenant so sibling
            attacks on the same origin reuse its LRU cache and worker
            pool; a shared engine is *not* closed by :meth:`close` (its
            owner tears it down), and its stats span every consumer.
    """

    def __init__(
        self,
        scenario: Optional[ReplayScenario] = None,
        spec: Optional[TestbedSpec] = None,
        testbed: Optional[Testbed] = None,
        workers: int = 1,
        timeline: Optional[CampaignTimeline] = None,
        injector: Optional[FaultInjector] = None,
        obs: Optional[Observability] = None,
        engine: Optional[SimulationEngine] = None,
    ) -> None:
        self.scenario = scenario or ReplayScenario()
        self.injector = injector
        self.obs = obs if obs is not None else Observability()
        if testbed is not None:
            self.testbed = testbed
            self.spec = testbed.spec if spec is None else spec
        else:
            self.spec = spec or TestbedSpec(seed=self.scenario.seed)
            self.testbed = self.spec.build()
        self.timeline = timeline or CampaignTimeline()

        schedule = generate_schedule(
            self.testbed.origin, self.testbed.graph, ScheduleParams()
        )
        if self.scenario.max_configs is not None:
            schedule = schedule[: self.scenario.max_configs]
        self.schedule = schedule
        self._owns_engine = engine is None
        self.engine = engine if engine is not None else SimulationEngine(
            self.testbed.simulator,
            workers=workers,
            spec=self.spec,
            injector=injector,
            bus=self.obs.bus,
            tracer=self.obs.tracer,
        )
        # Pre-attack measurement: catchments of every scheduled
        # configuration, streamed through the engine in schedule order.
        with self.obs.phase("premeasure", configs=len(self.schedule)) as span:
            with self.obs.capture():
                self._stale_outcomes: List[RoutingOutcome] = list(
                    self.engine.iter_simulate(self.schedule)
                )
            if span is not None:
                span.set(
                    "configs_simulated", self.engine.stats.configs_simulated
                )
        # What the controller's current maps were derived from; replaced
        # wholesale on remeasurement.
        self._map_outcomes: List[RoutingOutcome] = list(self._stale_outcomes)
        # Ground truth the traffic is generated against; diverges from
        # the maps when churn strikes.
        self._truth_outcomes: List[RoutingOutcome] = list(self._stale_outcomes)
        self.universe = self._stale_outcomes[0].covered_ases

        candidates = sorted(
            self.testbed.topology.stubs or self.testbed.graph.ases
        )
        self.placement = make_placement(
            self.scenario.distribution,
            candidates,
            self.scenario.num_sources,
            random.Random(self.scenario.seed + 1),
        )

        self.clock = SimClock()
        self.queue = BoundedIngestQueue(
            self.scenario.queue_capacity, self.scenario.drop_policy
        )
        self.window = DecayingVolumeWindow(self.scenario.half_life_windows)
        self.attributor = LiveAttributor(
            self.universe, solve_stride=self.scenario.nnls_stride
        )
        policy = ControllerPolicy(
            adaptive=self.scenario.adaptive,
            strategy=self.scenario.strategy,
            strategy_seed=self.scenario.seed,
            min_configs=min(self.scenario.min_configs, len(self.schedule)),
            stop_entropy=self.scenario.stop_entropy,
            stop_volume_share=self.scenario.stop_volume_share,
            churn_remeasure_threshold=self.scenario.churn_remeasure_threshold,
        )
        self.controller = AdaptiveController(
            self.schedule,
            [self._restrict(o.catchments) for o in self._stale_outcomes],
            self.timeline,
            policy,
            registry=self.obs.registry,
            bus=self.obs.bus,
        )

        self.event_log: List[Event] = []
        self.window_stats: List[WindowStats] = []
        self.steps: List[StepStats] = []
        self.deployed: List[int] = []
        self.churn_log: List[Dict] = []
        self.unattributed_volume = 0.0
        self.window_index = 0
        self.stop_reason = ""
        self._active_index: Optional[int] = None
        self._windows_left = 0
        self._churn_cursor = 0
        self._last_churn: Optional[Dict] = None
        self._maps_fresh = True
        self._finished = False
        self._engine_baseline = EngineStats()
        self._checkpoint_ordinal = 0
        self.checkpoint_corruptions = 0
        self.restored_via_rollback = False
        #: Rotation retention for saves (runtime configuration, like
        #: ``workers`` — never serialized, so checkpoint bytes are
        #: independent of how many generations the operator keeps).
        self.checkpoint_keep = 1
        #: Original document version when this service was restored
        #: through a schema migration (None otherwise).
        self.checkpoint_migrated_from: Optional[int] = None
        self._metrics_exported = False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _restrict(
        self, catchments: Mapping[LinkId, Catchment]
    ) -> Dict[LinkId, Catchment]:
        return {
            link: frozenset(members) & self.universe
            for link, members in catchments.items()
        }

    def close(self) -> None:
        """Release the simulation engine's worker pool.

        A shared engine (one passed in by the fleet runtime) is left
        running — its owner closes it once every sibling shard is done.
        """
        if self._owns_engine:
            self.engine.close()

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True once the replay reached a stop condition."""
        return self._finished

    def finish(self, reason: str) -> None:
        """Stop the replay after the current state (operator drain).

        The next :meth:`step` (or :meth:`run`) observes the stop and the
        final report carries ``reason`` as its stop reason.  Idempotent:
        a replay that already stopped keeps its original reason.
        """
        if not self._finished:
            self.stop_reason = reason
            self._finished = True

    def step(
        self, on_window: Optional[Callable[[WindowStats], None]] = None
    ) -> bool:
        """Advance the replay by one scheduling unit; True while unfinished.

        A unit is either one configuration activation, one observation
        window, or the trailing dwell slack of a configuration.  Calling
        ``step()`` until it returns False is exactly :meth:`run` — the
        fleet runtime interleaves the units of many shards through this
        API, and per-shard results are identical because shards share no
        mutable state.
        """
        if self._finished:
            return False
        if self._active_index is None:
            reason = self.controller.should_stop(self.attributor)
            if reason is not None:
                self.stop_reason = reason
                self._finished = True
                return False
            index = self.controller.select_next(self.attributor)
            if index is None:
                self.stop_reason = "schedule exhausted"
                self._finished = True
                return False
            self._activate(index)
            return True
        if self._windows_left > 0:
            self._run_window(on_window)
            return True
        # Dwell not covered by observation windows (convergence wait,
        # probing slack) still passes on the clock.
        windows = self.timeline.windows_per_config(
            self.scenario.window_minutes
        )
        self.clock.advance(
            max(
                0.0,
                self.timeline.minutes_per_config
                - windows * self.scenario.window_minutes,
            )
        )
        self._active_index = None
        return True

    def run(
        self, on_window: Optional[Callable[[WindowStats], None]] = None
    ) -> LiveReport:
        """Drive the replay to completion (idempotent once finished).

        Args:
            on_window: called with each window's :class:`WindowStats` as
                it is emitted (rolling progress for CLIs).
        """
        while self.step(on_window):
            pass
        return self.report()

    def _activate(self, index: int) -> None:
        config = self.schedule[index]
        self.event_log.append(
            ConfigApplied(
                timestamp=self.clock.now,
                config=config,
                catchments=self.controller.catchment_maps[index],
                schedule_index=index,
            )
        )
        self.attributor.apply_config(
            config, self.controller.catchment_maps[index]
        )
        self.deployed.append(index)
        self._active_index = index
        self._windows_left = self.timeline.windows_per_config(
            self.scenario.window_minutes
        )
        state = self.attributor.state
        self.steps.append(
            StepStats(
                config_label=config.label or config.describe(),
                phase=config.phase,
                num_clusters=state.num_clusters(),
                mean_cluster_size=state.mean_size(),
                p90_cluster_size=state.size_percentile(90.0),
            )
        )

    def _run_window(
        self, on_window: Optional[Callable[[WindowStats], None]] = None
    ) -> None:
        scenario = self.scenario
        index = self._active_index
        if index is None:
            raise LiveServiceError("window ran without an active configuration")
        window_start = time.perf_counter()

        # Scheduled route churn strikes before this window's traffic.
        while (
            self._churn_cursor < len(scenario.churn_events)
            and scenario.churn_events[self._churn_cursor][0]
            <= self.window_index
        ):
            _, drift = scenario.churn_events[self._churn_cursor]
            self._apply_churn(drift, self._churn_cursor)
            self._churn_cursor += 1

        # Injected churn storms strike on top of the scheduled events.
        # The ordinal offset keeps their churn seeds disjoint from the
        # scheduled events' (scenario.seed + 101 + ordinal).
        if self.injector is not None:
            storm = self.injector.extra_churn(self.window_index)
            if storm is not None:
                self._apply_churn(storm, 10_000 + self.window_index)

        # Producer: the attack keeps sending whether or not we keep up.
        for batch_index in range(scenario.batches_per_window):
            self.queue.offer(self._make_batch(index, batch_index))

        # Consumer: drain whatever survived the bounded queue.
        drained = self.queue.drain()
        combined: Dict[LinkId, float] = {}
        offered = 0.0
        for batch in drained:
            for link, volume in batch.volumes.items():
                combined[link] = combined.get(link, 0.0) + volume
            offered += batch.offered_volume
            self.unattributed_volume += batch.unattributed
        if drained:
            self.attributor.observe(combined, offered)
            self.window.push(combined)

        self.clock.advance(scenario.window_minutes)
        self._windows_left -= 1
        stats = self._window_snapshot(index)
        self.window_stats.append(stats)
        self.window_index += 1
        window_seconds = time.perf_counter() - window_start
        if self.obs.registry is not None:
            self.obs.registry.histogram(
                "repro_live_window_seconds",
                help="wall seconds to process one observation window",
            ).observe(window_seconds)
        if self.obs.bus is not None:
            self.obs.bus.publish(
                "window",
                duration_seconds=round(window_seconds, 6),
                **asdict(stats),
            )
        if on_window is not None:
            on_window(stats)

        if (
            scenario.checkpoint_every > 0
            and self.window_index % scenario.checkpoint_every == 0
        ):
            self.checkpoint(scenario.checkpoint_path)

    def _window_snapshot(self, index: int) -> WindowStats:
        config = self.schedule[index]
        ingest = self.queue.stats
        state = self.attributor.state
        return WindowStats(
            window_index=self.window_index,
            clock_minutes=self.clock.now,
            config_label=config.label or config.describe(),
            schedule_index=index,
            configs_consumed=self.controller.configs_consumed,
            queue_depth=self.queue.depth,
            offered_volume=ingest.offered_volume,
            accepted_volume=ingest.accepted_volume,
            dropped_volume=ingest.dropped_volume,
            unattributed_volume=self.unattributed_volume,
            num_clusters=state.num_clusters(),
            mean_cluster_size=state.mean_size(),
            entropy=self.attributor.attribution_entropy(),
            recent_concentration=self.window.concentration(),
        )

    def _make_batch(self, index: int, batch_index: int) -> PacketBatch:
        scenario = self.scenario
        truth = self._truth_outcomes[index].catchments
        # Injected volume-noise bursts scale the whole batch — attributed
        # and unattributed alike — so conservation survives the noise.
        noise = 1.0
        if self.injector is not None:
            noise = self.injector.volume_noise_factor(
                self.window_index, batch_index
            )
        if scenario.packets_per_window > 0:
            per_batch = max(
                1, scenario.packets_per_window // scenario.batches_per_window
            )
            # Stateless seeding: the batch's traffic depends only on
            # (scenario seed, config, window, batch), never on how much
            # of the run already happened — checkpoints need no RNG state.
            rng = random.Random(
                f"{scenario.seed}|{index}|{self.window_index}|{batch_index}"
            )
            generator = SpoofedTrafficGenerator(self.placement, truth, rng)
            packets = list(generator.packets(per_batch))
            packet_volumes = volumes_from_packets(packets)
            if noise != 1.0:
                packet_volumes = {
                    link: volume * noise
                    for link, volume in packet_volumes.items()
                }
            return PacketBatch(
                timestamp=self.clock.now,
                volumes=packet_volumes,
                packets=len(packets),
            )
        volumes = link_volumes(
            self.placement,
            truth,
            scenario.volume_per_window / scenario.batches_per_window,
        )
        return PacketBatch(
            timestamp=self.clock.now,
            volumes={link: volume * noise for link, volume in volumes.items()},
            unattributed=volumes.unattributed * noise,
        )

    # ------------------------------------------------------------------
    # Churn and remeasurement
    # ------------------------------------------------------------------

    def _apply_churn(self, drift: float, ordinal: int) -> None:
        churn_seed = self.scenario.seed + 101 + ordinal
        self.event_log.append(
            RouteChurn(
                timestamp=self.clock.now, drift=drift, churn_seed=churn_seed
            )
        )
        live_policy = churned_policy(self.testbed.policy, drift, churn_seed)
        live_sim = RoutingSimulator(
            self.testbed.graph, self.testbed.origin, live_policy
        )
        self._truth_outcomes = [live_sim.simulate(c) for c in self.schedule]
        self._last_churn = {
            "window": self.window_index,
            "drift": drift,
            "churn_seed": churn_seed,
        }
        self._maps_fresh = False

        probe = self._active_index if self._active_index is not None else 0
        misplaced = misplaced_fraction(
            self._map_outcomes[probe], self._truth_outcomes[probe], self.universe
        )
        remeasured = False
        if self.controller.needs_remeasure(misplaced):
            self._remeasure()
            remeasured = True
        self.churn_log.append(
            {
                "window": self.window_index,
                "drift": drift,
                "misplaced": misplaced,
                "remeasured": remeasured,
            }
        )
        if self.obs.registry is not None:
            self.obs.registry.counter(
                "repro_live_churn_events_total",
                help="route-churn strikes, by remeasurement decision",
                labels={"remeasured": "yes" if remeasured else "no"},
            ).inc()
        if self.obs.bus is not None:
            self.obs.bus.publish(
                "churn",
                window=self.window_index,
                drift=drift,
                misplaced=round(misplaced, 9),
                remeasured=remeasured,
            )

    def _remeasure(self) -> None:
        """Re-measure every catchment map against the drifted Internet."""
        self._map_outcomes = list(self._truth_outcomes)
        self.controller.apply_remeasurement(
            [self._restrict(o.catchments) for o in self._truth_outcomes],
            deployed_count=len(self.deployed),
        )
        self.attributor.rebuild_catchments(
            [self._truth_outcomes[i].catchments for i in self.deployed]
        )
        self._maps_fresh = True
        # Remeasuring the deployed configurations costs their dwell again.
        self.clock.advance(
            len(self.deployed) * self.timeline.minutes_per_config
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def run_stats(self) -> LiveRunStats:
        """Current runtime counters as a frozen snapshot."""
        ingest = self.queue.stats
        return LiveRunStats(
            windows=self.window_index,
            configs_consumed=self.controller.configs_consumed,
            dwell_minutes=self.controller.dwell_minutes,
            remeasurements=self.controller.remeasurements,
            offered_volume=ingest.offered_volume,
            dropped_volume=ingest.dropped_volume,
            dropped_batches=ingest.dropped_batches,
            unattributed_volume=self.unattributed_volume,
            max_queue_depth=ingest.max_queue_depth,
            final_entropy=self.attributor.attribution_entropy(),
            stop_reason=self.stop_reason or "running",
        )

    def _resilience_report(self) -> Optional[ResilienceReport]:
        """Chaos accounting + invariant checks (None without an injector)."""
        if self.injector is None:
            return None
        monitor = InvariantMonitor()
        ingest = self.queue.stats
        monitor.check_volume_conservation(
            ingest.offered_volume,
            ingest.accepted_volume,
            ingest.dropped_volume,
        )
        monitor.check_partition_coverage(
            self.universe, self.attributor.clusters()
        )
        monitor.check_monotone_refinement(
            [step.num_clusters for step in self.steps]
        )
        return build_resilience_report(
            self.injector,
            monitor=monitor,
            engine_stats=self.engine.stats.copy(),
            checkpoint_corruptions=self.checkpoint_corruptions,
            checkpoint_rollbacks=1 if self.restored_via_rollback else 0,
            circuit_open=self.engine.breaker.open,
        )

    def _export_metrics(self) -> None:
        """Fold whole-run live counters into the registry (once)."""
        registry = self.obs.registry
        if registry is None or self._metrics_exported:
            return
        self._metrics_exported = True
        stats = self.run_stats()
        registry.counter(
            "repro_live_windows_total",
            help="observation windows processed",
        ).inc(stats.windows)
        registry.counter(
            "repro_live_batches_dropped_total",
            help="packet batches dropped by the bounded ingest queue",
        ).inc(stats.dropped_batches)
        registry.gauge(
            "repro_live_dwell_minutes",
            help="total announcement dwell (simulated minutes)",
        ).set(stats.dwell_minutes)
        registry.gauge(
            "repro_live_peak_queue_depth",
            help="peak ingest queue depth",
        ).set(stats.max_queue_depth)
        registry.gauge(
            "repro_live_final_entropy_bits",
            help="final attribution entropy",
        ).set(stats.final_entropy)
        record_engine_stats(registry, self.engine.stats.copy())
        if self.injector is not None:
            record_fault_log(registry, self.injector.log.as_dict())

    def report(self) -> LiveReport:
        """Snapshot everything into a :class:`LiveReport`."""
        if self._finished:
            self._export_metrics()
        return LiveReport(
            scenario=self.scenario,
            universe=self.universe,
            steps=list(self.steps),
            clusters=self.attributor.clusters(),
            catchment_history=[
                dict(obs.catchments) for obs in self.attributor.observations
            ],
            windows=list(self.window_stats),
            ingest=self.queue.stats.copy(),
            run_stats=self.run_stats(),
            localization=self.attributor.attribution(force=True),
            placement=self.placement,
            engine_stats=self.engine.stats.copy(),
            resilience=self._resilience_report(),
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self, path: str) -> str:
        """Persist full service state to ``path`` (JSON).

        Under a fault plan with checkpoint corruption, the freshly
        written document may be deterministically mangled *after* the
        save — the rotated ``<path>.1`` generation stays intact, which
        is exactly the torn-write scenario the loader's rollback covers.
        """
        self.event_log.append(
            CheckpointRequest(timestamp=self.clock.now, path=path)
        )
        ordinal = self._checkpoint_ordinal
        self._checkpoint_ordinal += 1
        result = save_checkpoint(self, path, keep=self.checkpoint_keep)
        corrupted = False
        if self.injector is not None and self.injector.should_corrupt_checkpoint(
            ordinal
        ):
            self.injector.corrupt_file(path, ordinal)
            self.checkpoint_corruptions += 1
            corrupted = True
        if self.obs.bus is not None:
            self.obs.bus.publish(
                "checkpoint",
                ordinal=ordinal,
                window=self.window_index,
                corrupted=corrupted,
            )
        return result

    def as_serializable(self) -> Dict:
        """JSON-safe dump of everything needed to resume this run."""
        if self.spec is None:
            raise LiveServiceError(
                "cannot checkpoint a service built from a spec-less testbed"
            )
        from .. import __version__

        return {
            "version": STATE_VERSION,
            # Regenerated at every save (never restored), so the bytes a
            # resumed service writes are identical to an uninterrupted
            # run's — the envelope records the writer, not the history.
            "written_by": {
                "library": "repro",
                "release": __version__,
                "schema": STATE_VERSION,
            },
            "spec": asdict(self.spec),
            "scenario": asdict(self.scenario),
            "fault_plan": (
                self.injector.plan.as_serializable()
                if self.injector is not None
                else None
            ),
            "fault_log": (
                self.injector.log.as_dict()
                if self.injector is not None
                else None
            ),
            "clock": self.clock.now,
            "controller": self.controller.as_serializable(),
            "attributor": self.attributor.as_serializable(),
            "ingest": {
                "stats": asdict(self.queue.stats),
                "pending": [
                    {
                        "timestamp": batch.timestamp,
                        "volumes": dict(batch.volumes),
                        "unattributed": batch.unattributed,
                        "packets": batch.packets,
                    }
                    for batch in self.queue.pending()
                ],
            },
            "window": self.window.snapshot(),
            "progress": {
                "window_index": self.window_index,
                "active_index": self._active_index,
                "windows_left": self._windows_left,
                "churn_cursor": self._churn_cursor,
                "last_churn": self._last_churn,
                "maps_fresh": self._maps_fresh,
                "finished": self._finished,
                "stop_reason": self.stop_reason,
                "deployed": list(self.deployed),
                "unattributed_volume": self.unattributed_volume,
                "steps": [asdict(step) for step in self.steps],
                "windows": [asdict(stats) for stats in self.window_stats],
                "churn_log": list(self.churn_log),
                "checkpoint_ordinal": self._checkpoint_ordinal,
                "checkpoint_corruptions": self.checkpoint_corruptions,
            },
        }

    @classmethod
    def from_serializable(
        cls,
        payload: Mapping,
        workers: int = 1,
        engine: Optional[SimulationEngine] = None,
        testbed: Optional[Testbed] = None,
        obs: Optional[Observability] = None,
    ) -> "LiveTracebackService":
        """Rebuild a service dumped by :meth:`as_serializable`.

        The testbed, schedule, and stale catchments are re-derived
        deterministically from the spec; only observed state is restored
        from the payload.  ``engine``/``testbed``/``obs`` are runtime
        configuration, not state: the fleet runtime passes its shared
        per-tenant engine and testbed so a resumed shard rides the warm
        cache instead of re-simulating cold.
        """
        spec = _spec_from_payload(payload["spec"])
        scenario = _scenario_from_payload(payload["scenario"])
        plan_payload = payload.get("fault_plan")
        injector = (
            FaultInjector(FaultPlan.from_serializable(plan_payload))
            if plan_payload is not None
            else None
        )
        if injector is not None:
            # Cumulative accounting: measurement/live faults fired before
            # the snapshot stay counted in the resumed run's resilience
            # report.  Engine faults (crash/hang) are NOT carried over:
            # the rebuilt engine re-simulates every site with a cold
            # cache and deterministically re-draws the same decisions,
            # so carrying them would double-count.
            for kind, count in (payload.get("fault_log") or {}).items():
                if kind in (WORKER_CRASH, WORKER_HANG):
                    continue
                injector.log.record(str(kind), int(count))
        service = cls(
            scenario=scenario,
            spec=spec,
            testbed=testbed,
            workers=workers,
            injector=injector,
            obs=obs,
            engine=engine,
        )

        service.clock = SimClock(payload["clock"])
        service.controller.restore(payload["controller"])
        service.attributor = LiveAttributor.from_serializable(
            payload["attributor"], solve_stride=scenario.nnls_stride
        )
        ingest = payload["ingest"]
        service.queue.stats = IngestStats(**ingest["stats"])
        service.queue.restore(
            [
                PacketBatch(
                    timestamp=entry["timestamp"],
                    volumes=dict(entry["volumes"]),
                    unattributed=entry["unattributed"],
                    packets=entry["packets"],
                )
                for entry in ingest["pending"]
            ]
        )
        service.window.restore(payload["window"])

        progress = payload["progress"]
        service.window_index = int(progress["window_index"])
        service._active_index = progress["active_index"]
        service._windows_left = int(progress["windows_left"])
        service._churn_cursor = int(progress["churn_cursor"])
        service._last_churn = progress["last_churn"]
        service._maps_fresh = bool(progress["maps_fresh"])
        service._finished = bool(progress["finished"])
        service.stop_reason = progress["stop_reason"]
        service.deployed = list(progress["deployed"])
        service.unattributed_volume = float(progress["unattributed_volume"])
        service.steps = [StepStats(**step) for step in progress["steps"]]
        service.window_stats = [
            WindowStats(**stats) for stats in progress["windows"]
        ]
        service.churn_log = list(progress["churn_log"])
        service._checkpoint_ordinal = int(
            progress.get("checkpoint_ordinal", 0)
        )
        service.checkpoint_corruptions = int(
            progress.get("checkpoint_corruptions", 0)
        )

        if service._last_churn is not None:
            churn = service._last_churn
            live_policy = churned_policy(
                service.testbed.policy, churn["drift"], churn["churn_seed"]
            )
            live_sim = RoutingSimulator(
                service.testbed.graph, service.testbed.origin, live_policy
            )
            service._truth_outcomes = [
                live_sim.simulate(c) for c in service.schedule
            ]
            if service._maps_fresh:
                service._map_outcomes = list(service._truth_outcomes)
                service.controller.catchment_maps = [
                    service._restrict(o.catchments)
                    for o in service._truth_outcomes
                ]
        return service


def _spec_from_payload(payload: Mapping) -> TestbedSpec:
    data = dict(payload)
    if data.get("topology_params"):
        params = dict(data["topology_params"])
        for key in ("transit_provider_choices", "stub_provider_choices"):
            if key in params:
                params[key] = tuple(params[key])
        data["topology_params"] = TopologyParams(**params)
    if data.get("traceroute_params"):
        data["traceroute_params"] = TracerouteParams(
            **data["traceroute_params"]
        )
    return TestbedSpec(**data)


def _scenario_from_payload(payload: Mapping) -> ReplayScenario:
    data = dict(payload)
    data["churn_events"] = tuple(
        (int(window), float(drift)) for window, drift in data["churn_events"]
    )
    return ReplayScenario(**data)
