"""Online attack-time attribution runtime (``repro.live``).

The batch pipeline (:class:`~repro.core.pipeline.SpoofTracker`) deploys a
whole announcement schedule, then clusters, then attributes — fine for
evaluation, useless *during* an attack.  This package turns the paper's
§V-C operational discussion into a long-running subsystem:

* :mod:`~repro.live.events` — typed events on a monotonic simulated clock,
* :mod:`~repro.live.ingest` — bounded-queue ingestion with decaying
  per-link volume windows and explicit backpressure/drop accounting,
* :mod:`~repro.live.attributor` — incremental clustering + NNLS re-scoring
  as each configuration's catchment arrives,
* :mod:`~repro.live.controller` — adaptive configuration selection that
  honors :class:`~repro.core.timeline.CampaignTimeline` dwell costs and
  reacts to route churn,
* :mod:`~repro.live.checkpoint` — full-state serialize/restore so a killed
  run resumes mid-attack,
* :mod:`~repro.live.service` — the runtime tying them together, plus a
  replay driver feeding generated spoofed traffic through the loop.
"""

from .attributor import LiveAttributor
from .checkpoint import load_checkpoint, save_checkpoint
from .controller import AdaptiveController, ControllerPolicy
from .events import (
    CheckpointRequest,
    ConfigApplied,
    Event,
    PacketBatch,
    RouteChurn,
    SimClock,
)
from .ingest import BoundedIngestQueue, DecayingVolumeWindow, IngestStats
from .service import (
    LiveReport,
    LiveRunStats,
    LiveTracebackService,
    ReplayScenario,
    WindowStats,
)

__all__ = [
    "SimClock",
    "Event",
    "PacketBatch",
    "ConfigApplied",
    "RouteChurn",
    "CheckpointRequest",
    "BoundedIngestQueue",
    "DecayingVolumeWindow",
    "IngestStats",
    "LiveAttributor",
    "AdaptiveController",
    "ControllerPolicy",
    "save_checkpoint",
    "load_checkpoint",
    "LiveTracebackService",
    "ReplayScenario",
    "LiveReport",
    "LiveRunStats",
    "WindowStats",
]
