"""Attack-time control loop: what to announce next, and when to stop.

During an attack every configuration costs real time — a
:class:`~repro.core.timeline.CampaignTimeline` dwell — so the order
matters and so does knowing when more configurations cannot help.  The
controller owns the dwell ledger, stop thresholds, and remeasurement
bookkeeping, and delegates the *selection* decision to a pluggable
:class:`~repro.strategy.TracebackStrategy` (chosen by registry name via
``ControllerPolicy.strategy``; default ``"greedy"``):

* **reorder** — among the remaining configurations, deploy the one the
  strategy proposes; the default greedy plugin maximizes the
  lexicographic ``(weighted cost reduction, split gain)`` score against
  the live attributor's rolling volume estimates (the §VIII volume-aware
  objective, falling back to plain split gain before any volume has been
  attributed — as an explicit tuple component, not a ``* 1e-9`` scaled
  score that float noise could outrank),
* **short-circuit** — stop when no remaining configuration can split
  anything, when attribution entropy collapsed below a threshold, or when
  the top cluster concentrates enough estimated volume,
* **remeasure** — when observed route churn misplaces more than a
  threshold fraction of sources, declare the catchment maps stale and
  charge the dwell cost of re-measuring every deployed configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..bgp.announcement import AnnouncementConfig
from ..core.timeline import CampaignTimeline
from ..errors import LiveServiceError
from ..strategy import TracebackStrategy, make_strategy
from ..types import Catchment, LinkId
from .attributor import LiveAttributor


@dataclass(frozen=True)
class ControllerPolicy:
    """Knobs of the attack-time control loop.

    Attributes:
        adaptive: reorder remaining configurations by expected utility
            (False = deploy in schedule order, the batch behaviour).
        strategy: registry name of the traceback strategy consulted when
            ``adaptive`` (default the paper's greedy; see
            :func:`repro.strategy.available_strategies`).
        strategy_seed: seed handed to the strategy for any internal
            randomness (e.g. the ``random`` baseline's shuffle).
        min_configs: never short-circuit before this many configurations.
        stop_entropy: stop once attribution entropy (bits) falls below
            this (None = never stop on entropy).
        stop_volume_share: stop once the top-ranked cluster holds at
            least this share of the estimated volume *and* is a singleton
            (None = never stop on concentration).
        churn_remeasure_threshold: misplaced-source fraction above which
            a churn event invalidates the stale catchment maps.
    """

    adaptive: bool = True
    strategy: str = "greedy"
    strategy_seed: int = 0
    min_configs: int = 3
    stop_entropy: Optional[float] = None
    stop_volume_share: Optional[float] = None
    churn_remeasure_threshold: float = 0.02

    def __post_init__(self) -> None:
        if self.min_configs < 1:
            raise LiveServiceError("min_configs must be at least 1")
        if self.stop_volume_share is not None and not (
            0.0 < self.stop_volume_share <= 1.0
        ):
            raise LiveServiceError("stop_volume_share must be in (0, 1]")
        if not 0.0 <= self.churn_remeasure_threshold <= 1.0:
            raise LiveServiceError(
                "churn_remeasure_threshold must be in [0, 1]"
            )


class AdaptiveController:
    """Selects the next configuration and accounts campaign dwell time.

    Args:
        schedule: the full (possibly truncated) announcement schedule.
        catchment_maps: pre-measured catchment maps aligned with
            ``schedule``, restricted to the analysis universe — the
            paper's attack-time setting, where catchments were measured
            before the attack and deployment only reads counters.
        timeline: dwell-cost model each deployment is charged against.
        policy: control knobs.
        registry: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            selection and remeasurement decisions are counted as they
            happen (per-phase selection counters, remeasure triggers).
        strategy: a pre-built (unbound) strategy instance; default is
            built from ``policy.strategy`` / ``policy.strategy_seed``
            through the registry.
    """

    def __init__(
        self,
        schedule: Sequence[AnnouncementConfig],
        catchment_maps: Sequence[Mapping[LinkId, Catchment]],
        timeline: Optional[CampaignTimeline] = None,
        policy: Optional[ControllerPolicy] = None,
        registry=None,
        bus=None,
        strategy: Optional[TracebackStrategy] = None,
    ) -> None:
        if len(schedule) != len(catchment_maps):
            raise LiveServiceError(
                f"{len(schedule)} configurations vs "
                f"{len(catchment_maps)} catchment maps"
            )
        if not schedule:
            raise LiveServiceError("controller needs a non-empty schedule")
        self.schedule = list(schedule)
        self.timeline = timeline or CampaignTimeline()
        self.policy = policy or ControllerPolicy()
        self.registry = registry
        self.bus = bus
        self.strategy = strategy if strategy is not None else make_strategy(
            self.policy.strategy, seed=self.policy.strategy_seed
        )
        if not self.strategy.bound:
            self.strategy.bind(catchment_maps, schedule=self.schedule)
        self.configs_consumed = 0
        self.dwell_minutes = 0.0
        self.remeasurements = 0

    # ------------------------------------------------------------------
    # Strategy-backed views
    # ------------------------------------------------------------------

    @property
    def remaining(self) -> List[int]:
        """Schedule indices not yet deployed (owned by the strategy)."""
        return self.strategy.remaining

    @property
    def catchment_maps(self) -> List[Dict[LinkId, Catchment]]:
        """The strategy's working catchment maps, aligned with the schedule."""
        return self.strategy.catchment_maps

    @catchment_maps.setter
    def catchment_maps(
        self, fresh_maps: Sequence[Mapping[LinkId, Catchment]]
    ) -> None:
        self.strategy.update_catchments(fresh_maps)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def select_next(self, attributor: LiveAttributor) -> Optional[int]:
        """Pick, consume, and dwell-charge the next schedule index.

        Returns None when the schedule is exhausted.  Adaptive mode asks
        the strategy (fed the attributor's partition and rolling volume
        estimates); before any volume has been attributed — or when the
        strategy declines to propose — deployment falls back to schedule
        order.  Built-in strategies tie-break toward the lowest schedule
        index, so selection is deterministic.
        """
        if not self.remaining:
            return None
        volume_by_as = None
        if self.policy.adaptive and attributor.configs_applied > 0:
            volume_by_as = attributor.volume_by_as()
            proposed = self.strategy.propose(attributor.state, volume_by_as)
            choice = proposed if proposed is not None else self.remaining[0]
        else:
            choice = self.remaining[0]
        self.strategy.observe(choice, attributor.state, volume_by_as)
        self.configs_consumed += 1
        self.dwell_minutes += self.timeline.minutes_per_config
        if self.registry is not None:
            self.registry.counter(
                "repro_live_configs_selected_total",
                help="configurations selected by the controller, by phase",
                labels={"phase": self.schedule[choice].phase},
            ).inc()
        if self.bus is not None:
            self.bus.publish(
                "select",
                schedule_index=choice,
                phase=self.schedule[choice].phase,
                configs_consumed=self.configs_consumed,
            )
        return choice

    def should_stop(self, attributor: LiveAttributor) -> Optional[str]:
        """Short-circuit reason, or None to keep deploying."""
        if attributor.configs_applied < self.policy.min_configs:
            return None
        if self.remaining:
            # Volume estimates are deliberately not passed here: reading
            # them would force an attribution solve outside the normal
            # window cadence.  Base strategies stop when no remaining
            # configuration splits any cluster; strategy-specific
            # convergence (e.g. a singleton suspect set) surfaces too.
            reason = self.strategy.converged(attributor.state, None)
            if reason is not None:
                return reason
        if self.policy.stop_entropy is not None:
            entropy = attributor.attribution_entropy()
            if attributor.attribution() is not None and (
                entropy <= self.policy.stop_entropy
            ):
                return (
                    f"attribution entropy {entropy:.3f} ≤ "
                    f"{self.policy.stop_entropy:.3f} bits"
                )
        if self.policy.stop_volume_share is not None:
            result = attributor.attribution()
            if result is not None and result.ranked:
                top = result.ranked[0]
                total = sum(c.estimated_volume for c in result.ranked)
                if (
                    total > 0
                    and top.size == 1
                    and top.estimated_volume / total
                    >= self.policy.stop_volume_share
                ):
                    return (
                        f"singleton cluster holds "
                        f"{top.estimated_volume / total:.0%} of estimated volume"
                    )
        return None

    # ------------------------------------------------------------------
    # Churn / remeasurement
    # ------------------------------------------------------------------

    def needs_remeasure(self, misplaced: float) -> bool:
        """Whether a churn event's misplacement invalidates the maps."""
        return misplaced > self.policy.churn_remeasure_threshold

    def apply_remeasurement(
        self,
        fresh_maps: Sequence[Mapping[LinkId, Catchment]],
        deployed_count: int,
    ) -> None:
        """Swap in fresh maps and charge the remeasurement dwell.

        ``fresh_maps`` must cover the whole schedule (deployed and
        remaining); re-measuring the ``deployed_count`` already-active
        configurations costs one dwell each.
        """
        if len(fresh_maps) != len(self.schedule):
            raise LiveServiceError(
                f"{len(fresh_maps)} remeasured maps for "
                f"{len(self.schedule)}-configuration schedule"
            )
        self.strategy.update_catchments(fresh_maps)
        self.remeasurements += 1
        self.dwell_minutes += deployed_count * self.timeline.minutes_per_config
        if self.registry is not None:
            self.registry.counter(
                "repro_live_remeasurements_total",
                help="full catchment remeasurements triggered by churn",
            ).inc()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def as_serializable(self) -> Dict:
        """JSON-safe dump of the controller's mutable state."""
        return {
            "remaining": list(self.remaining),
            "configs_consumed": self.configs_consumed,
            "dwell_minutes": self.dwell_minutes,
            "remeasurements": self.remeasurements,
            "strategy_state": self.strategy.extra_state(),
        }

    def restore(self, payload: Mapping) -> None:
        """Restore mutable state dumped by :meth:`as_serializable`.

        ``strategy_state`` is optional so pre-strategy (schema v1/v2)
        checkpoints restore cleanly with default strategy beliefs.
        """
        self.strategy.restore_remaining(payload["remaining"])
        self.strategy.restore_extra(payload.get("strategy_state") or {})
        self.configs_consumed = int(payload["configs_consumed"])
        self.dwell_minutes = float(payload["dwell_minutes"])
        self.remeasurements = int(payload["remeasurements"])
