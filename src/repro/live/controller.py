"""Attack-time control loop: what to announce next, and when to stop.

During an attack every configuration costs real time — a
:class:`~repro.core.timeline.CampaignTimeline` dwell — so the order
matters and so does knowing when more configurations cannot help.  The
controller drives the scheduler adaptively:

* **reorder** — among the remaining configurations, deploy the one whose
  catchments most reduce the volume-weighted cluster cost (the §VIII
  volume-aware objective, fed by the live attributor's rolling estimates;
  falls back to plain split gain before any volume has been attributed),
* **short-circuit** — stop when no remaining configuration can split
  anything, when attribution entropy collapsed below a threshold, or when
  the top cluster concentrates enough estimated volume,
* **remeasure** — when observed route churn misplaces more than a
  threshold fraction of sources, declare the catchment maps stale and
  charge the dwell cost of re-measuring every deployed configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..bgp.announcement import AnnouncementConfig
from ..core.clustering import ClusterState
from ..core.scheduler import refinement_gain
from ..core.timeline import CampaignTimeline
from ..errors import LiveServiceError
from ..types import ASN, Catchment, LinkId
from .attributor import LiveAttributor


@dataclass(frozen=True)
class ControllerPolicy:
    """Knobs of the attack-time control loop.

    Attributes:
        adaptive: reorder remaining configurations by expected utility
            (False = deploy in schedule order, the batch behaviour).
        min_configs: never short-circuit before this many configurations.
        stop_entropy: stop once attribution entropy (bits) falls below
            this (None = never stop on entropy).
        stop_volume_share: stop once the top-ranked cluster holds at
            least this share of the estimated volume *and* is a singleton
            (None = never stop on concentration).
        churn_remeasure_threshold: misplaced-source fraction above which
            a churn event invalidates the stale catchment maps.
    """

    adaptive: bool = True
    min_configs: int = 3
    stop_entropy: Optional[float] = None
    stop_volume_share: Optional[float] = None
    churn_remeasure_threshold: float = 0.02

    def __post_init__(self) -> None:
        if self.min_configs < 1:
            raise LiveServiceError("min_configs must be at least 1")
        if self.stop_volume_share is not None and not (
            0.0 < self.stop_volume_share <= 1.0
        ):
            raise LiveServiceError("stop_volume_share must be in (0, 1]")
        if not 0.0 <= self.churn_remeasure_threshold <= 1.0:
            raise LiveServiceError(
                "churn_remeasure_threshold must be in [0, 1]"
            )


class AdaptiveController:
    """Selects the next configuration and accounts campaign dwell time.

    Args:
        schedule: the full (possibly truncated) announcement schedule.
        catchment_maps: pre-measured catchment maps aligned with
            ``schedule``, restricted to the analysis universe — the
            paper's attack-time setting, where catchments were measured
            before the attack and deployment only reads counters.
        timeline: dwell-cost model each deployment is charged against.
        policy: control knobs.
        registry: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            selection and remeasurement decisions are counted as they
            happen (per-phase selection counters, remeasure triggers).
    """

    def __init__(
        self,
        schedule: Sequence[AnnouncementConfig],
        catchment_maps: Sequence[Mapping[LinkId, Catchment]],
        timeline: Optional[CampaignTimeline] = None,
        policy: Optional[ControllerPolicy] = None,
        registry=None,
        bus=None,
    ) -> None:
        if len(schedule) != len(catchment_maps):
            raise LiveServiceError(
                f"{len(schedule)} configurations vs "
                f"{len(catchment_maps)} catchment maps"
            )
        if not schedule:
            raise LiveServiceError("controller needs a non-empty schedule")
        self.schedule = list(schedule)
        self.catchment_maps = [dict(maps) for maps in catchment_maps]
        self.timeline = timeline or CampaignTimeline()
        self.policy = policy or ControllerPolicy()
        self.registry = registry
        self.bus = bus
        self.remaining: List[int] = list(range(len(self.schedule)))
        self.configs_consumed = 0
        self.dwell_minutes = 0.0
        self.remeasurements = 0

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def _weighted_cost(
        self, state: ClusterState, volume_by_as: Mapping[ASN, float]
    ) -> float:
        """Σ over clusters of estimated cluster volume × cluster size."""
        cost = 0.0
        for cluster in state.clusters():
            volume = sum(volume_by_as.get(asn, 0.0) for asn in cluster)
            cost += volume * len(cluster)
        return cost

    def _score(
        self,
        state: ClusterState,
        index: int,
        volume_by_as: Mapping[ASN, float],
    ) -> float:
        """Utility of deploying ``index`` next against ``state``."""
        catchments = self.catchment_maps[index]
        if volume_by_as:
            working = state.copy()
            before = self._weighted_cost(working, volume_by_as)
            working.refine_with_catchments(catchments)
            reduction = before - self._weighted_cost(working, volume_by_as)
            if reduction > 0:
                return reduction
        # No volume evidence yet (or none of the busy clusters split):
        # fall back to the §V-C unweighted split gain.
        return float(refinement_gain(state, catchments.values())) * 1e-9

    def select_next(self, attributor: LiveAttributor) -> Optional[int]:
        """Pick, consume, and dwell-charge the next schedule index.

        Returns None when the schedule is exhausted.  Selection is
        deterministic: scores tie-break toward the lowest schedule index.
        """
        if not self.remaining:
            return None
        if self.policy.adaptive and attributor.configs_applied > 0:
            volume_by_as = attributor.volume_by_as()
            best_index = None
            best_score = 0.0
            for index in self.remaining:
                score = self._score(attributor.state, index, volume_by_as)
                if score > best_score:
                    best_score = score
                    best_index = index
            choice = best_index if best_index is not None else self.remaining[0]
        else:
            choice = self.remaining[0]
        self.remaining.remove(choice)
        self.configs_consumed += 1
        self.dwell_minutes += self.timeline.minutes_per_config
        if self.registry is not None:
            self.registry.counter(
                "repro_live_configs_selected_total",
                help="configurations selected by the controller, by phase",
                labels={"phase": self.schedule[choice].phase},
            ).inc()
        if self.bus is not None:
            self.bus.publish(
                "select",
                schedule_index=choice,
                phase=self.schedule[choice].phase,
                configs_consumed=self.configs_consumed,
            )
        return choice

    def should_stop(self, attributor: LiveAttributor) -> Optional[str]:
        """Short-circuit reason, or None to keep deploying."""
        if attributor.configs_applied < self.policy.min_configs:
            return None
        if self.remaining and all(
            refinement_gain(attributor.state, self.catchment_maps[i].values())
            == 0
            for i in self.remaining
        ):
            return "no remaining configuration splits any cluster"
        if self.policy.stop_entropy is not None:
            entropy = attributor.attribution_entropy()
            if attributor.attribution() is not None and (
                entropy <= self.policy.stop_entropy
            ):
                return (
                    f"attribution entropy {entropy:.3f} ≤ "
                    f"{self.policy.stop_entropy:.3f} bits"
                )
        if self.policy.stop_volume_share is not None:
            result = attributor.attribution()
            if result is not None and result.ranked:
                top = result.ranked[0]
                total = sum(c.estimated_volume for c in result.ranked)
                if (
                    total > 0
                    and top.size == 1
                    and top.estimated_volume / total
                    >= self.policy.stop_volume_share
                ):
                    return (
                        f"singleton cluster holds "
                        f"{top.estimated_volume / total:.0%} of estimated volume"
                    )
        return None

    # ------------------------------------------------------------------
    # Churn / remeasurement
    # ------------------------------------------------------------------

    def needs_remeasure(self, misplaced: float) -> bool:
        """Whether a churn event's misplacement invalidates the maps."""
        return misplaced > self.policy.churn_remeasure_threshold

    def apply_remeasurement(
        self,
        fresh_maps: Sequence[Mapping[LinkId, Catchment]],
        deployed_count: int,
    ) -> None:
        """Swap in fresh maps and charge the remeasurement dwell.

        ``fresh_maps`` must cover the whole schedule (deployed and
        remaining); re-measuring the ``deployed_count`` already-active
        configurations costs one dwell each.
        """
        if len(fresh_maps) != len(self.schedule):
            raise LiveServiceError(
                f"{len(fresh_maps)} remeasured maps for "
                f"{len(self.schedule)}-configuration schedule"
            )
        self.catchment_maps = [dict(maps) for maps in fresh_maps]
        self.remeasurements += 1
        self.dwell_minutes += deployed_count * self.timeline.minutes_per_config
        if self.registry is not None:
            self.registry.counter(
                "repro_live_remeasurements_total",
                help="full catchment remeasurements triggered by churn",
            ).inc()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def as_serializable(self) -> Dict:
        """JSON-safe dump of the controller's mutable state."""
        return {
            "remaining": list(self.remaining),
            "configs_consumed": self.configs_consumed,
            "dwell_minutes": self.dwell_minutes,
            "remeasurements": self.remeasurements,
        }

    def restore(self, payload: Mapping) -> None:
        """Restore mutable state dumped by :meth:`as_serializable`."""
        self.remaining = list(payload["remaining"])
        self.configs_consumed = int(payload["configs_consumed"])
        self.dwell_minutes = float(payload["dwell_minutes"])
        self.remeasurements = int(payload["remeasurements"])
