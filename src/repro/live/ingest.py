"""Bounded ingestion and decaying volume windows for the live runtime.

During a real attack the honeypot produces observations faster than the
control loop consumes them.  :class:`BoundedIngestQueue` makes that safe:
capacity is fixed, overflow is an explicit *drop* with volume accounting
(never unbounded growth), and the policy — reject the newest batch or
evict the oldest — is deterministic.  :class:`DecayingVolumeWindow` keeps
the "recent" per-link volume picture the controller steers by, decaying
older windows exponentially so a shifting attack shows up quickly.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional

from ..errors import LiveServiceError
from ..types import LinkId
from .events import PacketBatch

#: Queue overflow policies: refuse the incoming batch, or evict the
#: oldest queued batch to make room.
DROP_POLICIES = ("newest", "oldest")


@dataclass
class IngestStats:
    """Backpressure accounting for one ingestion queue.

    Volume conservation holds at all times::

        offered_volume == accepted_volume + dropped_volume

    (and likewise for batch counts), so a replay can report exactly how
    much attack traffic the overloaded consumer never saw.
    """

    offered_batches: int = 0
    accepted_batches: int = 0
    dropped_batches: int = 0
    offered_volume: float = 0.0
    accepted_volume: float = 0.0
    dropped_volume: float = 0.0
    max_queue_depth: int = 0

    def copy(self) -> "IngestStats":
        """Independent snapshot of the counters."""
        return IngestStats(
            offered_batches=self.offered_batches,
            accepted_batches=self.accepted_batches,
            dropped_batches=self.dropped_batches,
            offered_volume=self.offered_volume,
            accepted_volume=self.accepted_volume,
            dropped_volume=self.dropped_volume,
            max_queue_depth=self.max_queue_depth,
        )


class BoundedIngestQueue:
    """Fixed-capacity FIFO of :class:`PacketBatch` with drop accounting.

    Args:
        capacity: maximum queued batches (≥ 1).
        drop_policy: ``"newest"`` rejects the offered batch when full;
            ``"oldest"`` evicts the head to admit the new batch (the
            window then sees the freshest traffic at the cost of history).
    """

    def __init__(self, capacity: int = 64, drop_policy: str = "newest") -> None:
        if capacity < 1:
            raise LiveServiceError("queue capacity must be at least 1")
        if drop_policy not in DROP_POLICIES:
            raise LiveServiceError(
                f"unknown drop policy {drop_policy!r}; expected one of {DROP_POLICIES}"
            )
        self.capacity = capacity
        self.drop_policy = drop_policy
        self.stats = IngestStats()
        self._queue: Deque[PacketBatch] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        """Batches currently queued."""
        return len(self._queue)

    def offer(self, batch: PacketBatch) -> bool:
        """Enqueue a batch; returns False when it (or a victim) was dropped.

        Dropped volume is accounted against the batch that was actually
        discarded — the incoming one under ``"newest"``, the evicted head
        under ``"oldest"`` — so conservation holds either way.
        """
        stats = self.stats
        stats.offered_batches += 1
        stats.offered_volume += batch.offered_volume
        admitted = True
        if len(self._queue) >= self.capacity:
            if self.drop_policy == "newest":
                stats.dropped_batches += 1
                stats.dropped_volume += batch.offered_volume
                return False
            victim = self._queue.popleft()
            stats.dropped_batches += 1
            stats.dropped_volume += victim.offered_volume
            # The victim was once accepted; rebalance so accepted tracks
            # what the consumer can still drain.
            stats.accepted_batches -= 1
            stats.accepted_volume -= victim.offered_volume
            admitted = False
        self._queue.append(batch)
        stats.accepted_batches += 1
        stats.accepted_volume += batch.offered_volume
        stats.max_queue_depth = max(stats.max_queue_depth, len(self._queue))
        return admitted

    def drain(self, max_batches: Optional[int] = None) -> List[PacketBatch]:
        """Dequeue up to ``max_batches`` batches (all, when None)."""
        if max_batches is not None and max_batches < 0:
            raise LiveServiceError("cannot drain a negative number of batches")
        count = len(self._queue) if max_batches is None else min(
            max_batches, len(self._queue)
        )
        return [self._queue.popleft() for _ in range(count)]

    def pending(self) -> List[PacketBatch]:
        """Queued batches, oldest first (for checkpointing; not removed)."""
        return list(self._queue)

    def restore(self, batches: List[PacketBatch]) -> None:
        """Replace queue contents (checkpoint restore path)."""
        if len(batches) > self.capacity:
            raise LiveServiceError("restored queue exceeds capacity")
        self._queue = deque(batches)


class DecayingVolumeWindow:
    """Exponentially decaying per-link volume estimate.

    Each call to :meth:`push` first decays the running totals by one
    half-life step, then adds the new batch volumes, so a link that went
    quiet ``half_life_ticks`` windows ago contributes half its old weight.

    Args:
        half_life_ticks: windows after which an observation's weight
            halves.
    """

    def __init__(self, half_life_ticks: float = 4.0) -> None:
        if half_life_ticks <= 0:
            raise LiveServiceError("half life must be positive")
        self.half_life_ticks = half_life_ticks
        self._decay = math.pow(0.5, 1.0 / half_life_ticks)
        self._volumes: Dict[LinkId, float] = {}

    def push(self, volumes: Mapping[LinkId, float]) -> None:
        """Decay one tick, then add this window's per-link volumes."""
        for link in list(self._volumes):
            self._volumes[link] *= self._decay
        for link, volume in volumes.items():
            self._volumes[link] = self._volumes.get(link, 0.0) + volume

    def snapshot(self) -> Dict[LinkId, float]:
        """Current decayed per-link volumes (copy)."""
        return dict(self._volumes)

    def total(self) -> float:
        """Total decayed volume across links.

        Summed in sorted-key order so the value is bit-identical no
        matter how the dict was populated (a restored checkpoint stores
        keys sorted; live accumulation inserts them in arrival order).
        """
        return sum(self._volumes[link] for link in sorted(self._volumes))

    def concentration(self) -> float:
        """Largest link's share of the decayed volume (0 when empty)."""
        total = self.total()
        if total <= 0:
            return 0.0
        return max(self._volumes.values()) / total

    def restore(self, volumes: Mapping[LinkId, float]) -> None:
        """Replace window contents (checkpoint restore path)."""
        self._volumes = dict(volumes)
