"""Incremental attribution: live clusters + rolling volume re-scoring.

The batch pipeline refines clusters only after the whole schedule ran and
solves the volume system once.  :class:`LiveAttributor` maintains the same
state *online*: each :class:`~repro.live.events.ConfigApplied` event
refines the partition immediately, each accepted observation window
accumulates per-link volume against the configuration that was active,
and :meth:`attribution` re-solves the NNLS system on demand over whatever
has been observed so far.  Because refinement only ever splits clusters,
the rolling partition tightens monotonically; because per-configuration
volumes are normalized by *offered* volume, dropped windows shrink
confidence but never bias the estimates.

Re-solving after every window is wasteful once windows arrive faster than
the estimates meaningfully move: each solve is a full NNLS over every
observed configuration.  The ``solve_stride`` knob batches window-only
updates — the solver runs once per ``solve_stride`` newly accumulated
windows instead of per window, stacking their volume evidence into a
single solve.  Structural changes (a new configuration applied, a
remeasurement) always invalidate the cache, and ``attribution(force=True)``
always reflects everything observed, so final results are identical to
stride 1 — only intermediate reads may lag by up to ``stride - 1``
windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional

from ..bgp.announcement import AnnouncementConfig
from ..core.clustering import ClusterState
from ..core.localization import LocalizationResult, SpoofLocalizer
from ..errors import LiveServiceError
from ..types import ASN, Catchment, LinkId


@dataclass
class ConfigObservations:
    """Volume evidence accumulated while one configuration was active.

    Attributes:
        label: the configuration's display label.
        catchments: its catchment map restricted to the universe.
        volumes: per-link volume summed over accepted windows.
        offered_volume: total volume the sources originated across those
            windows (attributed + unattributed), the normalizer that makes
            rolling estimates comparable to the batch pipeline's
            unit-volume observations.
        windows: accepted observation windows.
    """

    label: str
    catchments: Dict[LinkId, Catchment]
    volumes: Dict[LinkId, float] = field(default_factory=dict)
    offered_volume: float = 0.0
    windows: int = 0

    def normalized_volumes(self) -> Dict[LinkId, float]:
        """Per-link volume fractions of the offered volume."""
        if self.offered_volume <= 0:
            return {link: 0.0 for link in self.catchments}
        volumes = {link: 0.0 for link in self.catchments}
        for link, volume in self.volumes.items():
            volumes[link] = volume / self.offered_volume
        return volumes


class LiveAttributor:
    """Maintains live clusters and re-scores volumes incrementally.

    Args:
        universe: sources under analysis (the paper's §IV-d rule: ASes
            covered by the first anycast configuration).
        solve_stride: NNLS re-solves happen at most once per this many
            newly accumulated windows (1 = re-solve on every read after
            every window, the historical behaviour).  Cluster-structure
            changes always trigger a fresh solve on the next read.
    """

    def __init__(
        self, universe: Iterable[ASN], solve_stride: int = 1
    ) -> None:
        self.universe: FrozenSet[ASN] = frozenset(universe)
        if not self.universe:
            raise LiveServiceError("attributor universe must be non-empty")
        if solve_stride < 1:
            raise LiveServiceError("solve_stride must be at least 1")
        self.solve_stride = solve_stride
        self.state = ClusterState(self.universe)
        self.observations: List[ConfigObservations] = []
        self._cached: Optional[LocalizationResult] = None
        #: Clusters changed (config applied / remeasurement): next read
        #: must re-solve regardless of the stride.
        self._structure_dirty = True
        #: Windows accumulated since the last solve; flushed once it
        #: reaches ``solve_stride``.
        self._pending_windows = 0
        #: Number of NNLS solves actually run (observability for the
        #: stride's effect; deterministic for a given read pattern).
        self.solves = 0

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------

    @property
    def configs_applied(self) -> int:
        """Configurations whose catchments have refined the partition."""
        return len(self.observations)

    def apply_config(
        self,
        config: AnnouncementConfig,
        catchments: Mapping[LinkId, Catchment],
    ) -> int:
        """Refine clusters with a newly available configuration.

        Returns the number of cluster splits the refinement produced.
        Subsequent :meth:`observe` calls accumulate against this
        configuration until the next one is applied.
        """
        restricted = {
            link: frozenset(members) & self.universe
            for link, members in catchments.items()
        }
        splits = self.state.refine_with_catchments(restricted)
        self.observations.append(
            ConfigObservations(
                label=config.label or config.describe(),
                catchments=restricted,
            )
        )
        self._structure_dirty = True
        return splits

    def observe(
        self, volumes: Mapping[LinkId, float], offered_volume: float
    ) -> None:
        """Accumulate one accepted window against the active configuration.

        Raises:
            LiveServiceError: before any configuration was applied.
        """
        if not self.observations:
            raise LiveServiceError(
                "observed traffic before any configuration was applied"
            )
        current = self.observations[-1]
        for link, volume in volumes.items():
            current.volumes[link] = current.volumes.get(link, 0.0) + volume
        current.offered_volume += offered_volume
        current.windows += 1
        self._pending_windows += 1

    # ------------------------------------------------------------------
    # Rolling outputs
    # ------------------------------------------------------------------

    def clusters(self) -> List[FrozenSet[ASN]]:
        """Current partition, largest cluster first."""
        return self.state.clusters()

    def attribution(self, force: bool = False) -> Optional[LocalizationResult]:
        """Re-solve the volume system over everything observed so far.

        Only configurations with at least one accepted window contribute
        rows (a configuration whose every window was dropped carries no
        evidence).  Returns None until some traffic has been observed.

        With ``solve_stride > 1``, window-only updates are batched: the
        cached result is served until ``solve_stride`` new windows have
        accumulated, then one solve stacks them all.  ``force=True``
        (used for final reports) always folds every pending window in.
        """
        if not (
            force
            or self._structure_dirty
            or self._pending_windows >= self.solve_stride
        ):
            return self._cached
        observed = [obs for obs in self.observations if obs.offered_volume > 0]
        if not observed:
            self._cached = None
            self._structure_dirty = False
            self._pending_windows = 0
            return None
        localizer = SpoofLocalizer(
            self.state.clusters(), [obs.catchments for obs in observed]
        )
        self._cached = localizer.localize(
            [obs.normalized_volumes() for obs in observed]
        )
        self._structure_dirty = False
        self._pending_windows = 0
        self.solves += 1
        return self._cached

    def attribution_entropy(self) -> float:
        """Shannon entropy (bits) of the estimated cluster-volume shares.

        High entropy = volume spread over many clusters (we know little);
        0.0 = all estimated volume in one cluster, or nothing observed
        yet.  The controller short-circuits on low entropy.
        """
        result = self.attribution()
        if result is None:
            return 0.0
        shares = [
            cluster.estimated_volume
            for cluster in result.ranked
            if cluster.estimated_volume > 0
        ]
        total = sum(shares)
        if total <= 0 or len(shares) < 2:
            return 0.0
        return -sum(
            (share / total) * math.log2(share / total) for share in shares
        )

    def volume_by_as(self) -> Dict[ASN, float]:
        """Estimated per-AS volume: each cluster's estimate spread evenly.

        This is the weighting the volume-aware controller uses to decide
        which clusters are worth splitting next.
        """
        result = self.attribution()
        estimates: Dict[ASN, float] = {}
        if result is None:
            return estimates
        for cluster in result.ranked:
            if cluster.estimated_volume <= 0:
                continue
            share = cluster.estimated_volume / cluster.size
            for asn in cluster.members:
                estimates[asn] = share
        return estimates

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def rebuild_catchments(
        self, histories: List[Mapping[LinkId, Catchment]]
    ) -> None:
        """Swap in fresh catchment maps after a remeasurement.

        The partition is recomputed from scratch over the new maps while
        every volume observation is kept — the evidence was real, only the
        stale maps it was interpreted against changed.

        Raises:
            LiveServiceError: when map count disagrees with the number of
                applied configurations.
        """
        if len(histories) != len(self.observations):
            raise LiveServiceError(
                f"{len(histories)} remeasured maps for "
                f"{len(self.observations)} applied configurations"
            )
        self.state = ClusterState(self.universe)
        for obs, catchments in zip(self.observations, histories):
            restricted = {
                link: frozenset(members) & self.universe
                for link, members in catchments.items()
            }
            obs.catchments = restricted
            self.state.refine_with_catchments(restricted)
        self._structure_dirty = True

    def as_serializable(self) -> Dict:
        """JSON-safe dump of the attributor's full state."""
        return {
            "universe": sorted(self.universe),
            "clusters": self.state.as_serializable(),
            "observations": [
                {
                    "label": obs.label,
                    "catchments": {
                        link: sorted(members)
                        for link, members in sorted(obs.catchments.items())
                    },
                    "volumes": {
                        link: volume
                        for link, volume in sorted(obs.volumes.items())
                    },
                    "offered_volume": obs.offered_volume,
                    "windows": obs.windows,
                }
                for obs in self.observations
            ],
        }

    @classmethod
    def from_serializable(
        cls, payload: Mapping, solve_stride: int = 1
    ) -> "LiveAttributor":
        """Rebuild an attributor dumped by :meth:`as_serializable`."""
        attributor = cls(payload["universe"], solve_stride=solve_stride)
        attributor.state = ClusterState.from_serializable(payload["clusters"])
        for entry in payload["observations"]:
            attributor.observations.append(
                ConfigObservations(
                    label=entry["label"],
                    catchments={
                        link: frozenset(members)
                        for link, members in entry["catchments"].items()
                    },
                    volumes=dict(entry["volumes"]),
                    offered_volume=entry["offered_volume"],
                    windows=entry["windows"],
                )
            )
        return attributor
