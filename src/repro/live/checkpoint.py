"""Serialize/restore the full live-service state for mid-attack resume.

A checkpoint is a single JSON document.  Derivable state — topology,
routing, schedule, stale catchment maps — is *not* stored: it is rebuilt
deterministically from the embedded :class:`~repro.core.pipeline.TestbedSpec`
on load.  Only observed state travels: the clock, controller and
attributor progress, pending ingest batches with their drop accounting,
the decaying volume window, and the per-window statistics emitted so far.
Traffic uses stateless per-window seeding, so no PRNG state is needed:
a restored run replays the exact windows the killed run would have seen.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from ..errors import LiveServiceError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .service import LiveTracebackService

#: Accepted checkpoint document version.
CHECKPOINT_VERSION = 1


def save_checkpoint(service: "LiveTracebackService", path: str) -> str:
    """Write the service's full state to ``path`` as JSON; returns the path."""
    payload = service.as_serializable()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def load_checkpoint(path: str, workers: int = 1) -> "LiveTracebackService":
    """Rebuild a service from a checkpoint written by :func:`save_checkpoint`.

    Args:
        path: checkpoint JSON path.
        workers: simulation worker processes for the rebuilt engine (the
            worker count is runtime configuration, not state — results
            are identical either way).

    Raises:
        LiveServiceError: on a malformed or version-mismatched document.
    """
    from .service import LiveTracebackService

    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise LiveServiceError(f"cannot read checkpoint {path!r}: {exc}")
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise LiveServiceError(
            f"checkpoint {path!r} has version {version!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    return LiveTracebackService.from_serializable(payload, workers=workers)
