"""Serialize/restore the full live-service state for mid-attack resume.

A checkpoint is a single JSON document.  Derivable state — topology,
routing, schedule, stale catchment maps — is *not* stored: it is rebuilt
deterministically from the embedded :class:`~repro.core.pipeline.TestbedSpec`
on load.  Only observed state travels: the clock, controller and
attributor progress, pending ingest batches with their drop accounting,
the decaying volume window, and the per-window statistics emitted so far.
Traffic uses stateless per-window seeding, so no PRNG state is needed:
a restored run replays the exact windows the killed run would have seen.

**Integrity**: the on-disk document wraps the state payload with a
SHA-256 content checksum, writes are atomic (tmp file + fsync + rename),
and the previous checkpoint is rotated to ``<path>.bak`` first.  A torn
or corrupted write is therefore detected on load and recovery falls back
to the rotated copy; only when *both* documents are damaged does
:func:`load_checkpoint` raise
:class:`~repro.errors.CheckpointCorruptionError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import TYPE_CHECKING, Tuple

from ..errors import CheckpointCorruptionError, LiveServiceError
from ..faults.resilience import atomic_write_text, content_checksum

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .service import LiveTracebackService

#: Accepted checkpoint document version.
CHECKPOINT_VERSION = 1

#: Filename characters kept verbatim by :func:`shard_checkpoint_path`.
_SLUG_UNSAFE = re.compile(r"[^A-Za-z0-9_.-]+")


def backup_path(path: str) -> str:
    """Where :func:`save_checkpoint` rotates the previous checkpoint."""
    return f"{path}.bak"


def shard_checkpoint_path(directory: str, tenant: str, prefix: str) -> str:
    """Collision-proof checkpoint path for one fleet shard.

    Many shards checkpoint under one directory, so the path must be a
    function of the full shard key ``(tenant, prefix)``: the human-
    readable part is a sanitized slug (prefixes contain ``/``), and an
    8-hex digest of the *raw* key guarantees two distinct keys never map
    to the same file even when their slugs collide (``"a/b"`` vs
    ``"a-b"``).
    """
    if not tenant or not prefix:
        raise LiveServiceError("shard checkpoints need a tenant and a prefix")
    slug = "__".join(
        _SLUG_UNSAFE.sub("-", part).strip("-") or "x"
        for part in (tenant, prefix)
    )
    digest = hashlib.sha256(
        f"{tenant}\x00{prefix}".encode("utf-8")
    ).hexdigest()[:8]
    return os.path.join(directory, f"shard-{slug}-{digest}.json")


def _canonical_json(payload) -> str:
    """The canonical encoding the checksum covers."""
    return json.dumps(payload, indent=2, sort_keys=True)


def save_checkpoint(service: "LiveTracebackService", path: str) -> str:
    """Write the service's full state to ``path`` as JSON; returns the path.

    The write is atomic, and an existing checkpoint at ``path`` is rotated
    to ``<path>.bak`` beforehand, so at every instant at least one intact
    checkpoint exists on disk.
    """
    from ..obs import ensure_parent_dir

    payload = service.as_serializable()
    scenario = payload.get("scenario")
    if isinstance(scenario, dict) and scenario.get("checkpoint_path"):
        # Store only the filename: the document must not depend on where
        # it lives (byte-identical checkpoints across directories), and
        # the loader rebinds future checkpoints to wherever it was read
        # from, so a relocated checkpoint keeps working.
        scenario["checkpoint_path"] = os.path.basename(
            str(scenario["checkpoint_path"])
        )
    body = _canonical_json(payload)
    document = {"checksum": content_checksum(body), "payload": payload}
    ensure_parent_dir(path)
    if os.path.exists(path):
        os.replace(path, backup_path(path))
    return atomic_write_text(path, _canonical_json(document))


def _read_payload(path: str) -> Tuple[dict, str]:
    """Load and verify one checkpoint document.

    Returns ``(payload, "")`` on success or ``({}, reason)`` when the
    file is unreadable, malformed, or fails its checksum.  Legacy
    documents (a bare payload without the checksum wrapper) are accepted
    unverified.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return {}, f"cannot read checkpoint {path!r}: {exc}"
    if not isinstance(document, dict):
        return {}, f"checkpoint {path!r} is not a JSON object"
    if "checksum" not in document:
        return document, ""  # legacy bare-payload checkpoint
    payload = document.get("payload")
    if not isinstance(payload, dict):
        return {}, f"checkpoint {path!r} has no payload"
    expected = document["checksum"]
    actual = content_checksum(_canonical_json(payload))
    if actual != expected:
        return {}, (
            f"checkpoint {path!r} failed its integrity check "
            f"(checksum {actual[:12]}… != recorded {str(expected)[:12]}…)"
        )
    return payload, ""


def load_checkpoint(
    path: str,
    workers: int = 1,
    allow_rollback: bool = True,
    engine=None,
    testbed=None,
    obs=None,
) -> "LiveTracebackService":
    """Rebuild a service from a checkpoint written by :func:`save_checkpoint`.

    Args:
        path: checkpoint JSON path.
        workers: simulation worker processes for the rebuilt engine (the
            worker count is runtime configuration, not state — results
            are identical either way).
        allow_rollback: when the primary document is damaged, fall back
            to the rotated ``<path>.bak`` copy; the restored service has
            ``restored_via_rollback`` set so callers can account the
            recovery.
        engine: shared :class:`~repro.core.engine.SimulationEngine` for
            the restored service (fleet resume path; see
            :meth:`~repro.live.service.LiveTracebackService.from_serializable`).
        testbed: pre-built testbed matching the checkpoint's spec.
        obs: observability bundle for the restored service.

    Raises:
        CheckpointCorruptionError: when no intact checkpoint document
            exists at ``path`` (or its backup).
        LiveServiceError: on a version-mismatched document.
    """
    from .service import LiveTracebackService

    payload, reason = _read_payload(path)
    rolled_back = False
    if reason and allow_rollback and os.path.exists(backup_path(path)):
        payload, backup_reason = _read_payload(backup_path(path))
        if backup_reason:
            raise CheckpointCorruptionError(f"{reason}; {backup_reason}")
        rolled_back = True
    elif reason:
        raise CheckpointCorruptionError(reason)
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise LiveServiceError(
            f"checkpoint {path!r} has version {version!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    scenario_payload = payload.get("scenario")
    if isinstance(scenario_payload, dict) and scenario_payload.get(
        "checkpoint_path"
    ):
        # The document stores only a filename; future checkpoints of the
        # restored service go where this one was loaded from.
        scenario_payload["checkpoint_path"] = path
    service = LiveTracebackService.from_serializable(
        payload, workers=workers, engine=engine, testbed=testbed, obs=obs
    )
    service.restored_via_rollback = rolled_back
    return service
