"""Serialize/restore the full live-service state for mid-attack resume.

A checkpoint is a single JSON document.  Derivable state — topology,
routing, schedule, stale catchment maps — is *not* stored: it is rebuilt
deterministically from the embedded :class:`~repro.core.pipeline.TestbedSpec`
on load.  Only observed state travels: the clock, controller and
attributor progress, pending ingest batches with their drop accounting,
the decaying volume window, and the per-window statistics emitted so far.
Traffic uses stateless per-window seeding, so no PRNG state is needed:
a restored run replays the exact windows the killed run would have seen.

**Integrity**: the on-disk document wraps the state payload with a
SHA-256 content checksum, writes are atomic (tmp file + fsync + rename),
and the previous checkpoint is rotated to ``<path>.bak`` first.  A torn
or corrupted write is therefore detected on load and recovery falls back
to the rotated copy; only when *both* documents are damaged does
:func:`load_checkpoint` raise
:class:`~repro.errors.CheckpointCorruptionError`.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Tuple

from ..errors import CheckpointCorruptionError, LiveServiceError
from ..faults.resilience import atomic_write_text, content_checksum

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .service import LiveTracebackService

#: Accepted checkpoint document version.
CHECKPOINT_VERSION = 1


def backup_path(path: str) -> str:
    """Where :func:`save_checkpoint` rotates the previous checkpoint."""
    return f"{path}.bak"


def _canonical_json(payload) -> str:
    """The canonical encoding the checksum covers."""
    return json.dumps(payload, indent=2, sort_keys=True)


def save_checkpoint(service: "LiveTracebackService", path: str) -> str:
    """Write the service's full state to ``path`` as JSON; returns the path.

    The write is atomic, and an existing checkpoint at ``path`` is rotated
    to ``<path>.bak`` beforehand, so at every instant at least one intact
    checkpoint exists on disk.
    """
    from ..obs import ensure_parent_dir

    payload = service.as_serializable()
    body = _canonical_json(payload)
    document = {"checksum": content_checksum(body), "payload": payload}
    ensure_parent_dir(path)
    if os.path.exists(path):
        os.replace(path, backup_path(path))
    return atomic_write_text(path, _canonical_json(document))


def _read_payload(path: str) -> Tuple[dict, str]:
    """Load and verify one checkpoint document.

    Returns ``(payload, "")`` on success or ``({}, reason)`` when the
    file is unreadable, malformed, or fails its checksum.  Legacy
    documents (a bare payload without the checksum wrapper) are accepted
    unverified.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return {}, f"cannot read checkpoint {path!r}: {exc}"
    if not isinstance(document, dict):
        return {}, f"checkpoint {path!r} is not a JSON object"
    if "checksum" not in document:
        return document, ""  # legacy bare-payload checkpoint
    payload = document.get("payload")
    if not isinstance(payload, dict):
        return {}, f"checkpoint {path!r} has no payload"
    expected = document["checksum"]
    actual = content_checksum(_canonical_json(payload))
    if actual != expected:
        return {}, (
            f"checkpoint {path!r} failed its integrity check "
            f"(checksum {actual[:12]}… != recorded {str(expected)[:12]}…)"
        )
    return payload, ""


def load_checkpoint(
    path: str, workers: int = 1, allow_rollback: bool = True
) -> "LiveTracebackService":
    """Rebuild a service from a checkpoint written by :func:`save_checkpoint`.

    Args:
        path: checkpoint JSON path.
        workers: simulation worker processes for the rebuilt engine (the
            worker count is runtime configuration, not state — results
            are identical either way).
        allow_rollback: when the primary document is damaged, fall back
            to the rotated ``<path>.bak`` copy; the restored service has
            ``restored_via_rollback`` set so callers can account the
            recovery.

    Raises:
        CheckpointCorruptionError: when no intact checkpoint document
            exists at ``path`` (or its backup).
        LiveServiceError: on a version-mismatched document.
    """
    from .service import LiveTracebackService

    payload, reason = _read_payload(path)
    rolled_back = False
    if reason and allow_rollback and os.path.exists(backup_path(path)):
        payload, backup_reason = _read_payload(backup_path(path))
        if backup_reason:
            raise CheckpointCorruptionError(f"{reason}; {backup_reason}")
        rolled_back = True
    elif reason:
        raise CheckpointCorruptionError(reason)
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise LiveServiceError(
            f"checkpoint {path!r} has version {version!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    service = LiveTracebackService.from_serializable(payload, workers=workers)
    service.restored_via_rollback = rolled_back
    return service
