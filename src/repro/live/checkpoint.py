"""Serialize/restore the full live-service state for mid-attack resume.

A checkpoint is a single JSON document.  Derivable state — topology,
routing, schedule, stale catchment maps — is *not* stored: it is rebuilt
deterministically from the embedded :class:`~repro.core.pipeline.TestbedSpec`
on load.  Only observed state travels: the clock, controller and
attributor progress, pending ingest batches with their drop accounting,
the decaying volume window, and the per-window statistics emitted so far.
Traffic uses stateless per-window seeding, so no PRNG state is needed:
a restored run replays the exact windows the killed run would have seen.

**Integrity**: the on-disk document wraps the state payload with a
SHA-256 content checksum, writes are atomic (tmp file + fsync + rename),
and previous checkpoints are rotated through bounded generations
``<path>.1 .. <path>.K`` first (``keep=K``, default 1; stale generations
beyond the retention are pruned).  A torn or corrupted write is detected
on load and recovery walks the generations newest-first; only when every
candidate is damaged does :func:`load_checkpoint` raise
:class:`~repro.errors.CheckpointCorruptionError`.

**Versioning**: documents carry a schema ``version`` plus a
``written_by`` envelope naming the writing release.  Old documents load
through the migration registry (:func:`register_migration`): a chain of
pure payload transforms upgrades any historical version to the current
one, so a checkpoint written by release N restores under release N+1 —
version mismatch is recoverable exactly like corruption (fall through to
an older generation) instead of bricking resume.  The soak harness also
*writes* older versions mid-campaign (:func:`writing_version`) to prove
rolling upgrades both directions.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..errors import CheckpointCorruptionError, LiveServiceError
from ..faults.resilience import atomic_write_text, content_checksum

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .service import LiveTracebackService

#: Current checkpoint document version (the version :func:`save_checkpoint`
#: writes by default; older documents load through the migration chain).
CHECKPOINT_VERSION = 2

#: Filename characters kept verbatim by :func:`shard_checkpoint_path`.
_SLUG_UNSAFE = re.compile(r"[^A-Za-z0-9_.-]+")

#: Payload transform applied during an upgrade (or downgrade) step.
Migration = Callable[[dict], dict]

#: ``from_version -> (to_version, transform)`` upgrade steps.  Loading
#: chains these until the payload reaches :data:`CHECKPOINT_VERSION`.
_MIGRATIONS: Dict[int, Tuple[int, Migration]] = {}

#: ``from_version -> (to_version, transform)`` downgrade steps, used by
#: :func:`save_checkpoint` when asked to emit an older version.
_DOWNGRADES: Dict[int, Tuple[int, Migration]] = {}

#: Active write-version override (see :func:`writing_version`).
_WRITE_VERSION: List[Optional[int]] = [None]


def register_migration(
    from_version: int, to_version: int, fn: Migration
) -> None:
    """Register an upgrade step ``from_version -> to_version``.

    Steps must move forward one registry hop at a time; loading chains
    them until the payload reaches :data:`CHECKPOINT_VERSION`.  The
    transform receives the payload dict and returns the upgraded payload
    (it may mutate a copy; it must set ``payload["version"]``).
    """
    if to_version <= from_version:
        raise LiveServiceError(
            f"migrations must move forward ({from_version} -> {to_version})"
        )
    _MIGRATIONS[from_version] = (to_version, fn)


def register_downgrade(
    from_version: int, to_version: int, fn: Migration
) -> None:
    """Register a downgrade step (write-side; see :func:`writing_version`)."""
    if to_version >= from_version:
        raise LiveServiceError(
            f"downgrades must move backward ({from_version} -> {to_version})"
        )
    _DOWNGRADES[from_version] = (to_version, fn)


def migrate_payload(payload: dict) -> Tuple[dict, Optional[int], str]:
    """Upgrade ``payload`` to :data:`CHECKPOINT_VERSION` via the registry.

    Returns ``(payload, migrated_from, reason)``: ``migrated_from`` is
    the original version when a migration ran (None when the document
    was already current), and ``reason`` is non-empty when no migration
    path exists (future versions, gaps in the chain, missing version).
    """
    version = payload.get("version")
    if version == CHECKPOINT_VERSION:
        return payload, None, ""
    if not isinstance(version, int):
        return payload, None, f"checkpoint has no usable version ({version!r})"
    if version > CHECKPOINT_VERSION:
        return payload, None, (
            f"checkpoint version {version} is newer than this build's "
            f"{CHECKPOINT_VERSION}; no downgrade path on load"
        )
    original = version
    current = dict(payload)
    while version != CHECKPOINT_VERSION:
        step = _MIGRATIONS.get(version)
        if step is None:
            return payload, None, (
                f"no migration path from checkpoint version {original} "
                f"(chain stops at {version}; this build reads "
                f"{CHECKPOINT_VERSION})"
            )
        version, fn = step
        current = fn(dict(current))
        current["version"] = version
    return current, original, ""


def _migrate_1_to_2(payload: dict) -> dict:
    """v1 -> v2: introduce the ``written_by`` schema envelope.

    v1 documents predate the envelope; the restored service regenerates
    it at the next save, so the marker injected here is informational
    only and never reaches disk.
    """
    payload["written_by"] = {
        "library": "repro",
        "release": "pre-1.0",
        "schema": 2,
        "migrated_from": 1,
    }
    return payload


def _downgrade_2_to_1(payload: dict) -> dict:
    """v2 -> v1: drop the envelope (byte-identical to a v1-era writer)."""
    payload.pop("written_by", None)
    return payload


register_migration(1, 2, _migrate_1_to_2)
register_downgrade(2, 1, _downgrade_2_to_1)


@contextmanager
def writing_version(version: Optional[int]):
    """Force :func:`save_checkpoint` to emit the given document version.

    The soak harness alternates epochs between the current and previous
    schema to prove a mid-campaign rolling upgrade: every checkpoint
    written inside the context is downgraded through the registered
    downgrade chain before hitting disk.  ``None`` restores the default
    (:data:`CHECKPOINT_VERSION`).  Not thread-safe by design — the soak
    runner drives epochs serially.
    """
    if version is not None and version != CHECKPOINT_VERSION:
        seen = {CHECKPOINT_VERSION}
        current = CHECKPOINT_VERSION
        while current != version:
            step = _DOWNGRADES.get(current)
            if step is None:
                raise LiveServiceError(
                    f"no downgrade path from {CHECKPOINT_VERSION} to {version}"
                )
            current = step[0]
            if current in seen:
                raise LiveServiceError("downgrade chain loops")
            seen.add(current)
    previous = _WRITE_VERSION[0]
    _WRITE_VERSION[0] = version
    try:
        yield
    finally:
        _WRITE_VERSION[0] = previous


def generation_path(path: str, generation: int) -> str:
    """Path of one rotated checkpoint generation (1 = newest backup)."""
    if generation < 1:
        raise LiveServiceError("checkpoint generations start at 1")
    return f"{path}.{generation}"


def backup_path(path: str) -> str:
    """Where :func:`save_checkpoint` rotates the previous checkpoint
    (the newest retained generation, ``<path>.1``)."""
    return generation_path(path, 1)


def _legacy_backup_path(path: str) -> str:
    """Pre-generation rotation target (``<path>.bak``); still honoured
    on load so checkpoints written by older releases keep resuming."""
    return f"{path}.bak"


def rotate_generations(path: str, keep: int = 1) -> None:
    """Rotate ``path`` into bounded generations ``path.1 .. path.keep``.

    The existing primary becomes ``.1``, ``.1`` becomes ``.2``, and so
    on; the generation that falls off the end — plus any stale
    generations beyond the retention and any superseded legacy
    ``.bak`` — is pruned.  No-op when no primary exists yet.
    """
    if keep < 1:
        raise LiveServiceError("checkpoint retention must keep >= 1 copies")
    if os.path.exists(path):
        for generation in range(keep, 1, -1):
            older = generation_path(path, generation - 1)
            if os.path.exists(older):
                os.replace(older, generation_path(path, generation))
        os.replace(path, generation_path(path, 1))
        legacy = _legacy_backup_path(path)
        if os.path.exists(legacy):
            os.remove(legacy)  # superseded by the fresher .1
    stale = keep + 1
    while os.path.exists(generation_path(path, stale)):
        os.remove(generation_path(path, stale))
        stale += 1


def shard_checkpoint_path(directory: str, tenant: str, prefix: str) -> str:
    """Collision-proof checkpoint path for one fleet shard.

    Many shards checkpoint under one directory, so the path must be a
    function of the full shard key ``(tenant, prefix)``: the human-
    readable part is a sanitized slug (prefixes contain ``/``), and an
    8-hex digest of the *raw* key guarantees two distinct keys never map
    to the same file even when their slugs collide (``"a/b"`` vs
    ``"a-b"``).
    """
    if not tenant or not prefix:
        raise LiveServiceError("shard checkpoints need a tenant and a prefix")
    slug = "__".join(
        _SLUG_UNSAFE.sub("-", part).strip("-") or "x"
        for part in (tenant, prefix)
    )
    digest = hashlib.sha256(
        f"{tenant}\x00{prefix}".encode("utf-8")
    ).hexdigest()[:8]
    return os.path.join(directory, f"shard-{slug}-{digest}.json")


def _canonical_json(payload) -> str:
    """The canonical encoding the checksum covers."""
    return json.dumps(payload, indent=2, sort_keys=True)


def save_checkpoint(
    service: "LiveTracebackService",
    path: str,
    version: Optional[int] = None,
    keep: Optional[int] = None,
) -> str:
    """Write the service's full state to ``path`` as JSON; returns the path.

    The write is atomic, and existing checkpoints rotate through bounded
    generations first (``keep``, defaulting to the service's configured
    ``checkpoint_keep``), so at every instant at least one intact
    checkpoint exists on disk.  ``version`` (or an active
    :func:`writing_version` context) selects an older document schema
    via the downgrade chain.
    """
    from ..obs import ensure_parent_dir

    payload = service.as_serializable()
    target = version if version is not None else _WRITE_VERSION[0]
    if target is not None:
        current = int(payload.get("version", CHECKPOINT_VERSION))
        while current != target:
            step = _DOWNGRADES.get(current)
            if step is None:
                raise LiveServiceError(
                    f"no downgrade path from {current} to {target}"
                )
            current, fn = step
            payload = fn(dict(payload))
            payload["version"] = current
    scenario = payload.get("scenario")
    if isinstance(scenario, dict) and scenario.get("checkpoint_path"):
        # Store only the filename: the document must not depend on where
        # it lives (byte-identical checkpoints across directories), and
        # the loader rebinds future checkpoints to wherever it was read
        # from, so a relocated checkpoint keeps working.
        scenario["checkpoint_path"] = os.path.basename(
            str(scenario["checkpoint_path"])
        )
    body = _canonical_json(payload)
    document = {"checksum": content_checksum(body), "payload": payload}
    ensure_parent_dir(path)
    if keep is None:
        keep = int(getattr(service, "checkpoint_keep", 1) or 1)
    rotate_generations(path, keep=keep)
    return atomic_write_text(path, _canonical_json(document))


def _read_payload(path: str) -> Tuple[dict, str]:
    """Load and verify one checkpoint document.

    Returns ``(payload, "")`` on success or ``({}, reason)`` when the
    file is unreadable, malformed, or fails its checksum.  Legacy
    documents (a bare payload without the checksum wrapper) are accepted
    unverified.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return {}, f"cannot read checkpoint {path!r}: {exc}"
    if not isinstance(document, dict):
        return {}, f"checkpoint {path!r} is not a JSON object"
    if "checksum" not in document:
        return document, ""  # legacy bare-payload checkpoint
    payload = document.get("payload")
    if not isinstance(payload, dict):
        return {}, f"checkpoint {path!r} has no payload"
    expected = document["checksum"]
    actual = content_checksum(_canonical_json(payload))
    if actual != expected:
        return {}, (
            f"checkpoint {path!r} failed its integrity check "
            f"(checksum {actual[:12]}… != recorded {str(expected)[:12]}…)"
        )
    return payload, ""


def _candidate_paths(path: str, allow_rollback: bool) -> List[str]:
    """The primary plus every fallback document, newest first."""
    candidates = [path]
    if not allow_rollback:
        return candidates
    generation = 1
    while os.path.exists(generation_path(path, generation)):
        candidates.append(generation_path(path, generation))
        generation += 1
    legacy = _legacy_backup_path(path)
    if os.path.exists(legacy):
        candidates.append(legacy)
    return candidates


def load_checkpoint(
    path: str,
    workers: int = 1,
    allow_rollback: bool = True,
    engine=None,
    testbed=None,
    obs=None,
) -> "LiveTracebackService":
    """Rebuild a service from a checkpoint written by :func:`save_checkpoint`.

    Candidates are tried newest-first: the primary, then every rotated
    generation (``<path>.1`` …), then a legacy ``<path>.bak``.  A
    candidate is rejected — and the next one tried — when it is damaged
    *or* when no migration path upgrades its version; a half-upgraded
    write pair therefore falls back to the older-but-loadable copy
    instead of bricking resume.

    Args:
        path: checkpoint JSON path.
        workers: simulation worker processes for the rebuilt engine (the
            worker count is runtime configuration, not state — results
            are identical either way).
        allow_rollback: when the primary document is unusable, fall back
            to rotated generations; the restored service has
            ``restored_via_rollback`` set so callers can account the
            recovery.
        engine: shared :class:`~repro.core.engine.SimulationEngine` for
            the restored service (fleet resume path; see
            :meth:`~repro.live.service.LiveTracebackService.from_serializable`).
        testbed: pre-built testbed matching the checkpoint's spec.
        obs: observability bundle for the restored service.

    The restored service carries ``checkpoint_migrated_from`` (the
    original document version, or None when it was already current) so
    callers can count migrations.

    Raises:
        CheckpointCorruptionError: when every candidate document is
            damaged (unreadable, malformed, or checksum-failed).
        LiveServiceError: when the only failures are version-related
            (no candidate had a migration path).
    """
    from .service import LiveTracebackService

    payload: Optional[dict] = None
    migrated_from: Optional[int] = None
    loaded_from = path
    reasons: List[str] = []
    saw_damage = False
    for candidate in _candidate_paths(path, allow_rollback):
        doc, reason = _read_payload(candidate)
        if reason:
            saw_damage = True
            reasons.append(reason)
            continue
        doc, original, reason = migrate_payload(doc)
        if reason:
            reasons.append(f"{candidate!r}: {reason}")
            continue
        payload, migrated_from, loaded_from = doc, original, candidate
        break
    if payload is None:
        detail = "; ".join(reasons) or f"no checkpoint at {path!r}"
        if saw_damage:
            raise CheckpointCorruptionError(detail)
        raise LiveServiceError(detail)
    scenario_payload = payload.get("scenario")
    if isinstance(scenario_payload, dict) and scenario_payload.get(
        "checkpoint_path"
    ):
        # The document stores only a filename; future checkpoints of the
        # restored service go where this one was loaded from.
        scenario_payload["checkpoint_path"] = path
    service = LiveTracebackService.from_serializable(
        payload, workers=workers, engine=engine, testbed=testbed, obs=obs
    )
    service.restored_via_rollback = loaded_from != path
    service.checkpoint_migrated_from = migrated_from
    return service
