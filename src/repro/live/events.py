"""Typed events and the simulated clock of the live runtime.

Everything the online service reacts to is an :class:`Event` stamped with
simulated minutes from a :class:`SimClock`.  The clock is monotonic and
advanced explicitly by the service loop (never read from the wall clock),
so replays are deterministic: the same scenario produces the same event
sequence, timestamps included, on any machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..bgp.announcement import AnnouncementConfig
from ..errors import LiveServiceError
from ..types import Catchment, LinkId


class SimClock:
    """Monotonic simulated clock, in minutes.

    Args:
        start: initial time (minutes).
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise LiveServiceError("clock cannot start before zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in minutes."""
        return self._now

    def advance(self, minutes: float) -> float:
        """Move time forward; returns the new time.

        Raises:
            LiveServiceError: on a negative advance (the clock is
                monotonic by construction).
        """
        if minutes < 0:
            raise LiveServiceError("simulated clock cannot move backwards")
        self._now += minutes
        return self._now


@dataclass(frozen=True)
class Event:
    """Base event: something that happened at a simulated instant."""

    timestamp: float


@dataclass(frozen=True)
class PacketBatch(Event):
    """One batch of spoofed traffic observed at the origin's links.

    Attributes:
        volumes: per-link spoofed volume delivered during the batch.
        unattributed: volume originated by sources with no route under
            the active configuration (ground-truth accounting; zero in
            packet-sampled batches, where undeliverable packets simply
            never arrive).
        packets: packet count behind the volumes (0 for noiseless
            volume-level batches).
    """

    volumes: Mapping[LinkId, float] = field(default_factory=dict)
    unattributed: float = 0.0
    packets: int = 0

    @property
    def attributed_volume(self) -> float:
        """Volume that arrived on some peering link."""
        return sum(self.volumes.values())

    @property
    def offered_volume(self) -> float:
        """Volume the sources originated (attributed + unattributed)."""
        return self.attributed_volume + self.unattributed


@dataclass(frozen=True)
class ConfigApplied(Event):
    """A configuration's catchments became available to the attributor.

    Attributes:
        config: the deployed announcement configuration.
        catchments: its per-link catchments (full, unrestricted).
        schedule_index: position in the service's schedule.
    """

    config: AnnouncementConfig = None  # type: ignore[assignment]
    catchments: Mapping[LinkId, Catchment] = field(default_factory=dict)
    schedule_index: int = -1

    def __post_init__(self) -> None:
        if self.config is None:
            raise LiveServiceError("ConfigApplied requires a configuration")


@dataclass(frozen=True)
class RouteChurn(Event):
    """Detected route drift: the Internet moved under the stale maps.

    Attributes:
        drift: fraction of ASes whose tie-break state re-resolved (the
            :func:`~repro.core.staleness.churned_policy` parameter).
        churn_seed: distinguishes independent drift samples.
    """

    drift: float = 0.0
    churn_seed: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.drift <= 1.0:
            raise LiveServiceError("drift must be in [0, 1]")


@dataclass(frozen=True)
class CheckpointRequest(Event):
    """Ask the service to persist its full state to ``path``."""

    path: str = ""

    def __post_init__(self) -> None:
        if not self.path:
            raise LiveServiceError("checkpoint request needs a target path")
