"""In-process publish/subscribe event bus for live telemetry.

The bus is the spine of the servable observability surface: the
pipeline, the live runtime, the controller, the engine, and the fault
injector publish small JSON-safe event dicts as they happen, and any
number of subscribers — the SSE ``/events`` endpoint, the SLO
watchdogs, the ASCII dashboard — consume them concurrently.

Determinism follows the repo's counter rule: every *payload field* of a
published event is deterministic data for a seeded scenario, except
fields whose key ends in ``_seconds`` (measured wall times, carried as
data only).  :func:`strip_measured` removes those, so two runs of the
same seeded replay publish byte-identical event sequences once stripped
— the SSE analogue of :func:`~repro.obs.tracing.span_tree_signature`.

Everything is stdlib-only and thread-safe: publishing takes one lock,
fan-out to queue subscribers never blocks the publisher (subscriber
queues are unbounded, history is capped), and synchronous listeners
(the watchdogs) run inline under the publisher's thread.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Dict, Iterator, List, Optional

#: Retained events; older events fall off the replay window.  Large
#: enough for any realistic replay (a 1k-window run publishes ~3k
#: events) while bounding a runaway publisher.
DEFAULT_HISTORY_LIMIT = 10_000

#: Queue sentinel telling subscribers the bus closed.
_CLOSED = object()

Event = Dict[str, object]
Listener = Callable[[Event], None]


def strip_measured(event: Event) -> Event:
    """Copy of ``event`` without measured fields (``*_seconds`` keys).

    What remains is the deterministic layer: two seeded runs of the same
    scenario must publish identical stripped sequences.
    """
    return {
        key: value
        for key, value in event.items()
        if not str(key).endswith("_seconds")
    }


class Subscription:
    """One subscriber's private event queue.

    Iterate it (or call :meth:`get`) to receive events in publish order;
    iteration ends when the bus closes or :meth:`close` is called.
    """

    def __init__(self, bus: "EventBus") -> None:
        self._bus = bus
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._closed = False

    def _offer(self, event) -> None:
        self._queue.put(event)

    def get(self, timeout: Optional[float] = None) -> Optional[Event]:
        """Next event, or None on timeout / closed bus."""
        if self._closed:
            return None
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if item is _CLOSED:
            self._closed = True
            return None
        return item

    def events(self, timeout: Optional[float] = None) -> Iterator[Event]:
        """Yield events until the bus closes (or a ``get`` times out)."""
        while True:
            event = self.get(timeout=timeout)
            if event is None:
                return
            yield event

    def close(self) -> None:
        """Detach from the bus (idempotent)."""
        self._closed = True
        self._bus.unsubscribe(self)


class EventBus:
    """Ordered publish/subscribe fan-out with bounded replayable history.

    Args:
        history_limit: events retained for late subscribers (``replay=True``
            re-delivers them in order before live events).
    """

    def __init__(self, history_limit: int = DEFAULT_HISTORY_LIMIT) -> None:
        if history_limit < 0:
            raise ValueError("history_limit cannot be negative")
        self._lock = threading.Lock()
        self._history: List[Event] = []
        self._history_limit = history_limit
        self._dropped = 0
        self._seq = 0
        self._subscribers: List[Subscription] = []
        self._listeners: List[Listener] = []
        self._closed = False

    # -- publishing -----------------------------------------------------

    def publish(self, kind: str, **payload) -> Event:
        """Publish one event; returns the enriched event dict.

        The bus assigns a monotonically increasing ``seq`` (deterministic
        under the single-threaded publish order every seeded run follows)
        and stamps the ``kind``.
        """
        with self._lock:
            event: Event = {"seq": self._seq, "kind": kind}
            event.update(payload)
            self._seq += 1
            if self._history_limit:
                self._history.append(event)
                if len(self._history) > self._history_limit:
                    del self._history[0]
                    self._dropped += 1
            subscribers = list(self._subscribers)
            listeners = list(self._listeners)
        for subscription in subscribers:
            subscription._offer(event)
        for listener in listeners:
            listener(event)
        return event

    # -- consuming ------------------------------------------------------

    def subscribe(self, replay: bool = True) -> Subscription:
        """New queue subscriber; with ``replay`` the retained history is
        delivered first (in publish order, before any live event)."""
        subscription = Subscription(self)
        with self._lock:
            if replay:
                for event in self._history:
                    subscription._offer(event)
            if self._closed:
                subscription._offer(_CLOSED)
            else:
                self._subscribers.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        with self._lock:
            if subscription in self._subscribers:
                self._subscribers.remove(subscription)

    def attach(self, listener: Listener) -> None:
        """Register a synchronous listener (runs on the publisher's
        thread — keep it cheap; this is how the SLO watchdogs ride)."""
        with self._lock:
            self._listeners.append(listener)

    def detach(self, listener: Listener) -> None:
        """Remove a listener registered with :meth:`attach` (no-op when
        absent).  Long-lived buses outlive individual runtimes — the
        soak harness rebuilds the fleet every restart epoch — so
        consumers must detach on teardown or stale listeners stack up
        and double-count."""
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def history(self) -> List[Event]:
        """Copy of the retained event history (publish order)."""
        with self._lock:
            return list(self._history)

    @property
    def events_published(self) -> int:
        return self._seq

    @property
    def events_dropped(self) -> int:
        """Events that fell off the bounded history window."""
        return self._dropped

    def close(self) -> None:
        """Stop delivery; blocked subscribers wake up and finish."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            subscribers = list(self._subscribers)
            self._subscribers.clear()
        for subscription in subscribers:
            subscription._offer(_CLOSED)
