"""Span-based tracing with deterministic, seed-stable span identities.

A trace is a tree of spans — ``track`` at the root, the five pipeline
phases under it, engine batches and live windows below those.  Span
*identity* follows the :mod:`repro.faults` determinism scheme: a span id
is the SHA-256 digest of ``parent-id | site-name | per-parent ordinal``,
never of the wall clock, so two runs of the same seeded scenario emit
the same tree of ids whether they ran serial or with ``--workers 8``,
today or next year.  Wall-clock durations are still captured (with
:func:`time.perf_counter`) but only as *data* on the span — they never
feed identity, and :func:`span_tree_signature` strips them so trees can
be compared across runs.

Traces export as JSONL, one span per line, closed spans first-finished
first; :func:`load_spans` reads them back and :func:`build_tree`
reassembles the hierarchy.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from contextlib import contextmanager

#: Identity prefix length (hex chars).  64 bits of SHA-256 — collisions
#: within one trace are out of the question at these span counts.
SPAN_ID_HEX = 16


def _derive_id(parent_id: str, name: str, ordinal: int) -> str:
    text = f"{parent_id}|{name}|{ordinal}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:SPAN_ID_HEX]


@dataclass
class Span:
    """One traced operation.

    ``span_id``/``parent_id``/``name``/``attrs`` are deterministic;
    ``duration_seconds`` is measured wall time, recorded as data only.
    """

    span_id: str
    parent_id: str
    name: str
    attrs: Dict[str, object] = field(default_factory=dict)
    duration_seconds: float = 0.0
    _start: float = field(default=0.0, repr=False)
    _child_ordinals: Dict[str, int] = field(default_factory=dict, repr=False)

    def set(self, key: str, value: object) -> None:
        """Attach a (deterministic) attribute to this span."""
        self.attrs[key] = value

    def as_record(self) -> Dict:
        """JSON-safe export form (one JSONL line)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration_seconds": round(self.duration_seconds, 6),
        }


@dataclass(frozen=True)
class TraceContext:
    """Span parentage serialized across a process boundary.

    The multiprocess simulation workers cannot share the main-process
    :class:`Tracer`, but they do not need to: span identity is pure
    structure (parent id | name | ordinal), so a worker only needs the
    parent span id and the run name to mint the *same* child ids the
    serial path would.  The context travels as a plain tuple inside the
    task payload; workers call :meth:`child_record` with ordinals that
    were assigned deterministically before dispatch, ship the records
    back with their results, and the engine grafts them into the main
    tracer via :meth:`Tracer.graft`.
    """

    parent_span_id: str
    run_name: str = "run"

    def as_tuple(self) -> Tuple[str, str]:
        """Pickle-friendly wire form."""
        return (self.parent_span_id, self.run_name)

    @classmethod
    def from_tuple(cls, value: Tuple[str, str]) -> "TraceContext":
        return cls(parent_span_id=value[0], run_name=value[1])

    def child_record(
        self,
        name: str,
        ordinal: int,
        attrs: Optional[Mapping[str, object]] = None,
        duration_seconds: float = 0.0,
    ) -> Dict:
        """A deterministic child span record (JSON-safe, graftable).

        Identity comes from ``(parent id, name, ordinal)`` exactly like
        :meth:`Tracer.span`; the measured duration rides along as data
        only, so the record set is worker-count invariant.
        """
        return {
            "span_id": _derive_id(self.parent_span_id, name, ordinal),
            "parent_id": self.parent_span_id,
            "name": name,
            "attrs": dict(attrs or {}),
            "duration_seconds": round(duration_seconds, 6),
        }


class Tracer:
    """Builds one deterministic span tree per run.

    Args:
        run_name: root identity token; the root span id is the digest of
            ``|root|run_name`` so traces of different subcommands never
            collide.

    The tracer keeps an explicit stack of open spans (``span`` nests);
    the per-parent, per-site ordinal counter makes repeated sites under
    one parent (engine batches, live windows) distinct and stable.
    """

    def __init__(self, run_name: str = "run") -> None:
        self.root = Span(
            span_id=_derive_id("", run_name, 0),
            parent_id="",
            name=run_name,
            _start=time.perf_counter(),
        )
        self._stack: List[Span] = [self.root]
        self.finished: List[Span] = []
        #: Span-closure hooks, called with each closed span's record
        #: (the flight recorder rides here).  Keep them cheap.
        self.listeners: List[Callable[[Dict], None]] = []

    @property
    def current(self) -> Span:
        """The innermost open span (the root when nothing is open)."""
        return self._stack[-1]

    def context(self) -> TraceContext:
        """A :class:`TraceContext` rooted at the current span."""
        return TraceContext(
            parent_span_id=self.current.span_id, run_name=self.root.name
        )

    def _notify(self, span: Span) -> None:
        if self.listeners:
            record = span.as_record()
            for listener in list(self.listeners):
                listener(record)

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a child span of the current span for the ``with`` body.

        The span id derives from the parent id, the site name, and how
        many spans of this name the parent has already opened — pure
        structure, no clock.
        """
        parent = self._stack[-1]
        ordinal = parent._child_ordinals.get(name, 0)
        parent._child_ordinals[name] = ordinal + 1
        span = Span(
            span_id=_derive_id(parent.span_id, name, ordinal),
            parent_id=parent.span_id,
            name=name,
            attrs=dict(attrs),
            _start=time.perf_counter(),
        )
        self._stack.append(span)
        try:
            yield span
        finally:
            span.duration_seconds = time.perf_counter() - span._start
            self._stack.pop()
            self.finished.append(span)
            self._notify(span)

    def finish(self) -> None:
        """Close the root span (idempotent)."""
        if self._stack and self._stack[-1] is self.root:
            self.root.duration_seconds = time.perf_counter() - self.root._start
            self._stack.pop()
            self.finished.append(self.root)
            self._notify(self.root)

    def graft(self, records: Iterable[Mapping]) -> int:
        """Adopt span records minted elsewhere (workers, other processes).

        Records must carry ids derived through the same
        ``parent|name|ordinal`` scheme (see :class:`TraceContext`) so
        the merged tree stays deterministic.  Returns how many spans
        were adopted.
        """
        count = 0
        for record in records:
            span = Span(
                span_id=record["span_id"],
                parent_id=record["parent_id"],
                name=record["name"],
                attrs=dict(record.get("attrs", {})),
                duration_seconds=float(record.get("duration_seconds", 0.0)),
            )
            self.finished.append(span)
            self._notify(span)
            count += 1
        return count

    # -- export ---------------------------------------------------------

    def records(self) -> List[Dict]:
        """Every closed span (root last once :meth:`finish` ran)."""
        return [span.as_record() for span in self.finished]

    def write_jsonl(self, path: str) -> str:
        """Write the trace as JSONL to ``path``; returns the path.

        Closes the root first so the file always holds a full tree.
        """
        from . import ensure_parent_dir

        self.finish()
        ensure_parent_dir(path)
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records():
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        return path


def load_spans(path: str) -> List[Dict]:
    """Read a JSONL trace back into span records."""
    spans: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def build_tree(spans: List[Mapping]) -> Dict[str, List[Mapping]]:
    """Children-by-parent-id index of a span list."""
    tree: Dict[str, List[Mapping]] = {}
    for span in spans:
        tree.setdefault(span["parent_id"], []).append(span)
    for children in tree.values():
        children.sort(key=lambda span: span["span_id"])
    return tree


def span_tree_signature(spans: List[Mapping]) -> str:
    """Canonical digest of a trace's *deterministic* content.

    Strips measured durations and hashes the sorted
    ``(span_id, parent_id, name, attrs)`` tuples — two runs of the same
    seeded scenario must produce the same signature regardless of
    worker count, machine, or clock.
    """
    canonical = sorted(
        json.dumps(
            {
                "span_id": span["span_id"],
                "parent_id": span["parent_id"],
                "name": span["name"],
                "attrs": span.get("attrs", {}),
            },
            sort_keys=True,
        )
        for span in spans
    )
    return hashlib.sha256("\n".join(canonical).encode("utf-8")).hexdigest()


def phase_durations(spans: List[Mapping], parent_id: Optional[str] = None) -> Dict[str, float]:
    """Total measured duration by span name (optionally under one parent)."""
    totals: Dict[str, float] = {}
    for span in spans:
        if parent_id is not None and span["parent_id"] != parent_id:
            continue
        totals[span["name"]] = (
            totals.get(span["name"], 0.0) + span.get("duration_seconds", 0.0)
        )
    return totals
