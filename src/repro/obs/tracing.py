"""Span-based tracing with deterministic, seed-stable span identities.

A trace is a tree of spans — ``track`` at the root, the five pipeline
phases under it, engine batches and live windows below those.  Span
*identity* follows the :mod:`repro.faults` determinism scheme: a span id
is the SHA-256 digest of ``parent-id | site-name | per-parent ordinal``,
never of the wall clock, so two runs of the same seeded scenario emit
the same tree of ids whether they ran serial or with ``--workers 8``,
today or next year.  Wall-clock durations are still captured (with
:func:`time.perf_counter`) but only as *data* on the span — they never
feed identity, and :func:`span_tree_signature` strips them so trees can
be compared across runs.

Traces export as JSONL, one span per line, closed spans first-finished
first; :func:`load_spans` reads them back and :func:`build_tree`
reassembles the hierarchy.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional

from contextlib import contextmanager

#: Identity prefix length (hex chars).  64 bits of SHA-256 — collisions
#: within one trace are out of the question at these span counts.
SPAN_ID_HEX = 16


def _derive_id(parent_id: str, name: str, ordinal: int) -> str:
    text = f"{parent_id}|{name}|{ordinal}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:SPAN_ID_HEX]


@dataclass
class Span:
    """One traced operation.

    ``span_id``/``parent_id``/``name``/``attrs`` are deterministic;
    ``duration_seconds`` is measured wall time, recorded as data only.
    """

    span_id: str
    parent_id: str
    name: str
    attrs: Dict[str, object] = field(default_factory=dict)
    duration_seconds: float = 0.0
    _start: float = field(default=0.0, repr=False)
    _child_ordinals: Dict[str, int] = field(default_factory=dict, repr=False)

    def set(self, key: str, value: object) -> None:
        """Attach a (deterministic) attribute to this span."""
        self.attrs[key] = value

    def as_record(self) -> Dict:
        """JSON-safe export form (one JSONL line)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration_seconds": round(self.duration_seconds, 6),
        }


class Tracer:
    """Builds one deterministic span tree per run.

    Args:
        run_name: root identity token; the root span id is the digest of
            ``|root|run_name`` so traces of different subcommands never
            collide.

    The tracer keeps an explicit stack of open spans (``span`` nests);
    the per-parent, per-site ordinal counter makes repeated sites under
    one parent (engine batches, live windows) distinct and stable.
    """

    def __init__(self, run_name: str = "run") -> None:
        self.root = Span(
            span_id=_derive_id("", run_name, 0),
            parent_id="",
            name=run_name,
            _start=time.perf_counter(),
        )
        self._stack: List[Span] = [self.root]
        self.finished: List[Span] = []

    @property
    def current(self) -> Span:
        """The innermost open span (the root when nothing is open)."""
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a child span of the current span for the ``with`` body.

        The span id derives from the parent id, the site name, and how
        many spans of this name the parent has already opened — pure
        structure, no clock.
        """
        parent = self._stack[-1]
        ordinal = parent._child_ordinals.get(name, 0)
        parent._child_ordinals[name] = ordinal + 1
        span = Span(
            span_id=_derive_id(parent.span_id, name, ordinal),
            parent_id=parent.span_id,
            name=name,
            attrs=dict(attrs),
            _start=time.perf_counter(),
        )
        self._stack.append(span)
        try:
            yield span
        finally:
            span.duration_seconds = time.perf_counter() - span._start
            self._stack.pop()
            self.finished.append(span)

    def finish(self) -> None:
        """Close the root span (idempotent)."""
        if self._stack and self._stack[-1] is self.root:
            self.root.duration_seconds = time.perf_counter() - self.root._start
            self._stack.pop()
            self.finished.append(self.root)

    # -- export ---------------------------------------------------------

    def records(self) -> List[Dict]:
        """Every closed span (root last once :meth:`finish` ran)."""
        return [span.as_record() for span in self.finished]

    def write_jsonl(self, path: str) -> str:
        """Write the trace as JSONL to ``path``; returns the path.

        Closes the root first so the file always holds a full tree.
        """
        from . import ensure_parent_dir

        self.finish()
        ensure_parent_dir(path)
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records():
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        return path


def load_spans(path: str) -> List[Dict]:
    """Read a JSONL trace back into span records."""
    spans: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def build_tree(spans: List[Mapping]) -> Dict[str, List[Mapping]]:
    """Children-by-parent-id index of a span list."""
    tree: Dict[str, List[Mapping]] = {}
    for span in spans:
        tree.setdefault(span["parent_id"], []).append(span)
    for children in tree.values():
        children.sort(key=lambda span: span["span_id"])
    return tree


def span_tree_signature(spans: List[Mapping]) -> str:
    """Canonical digest of a trace's *deterministic* content.

    Strips measured durations and hashes the sorted
    ``(span_id, parent_id, name, attrs)`` tuples — two runs of the same
    seeded scenario must produce the same signature regardless of
    worker count, machine, or clock.
    """
    canonical = sorted(
        json.dumps(
            {
                "span_id": span["span_id"],
                "parent_id": span["parent_id"],
                "name": span["name"],
                "attrs": span.get("attrs", {}),
            },
            sort_keys=True,
        )
        for span in spans
    )
    return hashlib.sha256("\n".join(canonical).encode("utf-8")).hexdigest()


def phase_durations(spans: List[Mapping], parent_id: Optional[str] = None) -> Dict[str, float]:
    """Total measured duration by span name (optionally under one parent)."""
    totals: Dict[str, float] = {}
    for span in spans:
        if parent_id is not None and span["parent_id"] != parent_id:
            continue
        totals[span["name"]] = (
            totals.get(span["name"], 0.0) + span.get("duration_seconds", 0.0)
        )
    return totals
