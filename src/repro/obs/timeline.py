"""Post-mortem timeline forensics: one causally-ordered view per run.

After a crash (or just a confusing run) the evidence is scattered: the
trace JSONL knows the span structure, the event bus knows what happened
in publish order, flight bundles (:mod:`repro.obs.flight`) hold each
shard's last seconds, and the checkpoint directory holds the states that
reached disk.  This module merges all four into one **timeline**: a flat,
deterministic sequence of :class:`TimelineEntry` rows aligned on
*simulated minutes* (the repo's only trustworthy clock) and ordered by
the bus sequence within a minute.

Determinism is the contract: entries carry only the deterministic
projection of their sources (measured ``*_seconds`` stripped, span
durations dropped, no paths or wall times), so :meth:`Timeline.digest`
is a replay invariant — two runs of the same seeded scenario render
byte-identical timelines, which is what lets a timeline diff *localize*
a divergence instead of merely detecting one.

Surfaces: ``spooftrack timeline`` (CLI over on-disk artifacts), the
:class:`~repro.obs.server.ObsServer` ``/timeline`` endpoint (live JSON
view), and ``spooftrack dash --timeline`` (rendered after a watch).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .bus import strip_measured
from .flight import load_flight_dump

#: Sort rank for entries with no simulated-minute alignment (run
#: prologue: spans, setup events) — they sort before minute 0.
_UNALIGNED = -1.0

#: Sort rank for entries with no bus sequence (flight/checkpoint rows
#: land after every sequenced event of their minute).
_NO_SEQ = 1 << 60

#: ``shard-<tenant>__<prefix>-<digest8>.json`` (and rotated ``.N``)
#: checkpoint filenames, as written by ``shard_checkpoint_path``.
_SHARD_FILE = re.compile(
    r"^shard-(?P<tenant>.+?)__(?P<prefix>.+)-[0-9a-f]{8}\.json"
    r"(?:\.(?P<generation>\d+))?$"
)

#: Payload fields that align an event on the simulated clock, in
#: preference order.
_MINUTE_FIELDS = ("clock_minutes", "minute", "timestamp")


def _event_minute(event: Mapping) -> Optional[float]:
    """Simulated-minute alignment of one bus event (None = unaligned)."""
    for key in _MINUTE_FIELDS:
        value = event.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    return None


@dataclass(frozen=True)
class TimelineEntry:
    """One row of the merged forensic timeline.

    Attributes:
        minute: simulated-minute alignment (None = run prologue /
            unaligned source; sorts before minute 0).
        seq: bus sequence number when the row came from (or through) the
            event bus; None rows sort after sequenced rows of the same
            minute.
        source: where the row came from: ``bus``, ``trace``, ``flight``,
            or ``checkpoint``.
        kind: row type within the source (bus event kind, ``span``,
            flight ``dump``/ring-entry kind, ``checkpoint``).
        tenant: owning tenant ("" for untagged rows).
        shard: owning shard label ``tenant/prefix`` ("" for fleet-wide
            rows).
        label: one-line human summary.
        detail: the deterministic payload projection (JSON-safe).
    """

    minute: Optional[float]
    seq: Optional[int]
    source: str
    kind: str
    tenant: str = ""
    shard: str = ""
    label: str = ""
    detail: Dict[str, object] = field(default_factory=dict)

    def sort_key(self):
        canonical = json.dumps(self.detail, sort_keys=True, default=str)
        return (
            self.minute if self.minute is not None else _UNALIGNED,
            self.seq if self.seq is not None else _NO_SEQ,
            self.source,
            self.kind,
            self.shard,
            self.label,
            canonical,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "minute": (
                round(self.minute, 6) if self.minute is not None else None
            ),
            "seq": self.seq,
            "source": self.source,
            "kind": self.kind,
            "tenant": self.tenant,
            "shard": self.shard,
            "label": self.label,
            "detail": self.detail,
        }


class Timeline:
    """An ordered, filterable, digestible set of timeline entries."""

    def __init__(self, entries: Iterable[TimelineEntry] = ()) -> None:
        self.entries: List[TimelineEntry] = sorted(
            entries, key=TimelineEntry.sort_key
        )

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def filtered(
        self,
        tenant: str = "",
        shard: str = "",
        since: Optional[float] = None,
    ) -> "Timeline":
        """A narrowed copy.

        ``tenant`` keeps only rows tagged with that tenant; ``shard``
        matches as a substring of the shard label (so ``--shard
        198.18.2.8`` works without the mask); ``since`` keeps rows at or
        after that simulated minute — which drops unaligned prologue
        rows, deliberately: "from minute X" is a statement about the
        simulated clock.
        """
        kept = []
        for entry in self.entries:
            if tenant and entry.tenant != tenant:
                continue
            if shard and shard not in entry.shard:
                continue
            if since is not None and (
                entry.minute is None or entry.minute < since
            ):
                continue
            kept.append(entry)
        return Timeline(kept)

    def digest(self) -> str:
        """SHA-256 over the canonical entry list — the replay invariant."""
        canonical = json.dumps(
            [entry.as_dict() for entry in self.entries],
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe dump (the ``/timeline`` endpoint body)."""
        return {
            "entries": [entry.as_dict() for entry in self.entries],
            "count": len(self.entries),
            "digest": self.digest(),
        }

    def render(self, limit: int = 0) -> str:
        """Fixed-width terminal rendering, one row per entry.

        ``limit`` keeps only the last N rows (0 = everything); the
        header always states totals so truncation is visible.
        """
        shown = self.entries[-limit:] if limit > 0 else self.entries
        header = (
            f"{'minute':>10}  {'seq':>6}  {'source':<10} {'kind':<16} "
            f"{'shard':<28} detail"
        )
        lines = [
            f"timeline: {len(self.entries)} entries"
            + (f" (showing last {len(shown)})" if limit > 0 else "")
            + f", digest {self.digest()[:16]}",
            header,
            "-" * len(header),
        ]
        for entry in shown:
            minute = (
                f"{entry.minute:10.1f}" if entry.minute is not None else " " * 9 + "-"
            )
            seq = f"{entry.seq:>6d}" if entry.seq is not None else "     -"
            lines.append(
                f"{minute}  {seq}  {entry.source:<10} {entry.kind:<16} "
                f"{(entry.shard or entry.tenant):<28} {entry.label}"
            )
        return "\n".join(lines)


# -- per-source entry builders ----------------------------------------------


def _bus_label(event: Mapping) -> str:
    kind = str(event.get("kind", ""))
    if kind == "fleet":
        return f"{event.get('action', '?')} -> {event.get('state', '?')}"
    if kind == "window":
        return (
            f"window {event.get('window_index', '?')} "
            f"(queue {event.get('queue_depth', '?')})"
        )
    if kind == "phase":
        return str(event.get("name", ""))
    if kind == "fault":
        return f"{event.get('fault_kind', '?')} x{event.get('count', '?')}"
    if kind == "checkpoint":
        return f"ordinal {event.get('ordinal', '?')}"
    if kind == "compare":
        return str(event.get("strategy", ""))
    return ""


def entry_from_bus_event(
    event: Mapping, source: str = "bus"
) -> TimelineEntry:
    """One timeline row from one (live or flight-recorded) bus event."""
    stripped = strip_measured(dict(event))
    seq = stripped.pop("seq", None)
    kind = str(stripped.pop("kind", ""))
    tenant = str(stripped.get("tenant", "") or "")
    shard = str(stripped.get("attack", "") or "")
    return TimelineEntry(
        minute=_event_minute(event),
        seq=int(seq) if isinstance(seq, int) else None,
        source=source,
        kind=kind,
        tenant=tenant,
        shard=shard,
        label=_bus_label(event),
        detail=stripped,
    )


def entries_from_bus(events: Iterable[Mapping]) -> List[TimelineEntry]:
    """Rows for a bus history (or any stripped-event sequence)."""
    return [entry_from_bus_event(event) for event in events]


def entries_from_spans(
    records: Iterable[Mapping],
) -> List[TimelineEntry]:
    """Rows for trace span records (JSONL lines or ``as_record`` dicts).

    Spans carry no simulated clock, so they form the unaligned prologue,
    kept in file order via the sequence slot (offset so span ordinals
    never collide with bus sequences: both live below minute 0 only when
    the bus row is itself unaligned, which untagged setup events are).
    """
    entries = []
    for index, record in enumerate(records):
        attrs = dict(record.get("attrs", {}))
        entries.append(
            TimelineEntry(
                minute=None,
                seq=index,
                source="trace",
                kind="span",
                label=str(record.get("name", "")),
                detail={
                    "span_id": record.get("span_id", ""),
                    "parent_id": record.get("parent_id", ""),
                    "name": record.get("name", ""),
                    "attrs": attrs,
                },
            )
        )
    return entries


def entries_from_flight_payload(
    payload: Mapping,
) -> List[TimelineEntry]:
    """Rows for one flight bundle: a ``dump`` summary plus its ring.

    Ring entries that captured bus events re-enter the merge as regular
    ``bus``-source rows (with their original sequence numbers), so a
    timeline built offline from bundles alone still shows the event
    stream — and :func:`build_timeline` dedupes them against a live bus
    history by sequence.  Non-bus ring entries (logs, spans, faults,
    metric deltas) keep the ``flight`` source.
    """
    context = dict(payload.get("context", {}))
    tenant = str(context.get("tenant", "") or "")
    shard = str(context.get("shard", "") or context.get("attack", "") or "")
    minute = _event_minute(context)
    entries = [
        TimelineEntry(
            minute=minute,
            seq=None,
            source="flight",
            kind="dump",
            tenant=tenant,
            shard=shard,
            label=(
                f"{payload.get('reason', '?')} "
                f"#{payload.get('ordinal', 0)} "
                f"({len(payload.get('entries', []))} entries)"
            ),
            detail={
                "reason": payload.get("reason", ""),
                "ordinal": payload.get("ordinal", 0),
                "flight": payload.get("flight", ""),
                "context": context,
                "entries_seen": payload.get("entries_seen", 0),
            },
        )
    ]
    for item in payload.get("entries", []):
        kind = item.get("kind")
        if kind == "bus":
            entries.append(
                entry_from_bus_event(item.get("event", {}), source="bus")
            )
            continue
        detail = {
            key: value
            for key, value in item.items()
            if key not in ("kind", "n")
        }
        label = ""
        if kind == "log":
            label = f"[{item.get('level', '?')}] {item.get('msg', '')}"
        elif kind == "span":
            label = str(item.get("name", ""))
        elif kind == "fault":
            label = f"{item.get('fault', '?')} x{item.get('count', '?')}"
        elif kind == "metrics":
            label = f"{len(item.get('delta', {}))} counters moved"
        entries.append(
            TimelineEntry(
                minute=minute,
                seq=None,
                source="flight",
                kind=str(kind),
                tenant=tenant,
                shard=shard,
                label=label,
                detail=detail,
            )
        )
    return entries


def entries_from_flight_dir(directory: str) -> List[TimelineEntry]:
    """Rows for every ``flight-*.json`` bundle under ``directory``."""
    entries: List[TimelineEntry] = []
    if not directory or not os.path.isdir(directory):
        return entries
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("flight-") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        try:
            payload = load_flight_dump(path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            entries.append(
                TimelineEntry(
                    minute=None,
                    seq=None,
                    source="flight",
                    kind="damaged",
                    label=f"{name}: {exc}",
                    detail={"file": name},
                )
            )
            continue
        entries.extend(entries_from_flight_payload(payload))
    return entries


def entries_from_checkpoint_dir(directory: str) -> List[TimelineEntry]:
    """Rows for every shard checkpoint (and rotated generation) on disk.

    Damaged documents become ``damaged`` rows instead of being skipped —
    a post-mortem cares exactly about the checkpoints that did *not*
    survive.
    """
    from ..live.checkpoint import _read_payload

    entries: List[TimelineEntry] = []
    if not directory or not os.path.isdir(directory):
        return entries
    for name in sorted(os.listdir(directory)):
        match = _SHARD_FILE.match(name)
        if match is None:
            continue
        tenant = match.group("tenant")
        shard = f"{tenant}/{match.group('prefix')}"
        generation = int(match.group("generation") or 0)
        payload, reason = _read_payload(os.path.join(directory, name))
        if reason:
            entries.append(
                TimelineEntry(
                    minute=None,
                    seq=None,
                    source="checkpoint",
                    kind="damaged",
                    tenant=tenant,
                    shard=shard,
                    label=f"generation {generation}: unreadable",
                    detail={"file": name, "generation": generation},
                )
            )
            continue
        clock = payload.get("clock")
        minute = float(clock) if isinstance(clock, (int, float)) else None
        entries.append(
            TimelineEntry(
                minute=minute,
                seq=None,
                source="checkpoint",
                kind="checkpoint",
                tenant=tenant,
                shard=shard,
                label=(
                    f"generation {generation}, "
                    f"schema v{payload.get('version', '?')}"
                ),
                detail={
                    "file": name,
                    "generation": generation,
                    "version": payload.get("version"),
                    "clock": minute,
                },
            )
        )
    return entries


# -- merged builders --------------------------------------------------------


def _merge(groups: Sequence[List[TimelineEntry]]) -> Timeline:
    """Merge entry groups, deduping bus rows by sequence number.

    A bus event can arrive twice — once from the live bus history and
    once through a flight bundle's ring — and must appear once; the
    first occurrence (source priority = group order) wins.
    """
    seen_seqs = set()
    merged: List[TimelineEntry] = []
    for group in groups:
        for entry in group:
            if entry.source == "bus" and entry.seq is not None:
                if entry.seq in seen_seqs:
                    continue
                seen_seqs.add(entry.seq)
            merged.append(entry)
    return Timeline(merged)


def build_timeline(
    trace_path: str = "",
    flight_dir: str = "",
    checkpoint_dir: str = "",
    bus_events: Optional[Iterable[Mapping]] = None,
) -> Timeline:
    """The offline (CLI) builder: merge whatever artifacts exist.

    Every source is optional; a missing file or directory contributes
    nothing rather than failing — a post-mortem works with what
    survived.
    """
    groups: List[List[TimelineEntry]] = []
    if bus_events is not None:
        groups.append(entries_from_bus(bus_events))
    if trace_path and os.path.exists(trace_path):
        from .tracing import load_spans

        groups.append(entries_from_spans(load_spans(trace_path)))
    groups.append(entries_from_flight_dir(flight_dir))
    groups.append(entries_from_checkpoint_dir(checkpoint_dir))
    return _merge(groups)


def timeline_from_obs(
    obs,
    flight_dir: str = "",
    checkpoint_dir: str = "",
) -> Timeline:
    """The live builder: an armed bundle's bus history + finished spans,
    plus any on-disk bundles and checkpoints (the ``/timeline`` body)."""
    groups: List[List[TimelineEntry]] = []
    if obs is not None and obs.bus is not None:
        groups.append(entries_from_bus(obs.bus.history()))
    if obs is not None and obs.tracer is not None:
        groups.append(
            entries_from_spans(
                span.as_record() for span in obs.tracer.finished
            )
        )
    groups.append(entries_from_flight_dir(flight_dir))
    groups.append(entries_from_checkpoint_dir(checkpoint_dir))
    return _merge(groups)
