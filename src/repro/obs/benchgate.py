"""Benchmark regression gate over the committed ``BENCH_*.json`` artifacts.

The SAV-deployment study (Korczyński et al., PAPERS.md) runs the same
measurement campaign for years; its value comes from trajectory, which
means regressions must be caught when they land, not when someone
notices.  The benchmark suite already writes one JSON artifact per area
(``benchmarks/BENCH_engine.json`` etc.); this module records a baseline
history of their *measured* metrics (keys ending ``_seconds``) and fails
when a fresh artifact regresses past a configurable tolerance.

Only ``*_seconds`` metrics are gated: they are the wall-time
measurements.  Derived percentages and deterministic counts are carried
in the artifacts for humans but are either redundant or exact, so gating
them would double-count or add noise.

Two refinements keep the gate honest on real timers:

* **Absolute slack** — relative tolerance alone makes sub-millisecond
  baselines (e.g. ``cached_replay_seconds: 0.0003``) flap on scheduler
  noise, and a 0.0 baseline turns *any* positive reading into an
  infinite-ratio regression.  A delta below ``absolute_slack`` seconds
  never regresses, and a zero baseline regresses only when the fresh
  reading itself exceeds the slack.
* **CPU-aware parallel gate** — artifacts that carry both
  ``serial_*_seconds`` and ``parallel*_seconds`` measurements are
  additionally checked for "parallel must not lose to serial", but only
  when the artifact was recorded with at least two cores
  (``cpu_count >= 2``); single-core recordings make the comparison
  meaningless, so it is skipped and the skip is reported.

``spooftrack bench-check`` is the CLI face; CI runs it against the
committed history so a PR that slows any benchmark >15% (default) fails.
"""

from __future__ import annotations

import glob
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Default allowed slowdown before a metric counts as regressed.  Kept
#: below 0.20 so a genuine 20% slowdown always trips the gate.
DEFAULT_TOLERANCE = 0.15

#: Default absolute slack in seconds: deltas below this are timer noise
#: regardless of the relative tolerance.
DEFAULT_ABSOLUTE_SLACK = 0.005

#: Baseline file name inside the benchmarks directory.
HISTORY_BASENAME = "BENCH_history.json"

HISTORY_VERSION = 1

#: ``parallel*_seconds`` metric paired against its serial counterpart,
#: e.g. ``parallel2_cold_seconds`` vs ``serial_cold_seconds``.
_PARALLEL_METRIC = re.compile(r"^parallel\d*_(.+)_seconds$")


def _is_gated_metric(name: str, value) -> bool:
    return (
        name.endswith("_seconds")
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    )


def load_artifact_records(directory: str) -> Dict[str, Dict]:
    """Full JSON records per ``BENCH_*.json`` artifact (history excluded)."""
    records: Dict[str, Dict] = {}
    pattern = os.path.join(directory, "BENCH_*.json")
    for path in sorted(glob.glob(pattern)):
        name = os.path.basename(path)
        if name == HISTORY_BASENAME:
            continue
        with open(path) as handle:
            record = json.load(handle)
        if not isinstance(record, dict):
            continue
        records[name] = record
    return records


def load_artifacts(directory: str) -> Dict[str, Dict[str, float]]:
    """Gated metrics per ``BENCH_*.json`` artifact (history excluded)."""
    return {
        name: {
            key: float(value)
            for key, value in record.items()
            if _is_gated_metric(key, value)
        }
        for name, record in load_artifact_records(directory).items()
    }


def default_history_path(directory: str) -> str:
    return os.path.join(directory, HISTORY_BASENAME)


def load_history(history_path: str) -> Dict[str, Dict[str, float]]:
    """Baseline metrics per artifact from a history file."""
    with open(history_path) as handle:
        payload = json.load(handle)
    if payload.get("version") != HISTORY_VERSION:
        raise ValueError(
            f"unsupported bench history version {payload.get('version')!r}"
        )
    baselines = payload.get("baselines", {})
    return {
        artifact: {key: float(value) for key, value in metrics.items()}
        for artifact, metrics in baselines.items()
    }


def write_history(directory: str, history_path: Optional[str] = None) -> str:
    """Record the current artifacts as the regression baseline."""
    from . import ensure_parent_dir

    path = history_path or default_history_path(directory)
    payload = {
        "version": HISTORY_VERSION,
        "note": "Baselines for `spooftrack bench-check`; regenerate with --update.",
        "baselines": load_artifacts(directory),
    }
    ensure_parent_dir(path)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@dataclass(frozen=True)
class Regression:
    """One gated metric that slowed past tolerance."""

    artifact: str
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    def describe(self) -> str:
        """Human rendering; avoids an ``inf%`` against a zero baseline."""
        if self.baseline > 0:
            change = f"({(self.ratio - 1.0) * 100.0:+.1f}%)"
        else:
            change = f"(+{(self.current - self.baseline) * 1000.0:.2f}ms)"
        return (
            f"{self.artifact}:{self.metric} "
            f"{self.baseline:.6f}s -> {self.current:.6f}s {change}"
        )


@dataclass
class BenchCheckResult:
    """Outcome of one bench-check run."""

    tolerance: float
    absolute_slack: float = DEFAULT_ABSOLUTE_SLACK
    checked: int = 0
    regressions: List[Regression] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    new_metrics: List[str] = field(default_factory=list)
    #: Comparisons that could not be made meaningfully (e.g. the
    #: parallel-vs-serial gate on a single-core recording), with reasons.
    skipped: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.regressions

    def summary_lines(self) -> List[str]:
        lines = [
            f"bench-check: {self.checked} gated metrics, "
            f"tolerance {self.tolerance:.0%}, "
            f"slack {self.absolute_slack * 1000.0:g}ms"
        ]
        for reg in self.regressions:
            lines.append(f"  REGRESSION {reg.describe()}")
        for name in self.missing:
            lines.append(f"  missing from fresh artifacts: {name}")
        for name in self.new_metrics:
            lines.append(f"  new metric (no baseline yet): {name}")
        for reason in self.skipped:
            lines.append(f"  skipped: {reason}")
        lines.append("bench-check: FAIL" if not self.passed else "bench-check: OK")
        return lines


def _regresses(
    baseline: float, value: float, tolerance: float, absolute_slack: float
) -> bool:
    """Regression predicate with the absolute-slack floor.

    * The delta must exceed ``absolute_slack`` seconds — anything smaller
      is timer noise at any ratio (this also covers sub-ms baselines).
    * Past the floor: a positive baseline regresses on the relative
      tolerance; a zero/non-positive baseline (a metric that used to be
      unmeasurably fast) regresses outright — the reading itself already
      exceeds the slack.
    """
    if value - baseline <= absolute_slack:
        return False
    if baseline > 0:
        return value > baseline * (1.0 + tolerance)
    return True


def _check_parallel_vs_serial(
    records: Dict[str, Dict],
    tolerance: float,
    absolute_slack: float,
    result: BenchCheckResult,
) -> None:
    """Gate "parallel must not lose to serial" inside each artifact.

    Pairs every ``parallel*_<case>_seconds`` metric with its
    ``serial_<case>_seconds`` counterpart in the same artifact.  The
    comparison only means something when the artifact was recorded on a
    multi-core machine, so recordings with ``cpu_count < 2`` (or without
    a recorded cpu_count) are skipped, and the skip is surfaced in the
    summary rather than silently passing.
    """
    for artifact, record in sorted(records.items()):
        pairs: List[Tuple[str, str]] = []
        for metric, value in sorted(record.items()):
            if not _is_gated_metric(metric, value):
                continue
            match = _PARALLEL_METRIC.match(metric)
            if match is None:
                continue
            serial_metric = f"serial_{match.group(1)}_seconds"
            if _is_gated_metric(serial_metric, record.get(serial_metric)):
                pairs.append((metric, serial_metric))
        if not pairs:
            continue
        cpu_count = record.get("cpu_count")
        if not isinstance(cpu_count, int) or cpu_count < 2:
            result.skipped.append(
                f"{artifact}: parallel-vs-serial gate "
                f"(recorded with cpu_count={cpu_count!r}; need >= 2 cores)"
            )
            continue
        for metric, serial_metric in pairs:
            result.checked += 1
            serial = float(record[serial_metric])
            parallel = float(record[metric])
            if _regresses(serial, parallel, tolerance, absolute_slack):
                result.regressions.append(
                    Regression(
                        artifact,
                        f"{metric} vs {serial_metric}",
                        serial,
                        parallel,
                    )
                )


def check_benchmarks(
    directory: str,
    history_path: Optional[str] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    absolute_slack: float = DEFAULT_ABSOLUTE_SLACK,
) -> BenchCheckResult:
    """Compare fresh artifacts in ``directory`` against the baseline.

    A metric regresses when it exceeds the baseline by more than
    ``absolute_slack`` seconds *and* ``baseline * (1 + tolerance)`` (a
    zero baseline needs only the slack excess; see :func:`_regresses`).
    Improvements always pass; metrics present only on one side are
    reported but do not fail the gate (new benchmarks must be allowed to
    land, and CI compares committed artifacts against committed history).

    Artifacts exposing paired ``serial_*`` / ``parallel*_*`` timings are
    additionally gated on parallel not losing to serial — skipped, with a
    note, when the artifact was recorded on fewer than two cores.
    """
    if tolerance < 0:
        raise ValueError("tolerance cannot be negative")
    if absolute_slack < 0:
        raise ValueError("absolute_slack cannot be negative")
    path = history_path or default_history_path(directory)
    baselines = load_history(path)
    records = load_artifact_records(directory)
    current = {
        name: {
            key: float(value)
            for key, value in record.items()
            if _is_gated_metric(key, value)
        }
        for name, record in records.items()
    }
    result = BenchCheckResult(
        tolerance=tolerance, absolute_slack=absolute_slack
    )
    for artifact, metrics in sorted(baselines.items()):
        fresh = current.get(artifact)
        if fresh is None:
            result.missing.append(artifact)
            continue
        for metric, baseline in sorted(metrics.items()):
            if metric not in fresh:
                result.missing.append(f"{artifact}:{metric}")
                continue
            result.checked += 1
            value = fresh[metric]
            if _regresses(baseline, value, tolerance, absolute_slack):
                result.regressions.append(
                    Regression(artifact, metric, baseline, value)
                )
    for artifact, metrics in sorted(current.items()):
        known = baselines.get(artifact, {})
        for metric in sorted(metrics):
            if artifact not in baselines:
                result.new_metrics.append(f"{artifact}:{metric}")
            elif metric not in known:
                result.new_metrics.append(f"{artifact}:{metric}")
    _check_parallel_vs_serial(records, tolerance, absolute_slack, result)
    return result
