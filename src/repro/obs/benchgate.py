"""Benchmark regression gate over the committed ``BENCH_*.json`` artifacts.

The SAV-deployment study (Korczyński et al., PAPERS.md) runs the same
measurement campaign for years; its value comes from trajectory, which
means regressions must be caught when they land, not when someone
notices.  The benchmark suite already writes one JSON artifact per area
(``benchmarks/BENCH_engine.json`` etc.); this module records a baseline
history of their *measured* metrics (keys ending ``_seconds``) and fails
when a fresh artifact regresses past a configurable tolerance.

Only ``*_seconds`` metrics are gated: they are the wall-time
measurements.  Derived percentages and deterministic counts are carried
in the artifacts for humans but are either redundant or exact, so gating
them would double-count or add noise.

``spooftrack bench-check`` is the CLI face; CI runs it against the
committed history so a PR that slows any benchmark >15% (default) fails.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Default allowed slowdown before a metric counts as regressed.  Kept
#: below 0.20 so a genuine 20% slowdown always trips the gate.
DEFAULT_TOLERANCE = 0.15

#: Baseline file name inside the benchmarks directory.
HISTORY_BASENAME = "BENCH_history.json"

HISTORY_VERSION = 1


def _is_gated_metric(name: str, value) -> bool:
    return (
        name.endswith("_seconds")
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    )


def load_artifacts(directory: str) -> Dict[str, Dict[str, float]]:
    """Gated metrics per ``BENCH_*.json`` artifact (history excluded)."""
    artifacts: Dict[str, Dict[str, float]] = {}
    pattern = os.path.join(directory, "BENCH_*.json")
    for path in sorted(glob.glob(pattern)):
        name = os.path.basename(path)
        if name == HISTORY_BASENAME:
            continue
        with open(path) as handle:
            record = json.load(handle)
        if not isinstance(record, dict):
            continue
        metrics = {
            key: float(value)
            for key, value in record.items()
            if _is_gated_metric(key, value)
        }
        artifacts[name] = metrics
    return artifacts


def default_history_path(directory: str) -> str:
    return os.path.join(directory, HISTORY_BASENAME)


def load_history(history_path: str) -> Dict[str, Dict[str, float]]:
    """Baseline metrics per artifact from a history file."""
    with open(history_path) as handle:
        payload = json.load(handle)
    if payload.get("version") != HISTORY_VERSION:
        raise ValueError(
            f"unsupported bench history version {payload.get('version')!r}"
        )
    baselines = payload.get("baselines", {})
    return {
        artifact: {key: float(value) for key, value in metrics.items()}
        for artifact, metrics in baselines.items()
    }


def write_history(directory: str, history_path: Optional[str] = None) -> str:
    """Record the current artifacts as the regression baseline."""
    from . import ensure_parent_dir

    path = history_path or default_history_path(directory)
    payload = {
        "version": HISTORY_VERSION,
        "note": "Baselines for `spooftrack bench-check`; regenerate with --update.",
        "baselines": load_artifacts(directory),
    }
    ensure_parent_dir(path)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@dataclass(frozen=True)
class Regression:
    """One gated metric that slowed past tolerance."""

    artifact: str
    metric: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")


@dataclass
class BenchCheckResult:
    """Outcome of one bench-check run."""

    tolerance: float
    checked: int = 0
    regressions: List[Regression] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    new_metrics: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.regressions

    def summary_lines(self) -> List[str]:
        lines = [
            f"bench-check: {self.checked} gated metrics, "
            f"tolerance {self.tolerance:.0%}"
        ]
        for reg in self.regressions:
            lines.append(
                f"  REGRESSION {reg.artifact}:{reg.metric} "
                f"{reg.baseline:.6f}s -> {reg.current:.6f}s "
                f"({(reg.ratio - 1.0) * 100.0:+.1f}%)"
            )
        for name in self.missing:
            lines.append(f"  missing from fresh artifacts: {name}")
        for name in self.new_metrics:
            lines.append(f"  new metric (no baseline yet): {name}")
        lines.append("bench-check: FAIL" if not self.passed else "bench-check: OK")
        return lines


def check_benchmarks(
    directory: str,
    history_path: Optional[str] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> BenchCheckResult:
    """Compare fresh artifacts in ``directory`` against the baseline.

    A metric regresses when ``current > baseline * (1 + tolerance)``.
    Improvements always pass; metrics present only on one side are
    reported but do not fail the gate (new benchmarks must be allowed to
    land, and CI compares committed artifacts against committed history).
    """
    if tolerance < 0:
        raise ValueError("tolerance cannot be negative")
    path = history_path or default_history_path(directory)
    baselines = load_history(path)
    current = load_artifacts(directory)
    result = BenchCheckResult(tolerance=tolerance)
    for artifact, metrics in sorted(baselines.items()):
        fresh = current.get(artifact)
        if fresh is None:
            result.missing.append(artifact)
            continue
        for metric, baseline in sorted(metrics.items()):
            if metric not in fresh:
                result.missing.append(f"{artifact}:{metric}")
                continue
            result.checked += 1
            value = fresh[metric]
            if baseline > 0 and value > baseline * (1.0 + tolerance):
                result.regressions.append(
                    Regression(artifact, metric, baseline, value)
                )
    for artifact, metrics in sorted(current.items()):
        known = baselines.get(artifact, {})
        for metric in sorted(metrics):
            if artifact not in baselines:
                result.new_metrics.append(f"{artifact}:{metric}")
            elif metric not in known:
                result.new_metrics.append(f"{artifact}:{metric}")
    return result
