"""Structured, span-correlated logging for the CLI and the runtimes.

The CLI's operational chatter used to be ad-hoc ``print(..., file=
sys.stderr)`` calls — fine for a human at a terminal, useless for the
ROADMAP's production service, where operators grep structured logs and
correlate them with traces.  A :class:`Logbook` renders every record in
one of two modes:

* **human** (default): exactly the message text, to stderr — the CLI's
  existing output is preserved byte for byte.
* **json** (``--log-json``): one JSON object per line with the level,
  message, event name, structured fields, and — when a tracer is armed —
  the id of the innermost open span, so every log line lands inside the
  span tree that produced it.

Levels follow the conventional ladder; records below the logbook's
threshold are dropped before rendering.  The last
:data:`RECORD_LIMIT` records are retained in memory for tests and the
``/events`` surface.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TextIO

#: Level names to severities (stdlib ``logging`` numbering).
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: In-memory records retained per logbook.
RECORD_LIMIT = 10_000


@dataclass(frozen=True)
class LogRecord:
    """One structured log record."""

    level: str
    message: str
    event: str = ""
    span_id: str = ""
    fields: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe dump (field order fixed by sort_keys at render)."""
        record: Dict[str, object] = {
            "level": self.level,
            "msg": self.message,
        }
        if self.event:
            record["event"] = self.event
        if self.span_id:
            record["span"] = self.span_id
        record.update(self.fields)
        return record


class Logbook:
    """Leveled log sink with human and JSON-lines rendering.

    Args:
        stream: where rendered records go (default ``sys.stderr``).
        json_mode: render JSON lines instead of bare messages.
        level: minimum level rendered (records below are still counted).
        tracer: optional :class:`~repro.obs.tracing.Tracer`; when given,
            each record carries the innermost open span's id.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        json_mode: bool = False,
        level: str = "info",
        tracer=None,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        self._stream = stream
        self.json_mode = json_mode
        self.level = level
        self.tracer = tracer
        self.records: List[LogRecord] = []
        self.suppressed = 0
        #: Record hooks, called with every :class:`LogRecord` appended
        #: (even below the render threshold) — the flight recorder rides
        #: here.  Keep them cheap; remove on teardown.
        self.listeners: List[Callable[[LogRecord], None]] = []

    @property
    def stream(self) -> TextIO:
        # Resolved lazily so capsys/StringIO redirection in tests works.
        return self._stream if self._stream is not None else sys.stderr

    def _span_id(self) -> str:
        if self.tracer is None:
            return ""
        # After Tracer.finish() the open-span stack is empty; records
        # logged post-run simply carry no span correlation.
        if not getattr(self.tracer, "_stack", None):
            return ""
        return self.tracer.current.span_id

    def log(self, level: str, message: str, *, event: str = "", **fields) -> None:
        """Record one entry; render it when at or above the threshold."""
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        record = LogRecord(
            level=level,
            message=message,
            event=event,
            span_id=self._span_id(),
            fields=fields,
        )
        self.records.append(record)
        if len(self.records) > RECORD_LIMIT:
            del self.records[0]
        for listener in list(self.listeners):
            listener(record)
        if LEVELS[level] < LEVELS[self.level]:
            self.suppressed += 1
            return
        if self.json_mode:
            print(
                json.dumps(record.as_dict(), sort_keys=True, default=str),
                file=self.stream,
            )
        else:
            print(message, file=self.stream)

    def debug(self, message: str, *, event: str = "", **fields) -> None:
        self.log("debug", message, event=event, **fields)

    def info(self, message: str, *, event: str = "", **fields) -> None:
        self.log("info", message, event=event, **fields)

    def warning(self, message: str, *, event: str = "", **fields) -> None:
        self.log("warning", message, event=event, **fields)

    def error(self, message: str, *, event: str = "", **fields) -> None:
        self.log("error", message, event=event, **fields)
