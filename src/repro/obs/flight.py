"""Black-box flight recorder: bounded event capture + post-mortem dumps.

When a fleet shard dies, a soak kill fires, or a checkpoint rolls back,
the *recent* context — which bus events fired, what was logged, which
spans closed, how the counters moved — is exactly what an operator needs
and exactly what used to die with the process.  A :class:`FlightRecorder`
is a lock-safe ring buffer that rides the observability surface as a set
of cheap synchronous listeners and, on demand, dumps an atomic,
checksummed JSON bundle (the "black box") for the timeline layer
(:mod:`repro.obs.timeline`) to reconstruct.

**Determinism**: ring entries keep only the deterministic projection of
what they capture — measured ``*_seconds`` fields are stripped from bus
events and log fields, span durations are dropped — and bundles are
canonical JSON with no wall-clock timestamps, pids, or absolute paths.
Two replays of the same seeded scenario that crash at the same logical
point therefore dump *byte-identical* bundles, across interpreter hash
seeds and across the serial/asyncio fleet drivers; the bundle checksum
doubles as the crash's forensic fingerprint.

Dump triggers wired across the repo:

* shard crash containment and scripted kills
  (:class:`~repro.fleet.shard.AttackShard`),
* soak-harness kills and checkpoint corruption
  (:class:`~repro.soak.runner.SoakRunner`),
* checkpoint rollback on resume,
* SLO breaches (:class:`~repro.obs.slo.SloWatchdog.flight`),
* injected faults (:meth:`FlightRecorder.attach` with an injector),
* explicit operator request — :func:`install_flight_signal` binds
  ``SIGUSR1`` so a live run can be asked for its black box any time.
"""

from __future__ import annotations

import json
import os
import re
import threading
from collections import deque
from typing import Dict, List, Mapping, Optional

from ..faults.resilience import atomic_write_text, content_checksum
from . import ensure_parent_dir
from .bus import strip_measured

#: Bundle schema version.
FLIGHT_VERSION = 1

#: Default ring capacity (most recent entries retained).
DEFAULT_CAPACITY = 256

#: Filename characters kept verbatim by :func:`_slug`.
_SLUG_UNSAFE = re.compile(r"[^A-Za-z0-9_.-]+")


def _slug(text: str) -> str:
    """Filesystem-safe token for bundle filenames."""
    return _SLUG_UNSAFE.sub("-", text).strip("-") or "run"


def _strip_fields(fields: Mapping) -> Dict[str, object]:
    """Deterministic projection of a log record's structured fields."""
    return {
        str(key): value
        for key, value in fields.items()
        if not str(key).endswith("_seconds")
    }


class FlightRecorder:
    """Bounded, lock-safe ring of recent observability entries.

    Args:
        name: identity token for bundle filenames (shard label, run
            name); slugged into the dump path.
        capacity: ring size — the *last* ``capacity`` entries survive.
        directory: where post-mortem bundles land ("" records without
            ever dumping — :meth:`dump` then returns "").
        context: deterministic identity fields embedded in every bundle
            (tenant, attack, seed, …).
        registry: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when present, counter *deltas* are recorded as ring entries
            at every dump and the bundle embeds the full deterministic
            ``counter_totals()`` snapshot.
        tag_filter: only bus events whose payload matches every
            ``key: value`` pair are captured — how a per-shard recorder
            rides the fleet's *shared* bus without recording its
            neighbours (events missing a filtered key are skipped, so a
            tenant-tagged engine event stays out of per-attack rings).

    Attach with :meth:`attach` (bus / logbook / tracer / injector) and
    always :meth:`detach` on teardown — buses outlive runtimes.
    """

    def __init__(
        self,
        name: str = "run",
        capacity: int = DEFAULT_CAPACITY,
        directory: str = "",
        context: Optional[Mapping[str, object]] = None,
        registry=None,
        tag_filter: Optional[Mapping[str, object]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.directory = directory
        self.context: Dict[str, object] = dict(context or {})
        self.registry = registry
        self.tag_filter: Dict[str, object] = dict(tag_filter or {})
        self.dumps: List[str] = []
        self._ring: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._entries_seen = 0
        self._dump_ordinals: Dict[str, int] = {}
        self._last_counters: Dict[str, float] = {}
        self._bus = None
        self._logbook = None
        self._tracer = None
        self._injector_log = None
        # A rebuilt recorder (soak restart epochs) must not overwrite
        # the bundles its predecessor dumped: resume each reason's
        # ordinal after the highest already on disk.
        if directory and os.path.isdir(directory):
            pattern = re.compile(
                rf"^flight-{re.escape(_slug(name))}-(?P<reason>.+)"
                rf"-(?P<ordinal>\d{{3}})\.json$"
            )
            for filename in os.listdir(directory):
                match = pattern.match(filename)
                if match is None:
                    continue
                reason = match.group("reason")
                ordinal = int(match.group("ordinal")) + 1
                if ordinal > self._dump_ordinals.get(reason, 0):
                    self._dump_ordinals[reason] = ordinal

    # -- capture --------------------------------------------------------

    def record(self, kind: str, **payload) -> None:
        """Append one ring entry (older entries fall off the window)."""
        with self._lock:
            entry: Dict[str, object] = {"n": self._entries_seen, "kind": kind}
            entry.update(payload)
            self._entries_seen += 1
            self._ring.append(entry)

    @property
    def entries_seen(self) -> int:
        return self._entries_seen

    def snapshot(self) -> List[Dict[str, object]]:
        """Copy of the current ring contents (oldest first)."""
        with self._lock:
            return [dict(entry) for entry in self._ring]

    # -- listeners ------------------------------------------------------

    def _on_bus(self, event: Mapping) -> None:
        if self.tag_filter and any(
            event.get(key) != value for key, value in self.tag_filter.items()
        ):
            return
        self.record("bus", event=strip_measured(dict(event)))

    def _on_log(self, record) -> None:
        self.record(
            "log",
            level=record.level,
            msg=record.message,
            event=record.event,
            span=record.span_id,
            fields=_strip_fields(record.fields),
        )

    def _on_span(self, record: Mapping) -> None:
        self.record(
            "span",
            span_id=record.get("span_id", ""),
            parent_id=record.get("parent_id", ""),
            name=record.get("name", ""),
            attrs=dict(record.get("attrs", {})),
        )

    def _on_fault(self, kind: str, count: int) -> None:
        self.record("fault", fault=kind, count=count)

    def attach(
        self, bus=None, logbook=None, tracer=None, injector=None
    ) -> "FlightRecorder":
        """Ride the given surfaces as synchronous listeners.

        Returns ``self`` so construction and attachment chain.  Each
        surface is optional; attaching twice to the same recorder first
        detaches the previous hooks.
        """
        self.detach()
        if bus is not None:
            bus.attach(self._on_bus)
            self._bus = bus
        if logbook is not None:
            logbook.listeners.append(self._on_log)
            self._logbook = logbook
        if tracer is not None:
            tracer.listeners.append(self._on_span)
            self._tracer = tracer
        if injector is not None:
            injector.log.listeners.append(self._on_fault)
            self._injector_log = injector.log
        return self

    def detach(self) -> None:
        """Unhook every listener registered by :meth:`attach`."""
        if self._bus is not None:
            self._bus.detach(self._on_bus)
            self._bus = None
        if self._logbook is not None:
            if self._on_log in self._logbook.listeners:
                self._logbook.listeners.remove(self._on_log)
            self._logbook = None
        if self._tracer is not None:
            if self._on_span in self._tracer.listeners:
                self._tracer.listeners.remove(self._on_span)
            self._tracer = None
        if self._injector_log is not None:
            if self._on_fault in self._injector_log.listeners:
                self._injector_log.listeners.remove(self._on_fault)
            self._injector_log = None

    # -- metric deltas --------------------------------------------------

    def record_metric_deltas(self) -> Dict[str, float]:
        """Record counter movement since the last call as a ring entry.

        Uses the registry's deterministic ``counter_totals()`` layer, so
        the entry is identical across worker counts and hash seeds.
        Returns the (possibly empty) delta map; without a registry this
        is a no-op.
        """
        if self.registry is None:
            return {}
        totals = self.registry.counter_totals()
        delta = {
            series: round(value - self._last_counters.get(series, 0.0), 9)
            for series, value in sorted(totals.items())
            if value != self._last_counters.get(series, 0.0)
        }
        self._last_counters = totals
        if delta:
            self.record("metrics", delta=delta)
        return delta

    # -- dumping --------------------------------------------------------

    def dump(
        self,
        reason: str,
        context: Optional[Mapping[str, object]] = None,
        directory: Optional[str] = None,
    ) -> str:
        """Write the post-mortem bundle; returns its path ("" unarmed).

        The bundle is canonical JSON wrapped with a SHA-256 content
        checksum and written atomically (tmp + fsync + rename), exactly
        like a checkpoint.  Filenames are deterministic:
        ``flight-<name>-<reason>-<ordinal>.json`` — repeated dumps for
        one reason rotate the ordinal instead of overwriting.
        """
        target_dir = self.directory if directory is None else directory
        self.record_metric_deltas()
        with self._lock:
            ordinal = self._dump_ordinals.get(reason, 0)
            self._dump_ordinals[reason] = ordinal + 1
            payload: Dict[str, object] = {
                "version": FLIGHT_VERSION,
                "flight": self.name,
                "reason": reason,
                "ordinal": ordinal,
                "context": dict(self.context, **(context or {})),
                "entries_seen": self._entries_seen,
                "entries": [dict(entry) for entry in self._ring],
            }
            if self.registry is not None:
                payload["counters"] = self.registry.counter_totals()
        if not target_dir:
            return ""
        body = json.dumps(payload, indent=2, sort_keys=True, default=str)
        document = {
            "checksum": content_checksum(body),
            "payload": payload,
        }
        path = os.path.join(
            target_dir,
            f"flight-{_slug(self.name)}-{_slug(reason)}-{ordinal:03d}.json",
        )
        ensure_parent_dir(path)
        atomic_write_text(
            path,
            json.dumps(document, indent=2, sort_keys=True, default=str) + "\n",
        )
        self.dumps.append(path)
        # Announce the bundle to live consumers (dash, SSE) — only its
        # deterministic identity, never the path: bundles must stay
        # byte-identical across checkout locations.
        if self._bus is not None:
            announce: Dict[str, object] = {
                "flight": self.name,
                "reason": reason,
                "ordinal": ordinal,
            }
            for key in ("tenant", "shard"):
                if key in self.context:
                    announce[key] = self.context[key]
            self._bus.publish("flight", **announce)
        return path


def load_flight_dump(path: str) -> Dict[str, object]:
    """Read a bundle back, verifying its content checksum.

    Raises ``ValueError`` on a torn or tampered bundle — post-mortems
    must be trustworthy or explicitly rejected.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    payload = document.get("payload")
    if payload is None:
        raise ValueError(f"{path}: not a flight bundle (no payload)")
    body = json.dumps(payload, indent=2, sort_keys=True, default=str)
    if content_checksum(body) != document.get("checksum"):
        raise ValueError(f"{path}: flight bundle checksum mismatch")
    return payload


def install_flight_signal(recorder: FlightRecorder, signum=None):
    """Bind an OS signal to :meth:`FlightRecorder.dump` (SIGUSR1-style).

    Returns the previous handler, or None when the platform has no such
    signal (Windows) — callers need not guard.  The handler dumps with
    reason ``"signal"`` so an operator can ask a live run for its black
    box without stopping it: ``kill -USR1 <pid>``.
    """
    import signal as _signal

    if signum is None:
        signum = getattr(_signal, "SIGUSR1", None)
        if signum is None:  # pragma: no cover - non-POSIX platform
            return None

    def _handler(signo, frame):  # pragma: no cover - exercised via kill
        recorder.dump("signal")

    return _signal.signal(signum, _handler)
