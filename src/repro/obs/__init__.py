"""repro.obs — end-to-end tracing, metrics, and profiling.

The observability layer every other subsystem reports through:

* :class:`MetricsRegistry` — counters (deterministic logical events),
  gauges and histograms (measured data), lock-safe, mergeable, with a
  Prometheus-format text dump.
* :class:`Tracer` — deterministic span trees (SHA-256 identities, wall
  durations as data only) exported as JSONL.
* :class:`PhaseTimer` / :class:`ProfileCapture` / :class:`Stopwatch` —
  monotonic timing and optional :mod:`cProfile` capture.
* :class:`RunManifest` — frozen run inputs + environment, attached to
  reports.
* :class:`Observability` — the bundle threaded through
  :class:`~repro.core.pipeline.SpoofTracker`, the engine, the
  measurement campaign, and the live runtime.

Everything here is stdlib-only and free when not enabled: call sites
guard on ``obs is None`` / ``registry is None``, so a run without
``--trace``/``--metrics`` pays nothing.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

from .manifest import RunManifest, build_manifest, git_describe, library_versions
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
    record_engine_stats,
    record_fault_log,
)
from .profiling import PhaseTimer, ProfileCapture, Stopwatch
from .tracing import (
    Span,
    Tracer,
    build_tree,
    load_spans,
    phase_durations,
    span_tree_signature,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "PhaseTimer",
    "ProfileCapture",
    "RunManifest",
    "Span",
    "Stopwatch",
    "Tracer",
    "build_manifest",
    "build_tree",
    "git_describe",
    "library_versions",
    "load_spans",
    "parse_prometheus",
    "phase_durations",
    "record_engine_stats",
    "record_fault_log",
    "span_tree_signature",
]


@dataclass
class Observability:
    """The instrumentation bundle one run threads through its layers.

    Any piece may be None — an ``Observability()`` with no tracer still
    collects metrics, a registry-less one still traces.  ``for_run``
    builds the fully armed bundle the CLI uses.
    """

    registry: Optional[MetricsRegistry] = None
    tracer: Optional[Tracer] = None
    profiler: Optional[ProfileCapture] = None
    timer: Optional[PhaseTimer] = field(default=None)

    @classmethod
    def for_run(
        cls, run_name: str = "run", profile: bool = False
    ) -> "Observability":
        """Registry + tracer (+ optional profiler) for one run."""
        registry = MetricsRegistry()
        return cls(
            registry=registry,
            tracer=Tracer(run_name),
            profiler=ProfileCapture(enabled=profile),
            timer=PhaseTimer(registry),
        )

    def span(self, name: str, **attrs):
        """Tracer span when tracing, else a no-op context manager."""
        if self.tracer is not None:
            return self.tracer.span(name, **attrs)
        return _NULL_CONTEXT

    @contextmanager
    def phase(self, name: str, **attrs):
        """One pipeline phase: a span *and* a phase-timer interval.

        Yields the open :class:`~repro.obs.tracing.Span` (None when
        tracing is unarmed) so callers can attach result attributes.
        """
        with self.span(name, **attrs) as span:
            if self.timer is not None:
                with self.timer.phase(name):
                    yield span
            else:
                yield span

    def capture(self):
        """Profiler capture when profiling, else a no-op context manager."""
        if self.profiler is not None and self.profiler.enabled:
            return self.profiler.capture()
        return _NULL_CONTEXT


class _NullContext:
    """Reusable no-op context manager (avoids allocating per call)."""

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_CONTEXT = _NullContext()
