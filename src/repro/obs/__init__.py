"""repro.obs — end-to-end tracing, metrics, profiling, and serving.

The observability layer every other subsystem reports through:

* :class:`MetricsRegistry` — counters (deterministic logical events),
  gauges and histograms (measured data), lock-safe, mergeable, with a
  Prometheus-format text dump.
* :class:`Tracer` — deterministic span trees (SHA-256 identities, wall
  durations as data only) exported as JSONL.
* :class:`PhaseTimer` / :class:`ProfileCapture` / :class:`Stopwatch` —
  monotonic timing and optional :mod:`cProfile` capture.
* :class:`RunManifest` — frozen run inputs + redacted environment,
  attached to reports.
* :class:`EventBus` — publish/subscribe spine carrying window, fault,
  phase, and engine events to live consumers.
* :class:`Logbook` — leveled, span-correlated structured logging
  (human or JSON-lines rendering).
* :class:`SloWatchdog` — declarative SLO rules riding the bus, tripping
  breach counters and flipping readiness.
* :class:`ObsServer` — threaded HTTP exporter: ``/metrics``,
  ``/healthz``, ``/readyz``, ``/manifest``, ``/traces``, SSE ``/events``.
* :mod:`~repro.obs.benchgate` — benchmark regression gate behind
  ``spooftrack bench-check``.
* :class:`Observability` — the bundle threaded through
  :class:`~repro.core.pipeline.SpoofTracker`, the engine, the
  measurement campaign, and the live runtime.

Everything here is stdlib-only and free when not enabled: call sites
guard on ``obs is None`` / ``registry is None``, so a run without
``--trace``/``--metrics`` pays nothing.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional


def ensure_parent_dir(path: str) -> str:
    """Create the parent directory of ``path`` (and ancestors) if absent.

    Every artifact writer (traces, metrics, manifests, checkpoints,
    bench history) funnels through this, so ``--trace runs/a/b/t.jsonl``
    works without a prior ``mkdir -p``.  ``os.makedirs(exist_ok=True)``
    is atomic enough for concurrent writers: a racing sibling creating
    the same directory is not an error.  Returns ``path`` unchanged.
    """
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    return path


from .bus import (  # noqa: E402 (ensure_parent_dir must exist first)
    EventBus,
    Subscription,
    strip_measured,
)
from .logbook import LogRecord, Logbook  # noqa: E402
from .manifest import (  # noqa: E402
    RunManifest,
    build_manifest,
    capture_environment,
    git_describe,
    library_versions,
)
from .metrics import (  # noqa: E402
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ParsedMetrics,
    parse_prometheus,
    parse_prometheus_metrics,
    record_build_info,
    record_engine_stats,
    record_fault_log,
    record_resource_sample,
)
from .profiling import PhaseTimer, ProfileCapture, Stopwatch  # noqa: E402
from .slo import (  # noqa: E402
    DEFAULT_SLOS,
    RESOURCE_CEILING_SLO,
    SOAK_SLOS,
    SloRule,
    SloWatchdog,
)
from .server import ObsServer  # noqa: E402
from .benchgate import (  # noqa: E402
    BenchCheckResult,
    Regression,
    check_benchmarks,
    default_history_path,
    load_artifacts,
    load_history,
    write_history,
)
from .tracing import (  # noqa: E402
    Span,
    TraceContext,
    Tracer,
    build_tree,
    load_spans,
    phase_durations,
    span_tree_signature,
)
from .flight import (  # noqa: E402
    FlightRecorder,
    install_flight_signal,
    load_flight_dump,
)
from .timeline import (  # noqa: E402
    Timeline,
    TimelineEntry,
    build_timeline,
    timeline_from_obs,
)

__all__ = [
    "BenchCheckResult",
    "Counter",
    "DEFAULT_SLOS",
    "RESOURCE_CEILING_SLO",
    "SOAK_SLOS",
    "EventBus",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LogRecord",
    "Logbook",
    "MetricsRegistry",
    "ObsServer",
    "Observability",
    "PhaseTimer",
    "ProfileCapture",
    "Regression",
    "RunManifest",
    "SloRule",
    "SloWatchdog",
    "Span",
    "Stopwatch",
    "Subscription",
    "Timeline",
    "TimelineEntry",
    "TraceContext",
    "Tracer",
    "build_manifest",
    "build_timeline",
    "build_tree",
    "capture_environment",
    "check_benchmarks",
    "default_history_path",
    "ensure_parent_dir",
    "git_describe",
    "install_flight_signal",
    "library_versions",
    "load_artifacts",
    "load_flight_dump",
    "load_history",
    "load_spans",
    "timeline_from_obs",
    "ParsedMetrics",
    "parse_prometheus",
    "parse_prometheus_metrics",
    "phase_durations",
    "record_build_info",
    "record_engine_stats",
    "record_fault_log",
    "record_resource_sample",
    "span_tree_signature",
    "strip_measured",
    "write_history",
]


@dataclass
class Observability:
    """The instrumentation bundle one run threads through its layers.

    Any piece may be None — an ``Observability()`` with no tracer still
    collects metrics, a registry-less one still traces.  ``for_run``
    builds the fully armed bundle the CLI uses.
    """

    registry: Optional[MetricsRegistry] = None
    tracer: Optional[Tracer] = None
    profiler: Optional[ProfileCapture] = None
    timer: Optional[PhaseTimer] = field(default=None)
    bus: Optional[EventBus] = None
    logbook: Optional[Logbook] = None
    flight: Optional[FlightRecorder] = None

    @classmethod
    def for_run(
        cls, run_name: str = "run", profile: bool = False
    ) -> "Observability":
        """Registry + tracer + bus (+ optional profiler) for one run."""
        registry = MetricsRegistry()
        record_build_info(registry)
        tracer = Tracer(run_name)
        return cls(
            registry=registry,
            tracer=tracer,
            profiler=ProfileCapture(enabled=profile),
            timer=PhaseTimer(registry),
            bus=EventBus(),
            logbook=Logbook(tracer=tracer),
        )

    def arm_flight(
        self, name: str = "run", directory: str = "", capacity: int = 256
    ) -> FlightRecorder:
        """Attach a run-wide flight recorder to every armed surface.

        The recorder rides the bus, logbook, and tracer of this bundle
        (whichever exist) and snapshots this registry's counters at each
        dump.  Stored on :attr:`flight` so trigger sites (CLI crash
        handler, SLO watchdogs, signal handler) can reach it; call
        ``flight.detach()`` on teardown.
        """
        recorder = FlightRecorder(
            name=name,
            capacity=capacity,
            directory=directory,
            registry=self.registry,
        )
        recorder.attach(bus=self.bus, logbook=self.logbook, tracer=self.tracer)
        self.flight = recorder
        return recorder

    def span(self, name: str, **attrs):
        """Tracer span when tracing, else a no-op context manager."""
        if self.tracer is not None:
            return self.tracer.span(name, **attrs)
        return _NULL_CONTEXT

    @contextmanager
    def phase(self, name: str, **attrs):
        """One pipeline phase: a span *and* a phase-timer interval.

        Yields the open :class:`~repro.obs.tracing.Span` (None when
        tracing is unarmed) so callers can attach result attributes.
        On close the completed phase is published to the bus as a
        ``phase`` event (duration carried as a measured field).
        """
        with self.span(name, **attrs) as span:
            if self.timer is not None:
                with self.timer.phase(name):
                    yield span
            else:
                yield span
        if self.bus is not None:
            payload = dict(attrs)
            if span is not None:
                payload.update(span.attrs)
                payload["span"] = span.span_id
                payload["duration_seconds"] = span.duration_seconds
            self.bus.publish("phase", name=name, **payload)

    def capture(self):
        """Profiler capture when profiling, else a no-op context manager."""
        if self.profiler is not None and self.profiler.enabled:
            return self.profiler.capture()
        return _NULL_CONTEXT


class _NullContext:
    """Reusable no-op context manager (avoids allocating per call)."""

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_CONTEXT = _NullContext()
