"""Lightweight profiling: monotonic stopwatches, phase timers, cProfile.

Three tiers, all stdlib:

* :class:`Stopwatch` — a :func:`time.perf_counter` interval.  Wall-clock
  adjustments (NTP slew, DST, a sysadmin's ``date`` call) cannot skew or
  negate it, which is why every elapsed-time read in this repo goes
  through the monotonic clock rather than :func:`time.time`.
* :class:`PhaseTimer` — named accumulating timers ("simulate", "cluster",
  "nnls") that optionally feed a
  :class:`~repro.obs.metrics.MetricsRegistry` histogram per phase.
* :class:`ProfileCapture` — optional :mod:`cProfile` capture around a
  hot region (engine fixpoints, NNLS solves, or a whole run), with a
  top-K hotspot table for ``spooftrack profile``.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple


class Stopwatch:
    """A running :func:`time.perf_counter` interval."""

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return time.perf_counter() - self._start

    def restart(self) -> float:
        """Reset the interval; returns the elapsed time it closed with."""
        now = time.perf_counter()
        elapsed = now - self._start
        self._start = now
        return elapsed


class PhaseTimer:
    """Accumulating named timers, optionally mirrored into a registry.

    Usage::

        timer = PhaseTimer(registry)
        with timer.phase("simulate"):
            engine.simulate_many(configs)
        timer.seconds("simulate")  # → accumulated wall seconds
    """

    def __init__(self, registry=None, metric: str = "repro_phase_seconds") -> None:
        self.registry = registry
        self.metric = metric
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the ``with`` body under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1
            if self.registry is not None:
                self.registry.histogram(
                    self.metric,
                    help="wall seconds per pipeline phase",
                    labels={"phase": name},
                ).observe(elapsed)

    def seconds(self, name: str) -> float:
        """Accumulated wall seconds of one phase (0.0 if never entered)."""
        return self.totals.get(name, 0.0)

    def table(self) -> str:
        """Phase table, widest-phase first, for CLI output."""
        if not self.totals:
            return "(no phases timed)"
        width = max(len(name) for name in self.totals)
        lines = [f"{'phase':<{width}}  {'calls':>5}  {'seconds':>9}"]
        for name, total in sorted(
            self.totals.items(), key=lambda item: -item[1]
        ):
            lines.append(
                f"{name:<{width}}  {self.counts[name]:>5}  {total:>9.4f}"
            )
        return "\n".join(lines)


class ProfileCapture:
    """Optional :mod:`cProfile` capture with a top-K hotspot report.

    Disabled captures are free: :meth:`capture` becomes a no-op context
    manager, so the hook can stay wired around engine fixpoints and
    NNLS solves permanently.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.profile: Optional[cProfile.Profile] = None

    @contextmanager
    def capture(self) -> Iterator[None]:
        """Profile the ``with`` body (accumulates across captures)."""
        if not self.enabled:
            yield
            return
        if self.profile is None:
            self.profile = cProfile.Profile()
        self.profile.enable()
        try:
            yield
        finally:
            self.profile.disable()

    def hotspots(self, top_k: int = 15) -> List[Tuple[str, int, float, float]]:
        """Top-K ``(site, calls, total_seconds, cumulative_seconds)`` rows.

        Sorted by cumulative time; site is ``file:line(function)`` with
        the path shortened to its last two components.
        """
        if self.profile is None:
            return []
        stats = pstats.Stats(self.profile, stream=io.StringIO())
        rows: List[Tuple[str, int, float, float]] = []
        for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
            filename, line, name = func
            parts = filename.replace("\\", "/").split("/")
            short = "/".join(parts[-2:]) if len(parts) > 1 else filename
            rows.append((f"{short}:{line}({name})", nc, tt, ct))
        rows.sort(key=lambda row: -row[3])
        return rows[:top_k]

    def hotspot_table(self, top_k: int = 15) -> str:
        """Human-readable top-K hotspot table for ``spooftrack profile``."""
        rows = self.hotspots(top_k)
        if not rows:
            return "(no profile captured)"
        width = min(72, max(len(site) for site, *_ in rows))
        lines = [
            f"{'site':<{width}}  {'calls':>8}  {'self(s)':>8}  {'cum(s)':>8}"
        ]
        for site, calls, total, cumulative in rows:
            lines.append(
                f"{site[:width]:<{width}}  {calls:>8}  {total:>8.3f}  "
                f"{cumulative:>8.3f}"
            )
        return "\n".join(lines)
