"""Run manifests: everything needed to reproduce (or audit) one run.

The HAW reproducibility study attributes most reproduction drift to
*unlogged pipeline decisions* — which seed, which scale, which fault
plan, which library versions.  A :class:`RunManifest` freezes those
decisions at run time and travels on the report (and into the metrics /
trace exports), so every artifact this repo emits is self-describing.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from typing import Dict, Mapping, Optional

#: Env-var name substrings (case-insensitive) whose values are redacted.
REDACT_MARKERS = ("KEY", "TOKEN", "SECRET", "PASSWORD", "CREDENTIAL")

#: Replacement recorded for redacted values.
REDACTED = "[redacted]"

#: Env vars worth freezing in a manifest: the knobs that change how this
#: process computes, not the whole environment (which would be noisy and
#: a bigger leak surface).
CAPTURED_ENV_PREFIXES = (
    "PYTHON",
    "REPRO_",
    "SPOOFTRACK_",
    "OMP_",
    "OPENBLAS_",
    "MKL_",
    "NUMEXPR_",
)


def capture_environment(
    environ: Optional[Mapping[str, str]] = None,
) -> Dict[str, str]:
    """Relevant environment variables, credentials redacted.

    Captures variables whose names start with one of
    :data:`CAPTURED_ENV_PREFIXES`; any variable whose name contains a
    :data:`REDACT_MARKERS` substring (``KEY``/``TOKEN``/``SECRET``/...)
    keeps its name but records :data:`REDACTED` as the value, so
    ``/manifest`` and exported manifests can never leak credentials even
    when something like ``PYTHON_API_KEY`` matches a captured prefix.
    """
    source = os.environ if environ is None else environ
    captured: Dict[str, str] = {}
    for name in sorted(source):
        if not name.startswith(CAPTURED_ENV_PREFIXES):
            continue
        upper = name.upper()
        if any(marker in upper for marker in REDACT_MARKERS):
            captured[name] = REDACTED
        else:
            captured[name] = source[name]
    return captured


def git_describe(cwd: Optional[str] = None) -> str:
    """``git describe --always --dirty`` of the working tree, or ``""``.

    Gated: outside a checkout (installed package, container without
    git) the manifest simply records an empty revision.
    """
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    if result.returncode != 0:
        return ""
    return result.stdout.strip()


def library_versions() -> Dict[str, str]:
    """Versions of the numeric stack the pipeline depends on."""
    versions: Dict[str, str] = {}
    for module_name in ("numpy", "scipy"):
        try:
            module = __import__(module_name)
            versions[module_name] = getattr(module, "__version__", "unknown")
        except ImportError:
            versions[module_name] = "absent"
    return versions


@dataclass(frozen=True)
class RunManifest:
    """Frozen description of one run's inputs and environment.

    Attributes:
        command: the subcommand (``track``, ``live``, ``chaos``, ...).
        seed: the global PRNG seed.
        scale: topology scale name (``""`` for programmatic runs).
        workers: simulation worker processes.
        config: remaining run parameters (max_configs, distribution, ...).
        fault_plan: serialized fault plan, or None for fault-free runs.
        git_revision: ``git describe`` of the source tree ("" if unknown).
        python_version: interpreter version string.
        platform: OS/architecture identifier.
        repro_version: this package's version.
        libraries: numeric-stack library versions.
        environment: captured env vars (see :func:`capture_environment`;
            credential-shaped values arrive already redacted).
    """

    command: str = ""
    seed: int = 0
    scale: str = ""
    workers: int = 1
    config: Dict[str, object] = field(default_factory=dict)
    fault_plan: Optional[Dict] = None
    git_revision: str = ""
    python_version: str = ""
    platform: str = ""
    repro_version: str = ""
    libraries: Dict[str, str] = field(default_factory=dict)
    environment: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        """JSON-safe dump."""
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def write(self, path: str) -> str:
        """Write the manifest JSON to ``path``; returns the path."""
        from . import ensure_parent_dir

        ensure_parent_dir(path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path


def build_manifest(
    command: str,
    seed: int = 0,
    scale: str = "",
    workers: int = 1,
    config: Optional[Mapping[str, object]] = None,
    fault_plan: Optional[Dict] = None,
) -> RunManifest:
    """Assemble a :class:`RunManifest` for the current environment."""
    from .. import __version__

    return RunManifest(
        command=command,
        seed=seed,
        scale=scale,
        workers=workers,
        config=dict(config or {}),
        fault_plan=fault_plan,
        git_revision=git_describe(),
        python_version=sys.version.split()[0],
        platform=platform.platform(),
        repro_version=__version__,
        libraries=library_versions(),
        environment=capture_environment(),
    )
