"""Declarative SLO watchdogs over the live telemetry stream.

BGPeek-a-Boo's operational point applies here: active BGP traceback is
run *during* an attack, so the operator needs to know — while the run is
still going — when the runtime stops keeping up.  A :class:`SloWatchdog`
encodes that judgement declaratively: each :class:`SloRule` names one
service-level indicator, its breach threshold, and the direction of
badness.  The watchdog rides the :class:`~repro.obs.bus.EventBus` as a
synchronous listener, evaluates the relevant rules against each event,
and on a breach

* increments ``repro_slo_breached_total{slo="..."}`` in the registry,
* records the breach detail, and
* flips :attr:`SloWatchdog.ready` to False — which the
  :class:`~repro.obs.server.ObsServer` surfaces as a 503 on ``/readyz``.

Thresholds compare *measured or derived* values, so breaches are not part
of the deterministic event layer — a slow machine may trip
``window_lag_seconds`` where a fast one does not.  That is the point: the
SLOs watch the service, not the science.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SloRule:
    """One service-level objective: indicator, threshold, direction.

    Attributes:
        name: indicator name (the ``slo`` label on the breach counter).
        description: what the indicator measures.
        threshold: breach boundary.
        comparison: ``"gt"`` breaches when value > threshold (default),
            ``"lt"`` when value < threshold.
    """

    name: str
    description: str
    threshold: float
    comparison: str = "gt"

    def __post_init__(self) -> None:
        if self.comparison not in ("gt", "lt"):
            raise ValueError(f"unknown comparison {self.comparison!r}")

    def breached(self, value: float) -> bool:
        if self.comparison == "gt":
            return value > self.threshold
        return value < self.threshold


#: The default watchdog set: the four ways the live service degrades.
DEFAULT_SLOS: Tuple[SloRule, ...] = (
    SloRule(
        "window_lag_seconds",
        "wall seconds to process one observation window",
        5.0,
    ),
    SloRule(
        "ingest_drop_rate",
        "cumulative dropped/offered volume fraction at the ingest queue",
        0.25,
    ),
    SloRule(
        "degraded_link_fraction",
        "fraction of deployed configurations with partial (degraded) catchments",
        0.5,
    ),
    SloRule(
        "worker_error_rate",
        "engine worker failures per requested configuration",
        0.10,
    ),
)

#: Long-horizon resource objective: worst-of RSS / open FDs / threads as
#: a fraction of its configured ceiling (>1.0 = over the ceiling).  Fed
#: by the soak harness's :class:`~repro.soak.sentinel.ResourceSentinel`
#: via ``resource`` bus events.
RESOURCE_CEILING_SLO = SloRule(
    "resource_ceiling",
    "worst resource utilization as a fraction of its configured ceiling",
    1.0,
)

#: The soak watchdog set: everything the live service watches, plus the
#: resource ceiling a weeks-long campaign must stay under.
SOAK_SLOS: Tuple[SloRule, ...] = DEFAULT_SLOS + (RESOURCE_CEILING_SLO,)


class SloWatchdog:
    """Evaluates :class:`SloRule` s against the event stream.

    Args:
        rules: the objectives to watch (default :data:`DEFAULT_SLOS`).
        registry: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            breaches increment ``repro_slo_breached_total{slo=name}``.

    Attach to a bus with ``bus.attach(watchdog.observe)``; values can
    also be fed directly through :meth:`check`.
    """

    def __init__(
        self,
        rules: Sequence[SloRule] = DEFAULT_SLOS,
        registry=None,
    ) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError("duplicate SLO rule names")
        self.rules: Dict[str, SloRule] = {rule.name: rule for rule in rules}
        self.registry = registry
        #: Optional :class:`~repro.obs.flight.FlightRecorder`; when set,
        #: every breach dumps a post-mortem bundle (reason
        #: ``slo_breach``) with the objective and detail in the context.
        self.flight = None
        self.breaches: Dict[str, str] = {}
        self.trip_counts: Dict[str, int] = {}
        self.checks = 0
        # Cross-event accumulators for rate-style indicators.
        self._worker_failures = 0
        self._configs_requested = 0

    @property
    def ready(self) -> bool:
        """True while no objective has ever been breached."""
        return not self.breaches

    def status(self) -> Dict[str, object]:
        """JSON-safe readiness summary (the ``/readyz`` body)."""
        return {
            "ready": self.ready,
            "checks": self.checks,
            "breaches": dict(self.breaches),
            "trips": dict(self.trip_counts),
        }

    # -- evaluation -----------------------------------------------------

    def check(self, name: str, value: float, detail: str = "") -> bool:
        """Evaluate one indicator sample; returns True when within SLO."""
        rule = self.rules.get(name)
        if rule is None:
            return True
        self.checks += 1
        if not rule.breached(value):
            return True
        self.trip_counts[name] = self.trip_counts.get(name, 0) + 1
        self.breaches[name] = detail or (
            f"{value:g} breaches {rule.comparison} {rule.threshold:g}"
        )
        if self.registry is not None:
            self.registry.counter(
                "repro_slo_breached_total",
                help="SLO threshold breaches, by objective",
                labels={"slo": name},
            ).inc()
        if self.flight is not None:
            self.flight.dump(
                "slo_breach", context={"slo": name, "detail": self.breaches[name]}
            )
        return False

    def observe(self, event: Mapping) -> None:
        """Bus listener: route one event to the rules it feeds."""
        kind = event.get("kind")
        if kind == "window":
            duration = event.get("duration_seconds")
            if duration is not None:
                self.check(
                    "window_lag_seconds",
                    float(duration),
                    f"window {event.get('window_index')} took {duration:g}s",
                )
            offered = float(event.get("offered_volume", 0.0) or 0.0)
            dropped = float(event.get("dropped_volume", 0.0) or 0.0)
            if offered > 0:
                rate = dropped / offered
                self.check(
                    "ingest_drop_rate",
                    rate,
                    f"dropped {rate:.1%} of offered volume",
                )
        elif kind == "engine_batch":
            self._worker_failures += int(event.get("worker_failures", 0) or 0)
            self._configs_requested += int(
                event.get("configs_requested", 0) or 0
            )
            if self._configs_requested > 0:
                rate = self._worker_failures / self._configs_requested
                self.check(
                    "worker_error_rate",
                    rate,
                    f"{self._worker_failures} worker failures over "
                    f"{self._configs_requested} requested configs",
                )
        elif kind == "resource":
            utilization = event.get("ceiling_utilization")
            if utilization is not None:
                worst = event.get("worst_resource", "resource")
                self.check(
                    "resource_ceiling",
                    float(utilization),
                    f"{worst} at {float(utilization):.0%} of its ceiling "
                    f"(epoch {event.get('epoch')})",
                )
        elif kind == "pipeline":
            steps = int(event.get("steps", 0) or 0)
            degraded = int(event.get("degraded_steps", 0) or 0)
            if steps > 0:
                fraction = degraded / steps
                self.check(
                    "degraded_link_fraction",
                    fraction,
                    f"{degraded}/{steps} configurations degraded",
                )
