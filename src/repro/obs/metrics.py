"""Zero-dependency metrics: counters, gauges, histograms, one registry.

Design rules, mirroring the rest of the reproduction:

* **Counters are deterministic.**  A counter counts *logical events* —
  configurations simulated, cache hits, traceroutes dropped — whose
  totals are a pure function of the seeded scenario.  Two runs of the
  same scenario must produce identical counter totals regardless of
  ``--workers``; the equivalence tests enforce exactly this, the same
  way the engine's serial-vs-parallel outcome tests do.
* **Gauges and histograms carry measured data.**  Wall times, queue
  waits, and window latencies are real measurements; they vary run to
  run and are explicitly excluded from determinism comparisons
  (:meth:`MetricsRegistry.counter_totals` returns only the
  deterministic layer).
* **Lock-safe and mergeable.**  Every mutation takes the registry
  lock, and a registry can absorb another registry's snapshot with
  :meth:`MetricsRegistry.merge` — the shape worker processes use when
  shipping per-worker tallies back over the engine's result-tuple
  channel.

The text dump (:meth:`MetricsRegistry.render_prometheus`) follows the
Prometheus exposition format so existing scrapers and ``promtool`` can
parse it, but nothing here imports anything outside the stdlib.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: Histogram bucket upper bounds (seconds-flavored, log-spaced).  The
#: final implicit bucket is +Inf.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Optional[Mapping[str, str]]) -> LabelSet:
    """Canonical, hashable form of a label mapping."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus exposition-format label escaping (backslash, quote, newline)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return "{" + body + "}"


class Counter:
    """A monotonically increasing tally of logical events."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelSet, lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the tally."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time measurement (wall time, queue depth, ...)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelSet, lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bucketed distribution of measured values (latencies, sizes)."""

    __slots__ = ("name", "labels", "buckets", "counts", "_sum", "_count", "_min", "_max", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelSet,
        lock: threading.Lock,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum


class MetricsRegistry:
    """One process's metric store: named counters, gauges, histograms.

    Metric handles are created on first use and cached, so hot paths pay
    one dict lookup per event.  All families share a single registry
    lock — contention is negligible at the event rates involved, and a
    single lock keeps snapshots consistent.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelSet], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelSet], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelSet], Histogram] = {}
        self._help: Dict[str, str] = {}

    # -- handle creation -----------------------------------------------

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        key = (name, _labelset(labels))
        with self._lock:
            handle = self._counters.get(key)
            if handle is None:
                handle = Counter(name, key[1], self._lock)
                self._counters[key] = handle
            if help and name not in self._help:
                self._help[name] = help
        return handle

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        key = (name, _labelset(labels))
        with self._lock:
            handle = self._gauges.get(key)
            if handle is None:
                handle = Gauge(name, key[1], self._lock)
                self._gauges[key] = handle
            if help and name not in self._help:
                self._help[name] = help
        return handle

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        key = (name, _labelset(labels))
        with self._lock:
            handle = self._histograms.get(key)
            if handle is None:
                handle = Histogram(name, key[1], self._lock, buckets)
                self._histograms[key] = handle
            if help and name not in self._help:
                self._help[name] = help
        return handle

    # -- snapshots and merging -----------------------------------------

    def counter_totals(self) -> Dict[str, float]:
        """The deterministic layer: every counter's total, by series.

        Keys are ``name{label="value",...}``; values are the tallies.
        This is what the serial-vs-parallel equivalence tests compare —
        gauges and histograms (measured data) are deliberately absent.
        """
        with self._lock:
            return {
                name + _render_labels(labels): counter.value
                for (name, labels), counter in sorted(self._counters.items())
            }

    def snapshot(self) -> Dict:
        """JSON-safe dump of every metric (for merging or archiving)."""
        with self._lock:
            return {
                "counters": [
                    {"name": name, "labels": list(labels), "value": c.value}
                    for (name, labels), c in sorted(self._counters.items())
                ],
                "gauges": [
                    {"name": name, "labels": list(labels), "value": g.value}
                    for (name, labels), g in sorted(self._gauges.items())
                ],
                "histograms": [
                    {
                        "name": name,
                        "labels": list(labels),
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                    }
                    for (name, labels), h in sorted(self._histograms.items())
                ],
            }

    def merge(self, snapshot: Mapping) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram tallies add; gauges take the incoming
        value (last writer wins — gauges are point-in-time).  This is
        the merge the engine's result-tuple channel performs when
        worker-side tallies come home.
        """
        for entry in snapshot.get("counters", ()):
            labels = dict(tuple(pair) for pair in entry["labels"])
            self.counter(entry["name"], labels=labels).inc(entry["value"])
        for entry in snapshot.get("gauges", ()):
            labels = dict(tuple(pair) for pair in entry["labels"])
            self.gauge(entry["name"], labels=labels).set(entry["value"])
        for entry in snapshot.get("histograms", ()):
            labels = dict(tuple(pair) for pair in entry["labels"])
            histogram = self.histogram(
                entry["name"], labels=labels, buckets=tuple(entry["buckets"])
            )
            with self._lock:
                if list(histogram.buckets) != list(entry["buckets"]):
                    raise ValueError(
                        f"histogram {entry['name']} bucket mismatch on merge"
                    )
                for index, count in enumerate(entry["counts"]):
                    histogram.counts[index] += count
                histogram._sum += entry["sum"]
                histogram._count += entry["count"]

    # -- rendering ------------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus exposition-format text dump of every metric."""
        lines: List[str] = []
        with self._lock:
            seen_types: Dict[str, str] = {}

            def header(name: str, kind: str) -> None:
                if seen_types.get(name) == kind:
                    return
                seen_types[name] = kind
                help_text = self._help.get(name, "")
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")

            for (name, labels), counter in sorted(self._counters.items()):
                header(name, "counter")
                lines.append(f"{name}{_render_labels(labels)} {counter.value:g}")
            for (name, labels), gauge in sorted(self._gauges.items()):
                header(name, "gauge")
                lines.append(f"{name}{_render_labels(labels)} {gauge.value:g}")
            for (name, labels), histogram in sorted(self._histograms.items()):
                header(name, "histogram")
                cumulative = 0
                for bound, count in zip(histogram.buckets, histogram.counts):
                    cumulative += count
                    bucket_labels = labels + (("le", f"{bound:g}"),)
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)} {cumulative}"
                    )
                cumulative += histogram.counts[-1]
                inf_labels = labels + (("le", "+Inf"),)
                lines.append(f"{name}_bucket{_render_labels(inf_labels)} {cumulative}")
                lines.append(f"{name}_sum{_render_labels(labels)} {histogram.sum:g}")
                lines.append(f"{name}_count{_render_labels(labels)} {histogram.count}")
        return "\n".join(lines) + "\n"

    def write_prometheus(self, path: str) -> str:
        """Write the Prometheus text dump to ``path``; returns the path."""
        from . import ensure_parent_dir

        ensure_parent_dir(path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render_prometheus())
        return path

    def write_json(self, path: str) -> str:
        """Write the JSON snapshot to ``path``; returns the path."""
        from . import ensure_parent_dir

        ensure_parent_dir(path)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse a Prometheus text dump back into ``{series: value}``.

    Helper for tests and reconciliation checks — inverse of
    :meth:`MetricsRegistry.render_prometheus` for scalar series.  The
    map is flat and *sample-level*: histogram internals appear under
    their exposition names (``name_bucket{le="..."}``, ``name_sum``,
    ``name_count``, with cumulative bucket values), exactly as rendered.
    For a structurally-aware inverse — histograms reassembled with
    de-cumulated buckets, ready to :meth:`MetricsRegistry.merge` — use
    :func:`parse_prometheus_metrics`.
    """
    values: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        values[series] = float(value)
    return values


#: One exposition sample line: ``name{labels} value`` (labels optional).
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)

#: Exposition-format label-value unescapes (inverse of
#: :func:`_escape_label_value`).
_LABEL_UNESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def _parse_label_body(body: str) -> LabelSet:
    """Parse the inside of ``{...}`` back into a canonical label set."""
    labels: List[Tuple[str, str]] = []
    index = 0
    length = len(body)
    while index < length:
        if body[index] == ",":
            index += 1
            continue
        eq = body.index("=", index)
        key = body[index:eq].strip()
        if body[eq + 1] != '"':
            raise ValueError(f"label value for {key!r} is not quoted")
        index = eq + 2
        chars: List[str] = []
        while True:
            if index >= length:
                raise ValueError(f"unterminated label value for {key!r}")
            char = body[index]
            if char == "\\":
                escape = body[index + 1] if index + 1 < length else ""
                chars.append(_LABEL_UNESCAPES.get(escape, "\\" + escape))
                index += 2
                continue
            if char == '"':
                index += 1
                break
            chars.append(char)
            index += 1
        labels.append((key, "".join(chars)))
    return tuple(sorted(labels))


@dataclass
class ParsedMetrics:
    """Structured form of a Prometheus text dump.

    ``counters``/``gauges`` map ``(name, labelset) -> value``;
    ``histograms`` map ``(name, labelset) -> {"buckets", "counts",
    "sum", "count"}`` with the bucket counts **de-cumulated** back to
    per-bucket tallies (the exposition format renders them cumulative).
    ``kinds`` and ``helps`` carry the ``# TYPE`` / ``# HELP`` headers.
    """

    counters: Dict[Tuple[str, LabelSet], float] = field(default_factory=dict)
    gauges: Dict[Tuple[str, LabelSet], float] = field(default_factory=dict)
    histograms: Dict[Tuple[str, LabelSet], Dict] = field(default_factory=dict)
    kinds: Dict[str, str] = field(default_factory=dict)
    helps: Dict[str, str] = field(default_factory=dict)

    def as_snapshot(self) -> Dict:
        """A :meth:`MetricsRegistry.merge`-compatible snapshot.

        Non-finite counter values (``NaN``/``inf`` — a damaged scrape,
        never produced by a real registry) are dropped rather than
        silently poisoning every later increment; gauges keep them
        verbatim, as gauges are point-in-time measurements and ``NaN``
        is a legitimate "no data" reading.
        """
        import math

        return {
            "counters": [
                {"name": name, "labels": list(labels), "value": value}
                for (name, labels), value in sorted(self.counters.items())
                if math.isfinite(value)
            ],
            "gauges": [
                {"name": name, "labels": list(labels), "value": value}
                for (name, labels), value in sorted(self.gauges.items())
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": list(labels),
                    "buckets": list(data["buckets"]),
                    "counts": list(data["counts"]),
                    "sum": data["sum"],
                    "count": data["count"],
                }
                for (name, labels), data in sorted(self.histograms.items())
            ],
        }


def parse_prometheus_metrics(text: str) -> ParsedMetrics:
    """Parse a text dump back into typed families (full round-trip).

    The structural inverse of :meth:`MetricsRegistry.render_prometheus`:
    ``# TYPE`` headers type each family, histogram ``_bucket``/``_sum``
    /``_count`` samples are reassembled per label set with bucket counts
    de-cumulated (``+Inf`` implicit), and label values are unescaped.
    ``registry.merge(parse_prometheus_metrics(text).as_snapshot())``
    therefore reconstructs the dumping registry's metrics exactly —
    including histograms, which the flat :func:`parse_prometheus` map
    only exposes sample by sample.
    """
    parsed = ParsedMetrics()
    raw_hist: Dict[Tuple[str, LabelSet], Dict] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            parsed.helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            parsed.kinds[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"unparseable sample line: {line!r}")
        name = match.group("name")
        labels = _parse_label_body(match.group("labels") or "")
        value = float(match.group("value"))
        for suffix in ("_bucket", "_sum", "_count"):
            family = name[: -len(suffix)]
            if name.endswith(suffix) and parsed.kinds.get(family) == "histogram":
                bare = tuple(pair for pair in labels if pair[0] != "le")
                entry = raw_hist.setdefault(
                    (family, bare), {"cumulative": [], "sum": 0.0, "count": 0}
                )
                if suffix == "_bucket":
                    le = dict(labels).get("le", "+Inf")
                    bound = float("inf") if le == "+Inf" else float(le)
                    entry["cumulative"].append((bound, value))
                elif suffix == "_sum":
                    entry["sum"] = value
                else:
                    entry["count"] = int(value)
                break
        else:
            if parsed.kinds.get(name) == "counter":
                parsed.counters[(name, labels)] = value
            else:
                parsed.gauges[(name, labels)] = value
    for (family, labels), entry in raw_hist.items():
        ordered = sorted(entry["cumulative"])
        counts: List[int] = []
        previous = 0.0
        for _bound, cumulative in ordered:
            counts.append(int(cumulative - previous))
            previous = cumulative
        parsed.histograms[(family, labels)] = {
            "buckets": [b for b, _ in ordered if b != float("inf")],
            "counts": counts,
            "sum": entry["sum"],
            "count": entry["count"],
        }
    return parsed


def record_engine_stats(registry: MetricsRegistry, stats) -> None:
    """Fold an :class:`~repro.core.engine.EngineStats` delta into metrics.

    Deterministic counters mirror the stats fields one-for-one, so the
    metrics dump always reconciles with the report's ``engine_stats``;
    measured quantities (wall time, queue wait, redundant parent
    re-simulations — which depend on scheduling) land in gauges.
    """
    pairs: Iterable[Tuple[str, float, str]] = (
        ("repro_engine_configs_requested_total", stats.configs_requested,
         "configurations asked of the simulation engine"),
        ("repro_engine_configs_simulated_total", stats.configs_simulated,
         "Gauss-Seidel fixpoints run (logical, scheduling-independent)"),
        ("repro_engine_cache_hits_total", stats.cache_hits,
         "requests served from the outcome cache"),
        ("repro_engine_warm_starts_total", stats.warm_starts,
         "simulations seeded from a parent outcome"),
        ("repro_engine_passes_saved_total", stats.passes_saved,
         "estimated Gauss-Seidel passes avoided by warm starts"),
        ("repro_engine_worker_failures_total", stats.worker_failures,
         "pool tasks that died or timed out"),
        ("repro_engine_retries_total", stats.retries,
         "serial retries spent on injected faults"),
        ("repro_engine_faults_bypassed_total", stats.faults_bypassed,
         "tasks that ran with injection suppressed after retry exhaustion"),
        ("repro_engine_pool_rebuilds_total", stats.pool_rebuilds,
         "worker pools torn down after a failure"),
    )
    for name, value, help_text in pairs:
        registry.counter(name, help=help_text).inc(value)
    registry.gauge(
        "repro_engine_wall_seconds",
        help="seconds spent inside the simulation engine",
    ).add(stats.wall_time)
    registry.gauge(
        "repro_engine_queue_wait_seconds",
        help="seconds the engine blocked waiting on pool results",
    ).add(stats.queue_wait)
    registry.gauge(
        "repro_engine_redundant_parent_sims",
        help="physical warm-start parent re-simulations beyond the logical count",
    ).add(stats.redundant_parent_sims)


def record_build_info(registry: MetricsRegistry) -> None:
    """Set the ``repro_build_info`` gauge on ``registry``.

    The standard info-metric idiom: constant value 1 with the build
    identity carried in labels, so every scrape is attributable to the
    package version, interpreter, and platform that produced it.
    """
    import platform as platform_module
    import sys

    from .. import __version__

    registry.gauge(
        "repro_build_info",
        help="build identity of the serving process (value is always 1)",
        labels={
            "version": __version__,
            "python": sys.version.split()[0],
            "platform": platform_module.platform(),
        },
    ).set(1)


def record_fault_log(registry: MetricsRegistry, log_by_kind: Mapping[str, int]) -> None:
    """Fold a fault-log delta (kind → fired count) into metrics."""
    for kind, count in sorted(log_by_kind.items()):
        registry.counter(
            "repro_faults_injected_total",
            help="faults fired by the injector, by kind",
            labels={"kind": kind},
        ).inc(count)


def record_resource_sample(
    registry: MetricsRegistry,
    rss_bytes: float,
    open_fds: int,
    threads: int,
) -> None:
    """Record one process-resource sample (soak sentinel feed).

    Gauges, not counters: resource levels are measured facts about this
    process, excluded from determinism comparisons like every other
    measured value.
    """
    registry.gauge(
        "repro_resource_rss_bytes",
        help="resident set size of the serving process",
    ).set(float(rss_bytes))
    registry.gauge(
        "repro_resource_open_fds",
        help="open file descriptors held by the serving process",
    ).set(float(open_fds))
    registry.gauge(
        "repro_resource_threads",
        help="live threads in the serving process",
    ).set(float(threads))
    registry.counter(
        "repro_resource_samples_total",
        help="resource sentinel samples taken",
    ).inc()
