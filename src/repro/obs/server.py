"""Threaded HTTP exporter serving the live observability surface.

PR 4 made telemetry write-only: metrics, traces, and manifests landed in
files after the run.  :class:`ObsServer` turns them into an operable
service surface while the run is still going — the shape the ROADMAP's
production attribution service needs, and the shape BGPeek-a-Boo argues
for (active traceback is monitored and aborted *in flight*).

Endpoints (all GET, stdlib :mod:`http.server` only):

``/metrics``
    Prometheus text from the live registry.  Rendering happens under the
    registry lock, so concurrent scrapes see consistent snapshots even
    while a ``--workers > 1`` run is mutating counters.
``/healthz``
    Liveness, fed by a health source (an
    :class:`~repro.faults.health.InvariantMonitor`-shaped summary or any
    callable returning ``{"healthy": bool, ...}``): 200 healthy, 503 not.
``/readyz``
    Readiness: 503 until :meth:`ObsServer.set_ready`, and 503 again if
    any :class:`~repro.obs.slo.SloWatchdog` objective breaches.
``/manifest``
    The :class:`~repro.obs.manifest.RunManifest` as JSON.
``/traces``
    Finished span records from the tracer as a JSON list.
``/events``
    Server-sent events: each bus event as an ``id:``/``data:`` frame.
    ``?replay=0`` skips history; ``?limit=N`` closes the stream after N
    events so plain ``curl`` invocations terminate.  An idle stream
    emits ``: keep-alive`` comment frames every ``keepalive_seconds``
    so proxies and clients can tell a quiet run from a dead one.
``/timeline``
    The merged forensic timeline (:mod:`repro.obs.timeline`) over the
    armed bus history, finished spans, and any attached flight/
    checkpoint directories, with ``?tenant=``/``?shard=``/``?since=``
    filters and the deterministic digest in the body.

The server binds on construction (so ``port`` is known even with
``port=0``) and serves from a daemon thread after :meth:`start`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping, Optional
from urllib.parse import parse_qs, urlsplit

#: Seconds an idle SSE loop waits before re-checking for shutdown.
SSE_POLL_SECONDS = 0.25

#: Default idle interval between SSE ``: keep-alive`` comment frames.
SSE_KEEPALIVE_SECONDS = 15.0


def _health_payload(source) -> Mapping:
    """Normalise a health source into a ``{"healthy": bool, ...}`` dict."""
    if source is None:
        return {"healthy": True}
    value = source() if callable(source) else source
    if value is None:  # no verdict yet (run still going) counts as live
        return {"healthy": True}
    if isinstance(value, Mapping):
        payload = dict(value)
        payload.setdefault("healthy", True)
        return payload
    if hasattr(value, "healthy"):
        summary = value.summary() if hasattr(value, "summary") else ""
        payload = (
            dict(summary) if isinstance(summary, Mapping) else {"summary": str(summary)}
        )
        payload["healthy"] = bool(value.healthy)
        return payload
    return {"healthy": bool(value)}


class _ObsHandler(BaseHTTPRequestHandler):
    """Request handler; the owning :class:`ObsServer` hangs off ``server``."""

    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # an exporter must not spam the CLI's stderr

    # -- plumbing -------------------------------------------------------

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True, default=str)
        self._send_body(status, body.encode("utf-8") + b"\n", "application/json")

    def _send_text(self, status: int, text: str) -> None:
        self._send_body(
            status, text.encode("utf-8"), "text/plain; version=0.0.4; charset=utf-8"
        )

    # -- routing --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        obs_server: "ObsServer" = self.server.obs_server  # type: ignore[attr-defined]
        parsed = urlsplit(self.path)
        route = parsed.path.rstrip("/") or "/"
        try:
            if route == "/":
                self._send_json(200, {"endpoints": sorted(obs_server.ROUTES)})
            elif route == "/metrics":
                self._handle_metrics(obs_server)
            elif route == "/healthz":
                self._handle_healthz(obs_server)
            elif route == "/readyz":
                self._handle_readyz(obs_server)
            elif route == "/manifest":
                self._handle_manifest(obs_server)
            elif route == "/traces":
                self._handle_traces(obs_server)
            elif route == "/events":
                self._handle_events(obs_server, parse_qs(parsed.query))
            elif route == "/tenants":
                self._handle_tenants(obs_server)
            elif route == "/timeline":
                self._handle_timeline(obs_server, parse_qs(parsed.query))
            else:
                self._send_json(404, {"error": f"unknown route {route}"})
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up

    # -- endpoints ------------------------------------------------------

    def _handle_metrics(self, obs_server: "ObsServer") -> None:
        registry = obs_server.registry
        if registry is None:
            self._send_json(404, {"error": "no metrics registry armed"})
            return
        self._send_text(200, registry.render_prometheus())

    def _handle_healthz(self, obs_server: "ObsServer") -> None:
        payload = _health_payload(obs_server.health_source)
        status = 200 if payload.get("healthy", True) else 503
        self._send_json(status, payload)

    def _handle_readyz(self, obs_server: "ObsServer") -> None:
        watchdog = obs_server.watchdog
        payload = dict(watchdog.status()) if watchdog is not None else {}
        payload["started"] = obs_server.is_ready
        ready = obs_server.is_ready and (watchdog is None or watchdog.ready)
        payload["ready"] = ready
        self._send_json(200 if ready else 503, payload)

    def _handle_manifest(self, obs_server: "ObsServer") -> None:
        manifest = obs_server.manifest
        if manifest is None:
            self._send_json(404, {"error": "no manifest recorded"})
            return
        payload = manifest.as_dict() if hasattr(manifest, "as_dict") else manifest
        self._send_json(200, payload)

    def _handle_traces(self, obs_server: "ObsServer") -> None:
        tracer = obs_server.tracer
        if tracer is None:
            self._send_json(404, {"error": "no tracer armed"})
            return
        self._send_json(200, tracer.records())

    def _handle_tenants(self, obs_server: "ObsServer") -> None:
        source = obs_server.tenants_source
        if source is None:
            self._send_json(404, {"error": "no fleet runtime attached"})
            return
        payload = source() if callable(source) else source
        self._send_json(200, payload)

    def _handle_timeline(self, obs_server: "ObsServer", query) -> None:
        timeline = obs_server.build_timeline()
        if timeline is None:
            self._send_json(404, {"error": "no timeline sources armed"})
            return
        tenant = query.get("tenant", [""])[0]
        shard = query.get("shard", [""])[0]
        since_raw = query.get("since", [""])[0]
        since = float(since_raw) if since_raw else None
        self._send_json(
            200, timeline.filtered(tenant=tenant, shard=shard, since=since).as_dict()
        )

    def _handle_events(self, obs_server: "ObsServer", query) -> None:
        bus = obs_server.bus
        if bus is None:
            self._send_json(404, {"error": "no event bus armed"})
            return
        replay = query.get("replay", ["1"])[0] not in ("0", "false", "no")
        limit_raw = query.get("limit", [""])[0]
        limit = int(limit_raw) if limit_raw else None
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        # SSE is an unbounded stream: close-delimited, not length-delimited.
        self.send_header("Connection", "close")
        self.end_headers()
        subscription = bus.subscribe(replay=replay)
        sent = 0
        idle = 0.0
        try:
            while limit is None or sent < limit:
                if obs_server.stopping.is_set():
                    return
                event = subscription.get(timeout=SSE_POLL_SECONDS)
                if event is None:
                    if subscription._closed:  # bus closed: end of stream
                        return
                    # A silent bus must still prove the stream is alive:
                    # comment frames are ignored by SSE clients but reset
                    # proxy idle timers (and our tests' patience).
                    idle += SSE_POLL_SECONDS
                    if idle >= obs_server.keepalive_seconds:
                        self.wfile.write(b": keep-alive\n\n")
                        self.wfile.flush()
                        idle = 0.0
                    continue
                idle = 0.0
                frame = (
                    f"id: {event.get('seq', sent)}\n"
                    f"data: {json.dumps(event, sort_keys=True, default=str)}\n\n"
                )
                self.wfile.write(frame.encode("utf-8"))
                self.wfile.flush()
                sent += 1
        finally:
            subscription.close()


class ObsServer:
    """Threaded HTTP server over a run's observability surface.

    Args:
        obs: optional :class:`~repro.obs.Observability` bundle; supplies
            ``registry``, ``tracer``, and ``bus`` unless overridden.
        registry: :class:`~repro.obs.metrics.MetricsRegistry` for ``/metrics``.
        bus: :class:`~repro.obs.bus.EventBus` for ``/events``.
        manifest: :class:`~repro.obs.manifest.RunManifest` for ``/manifest``.
        health_source: value or zero-arg callable feeding ``/healthz`` —
            a mapping with a ``healthy`` key, an object with a ``healthy``
            attribute (e.g. a :class:`~repro.faults.health.ResilienceReport`),
            or a bare bool.
        watchdog: :class:`~repro.obs.slo.SloWatchdog` gating ``/readyz``.
        tenants_source: value or zero-arg callable feeding ``/tenants``
            (fleet mode wires the runtime's ``tenants_summary`` here);
            absent ⇒ 404.
        host: bind address (default loopback).
        port: bind port; 0 picks a free one (read :attr:`port` after).
        timeline_source: zero-arg callable returning a
            :class:`~repro.obs.timeline.Timeline` for ``/timeline``;
            default builds one from the armed bus/tracer plus
            ``flight_dir``/``checkpoint_dir``.
        flight_dir: flight-bundle directory merged into the default
            ``/timeline`` view.
        checkpoint_dir: checkpoint directory merged into the default
            ``/timeline`` view.
        keepalive_seconds: idle interval between SSE comment frames on
            ``/events``.
    """

    ROUTES = (
        "/metrics",
        "/healthz",
        "/readyz",
        "/manifest",
        "/traces",
        "/events",
        "/tenants",
        "/timeline",
    )

    def __init__(
        self,
        obs=None,
        registry=None,
        bus=None,
        manifest=None,
        health_source=None,
        watchdog=None,
        host: str = "127.0.0.1",
        port: int = 0,
        tenants_source=None,
        timeline_source=None,
        flight_dir: str = "",
        checkpoint_dir: str = "",
        keepalive_seconds: float = SSE_KEEPALIVE_SECONDS,
    ) -> None:
        self.registry = registry if registry is not None else getattr(obs, "registry", None)
        self.tracer = getattr(obs, "tracer", None)
        self.bus = bus if bus is not None else getattr(obs, "bus", None)
        self.manifest = manifest
        self.health_source = health_source
        self.watchdog = watchdog
        #: Value or zero-arg callable feeding ``/tenants`` — the fleet
        #: runtime's :meth:`~repro.fleet.runtime.FleetRuntime.tenants_summary`.
        self.tenants_source = tenants_source
        self.timeline_source = timeline_source
        self.flight_dir = flight_dir
        self.checkpoint_dir = checkpoint_dir
        self.keepalive_seconds = keepalive_seconds
        self.stopping = threading.Event()
        self._ready = threading.Event()
        self._http = ThreadingHTTPServer((host, port), _ObsHandler)
        self._http.daemon_threads = True
        self._http.obs_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    def build_timeline(self):
        """The ``/timeline`` body source: the explicit source when one
        is wired, else a merge of whatever this server has armed (bus
        history, finished spans, flight/checkpoint directories).
        Returns None when no source exists at all (⇒ 404)."""
        if self.timeline_source is not None:
            return self.timeline_source()
        if (
            self.bus is None
            and self.tracer is None
            and not self.flight_dir
            and not self.checkpoint_dir
        ):
            return None
        from .timeline import (
            entries_from_bus,
            entries_from_checkpoint_dir,
            entries_from_flight_dir,
            entries_from_spans,
            _merge,
        )

        groups = []
        if self.bus is not None:
            groups.append(entries_from_bus(self.bus.history()))
        if self.tracer is not None:
            groups.append(
                entries_from_spans(
                    span.as_record() for span in self.tracer.finished
                )
            )
        groups.append(entries_from_flight_dir(self.flight_dir))
        groups.append(entries_from_checkpoint_dir(self.checkpoint_dir))
        return _merge(groups)

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def is_ready(self) -> bool:
        return self._ready.is_set()

    def set_ready(self, ready: bool = True) -> None:
        """Flip the startup half of ``/readyz`` (watchdog gates the rest)."""
        if ready:
            self._ready.set()
        else:
            self._ready.clear()

    def start(self) -> "ObsServer":
        """Begin serving from a daemon thread; returns self for chaining."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name=f"obs-server:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self.stopping.set()
        if self._thread is not None:
            self._http.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._http.server_close()

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
